//! Golden tests for the generated task user interfaces (paper Figures 2
//! and 3). The full rendered HTML is pinned so any change to the
//! generated forms is an explicit, reviewed diff.

use crowddb_common::DataType;
use crowddb_platform::TaskKind;
use crowddb_ui::{render_mobile_task, render_task};

fn figure2_task() -> TaskKind {
    // Paper §3.1: the query `SELECT abstract FROM talk WHERE title =
    // 'CrowdDB'` crowdsources the missing abstract; the known title is
    // copied into the form read-only.
    TaskKind::Probe {
        table: "talk".into(),
        known: vec![("title".into(), "CrowdDB".into())],
        asked: vec![("abstract".into(), DataType::Str)],
        instructions: "Enter the missing information for the Talk.".into(),
    }
}

#[test]
fn figure_2_mturk_page_golden() {
    let expected = "<!DOCTYPE html>\n\
        <html><head><meta charset=\"utf-8\">\
        <title>Please fill out missing fields of the following Table</title></head>\
        <body class=\"crowddb mturk\">\
        <h1>Please fill out missing fields of the following Table</h1>\
        <p class=\"instructions\">Enter the missing information for the Talk.</p>\
        <form method=\"post\" action=\"submit\">\
        <p class=\"table-name\">Table: <b>talk</b></p>\
        <div class=\"field known\"><label>title</label>\
        <input type=\"text\" name=\"title\" value=\"CrowdDB\" readonly></div>\
        <div class=\"field asked\"><label>abstract</label>\
        <input type=\"text\" name=\"abstract\" placeholder=\"abstract (STRING)\"></div>\
        <button type=\"submit\">Submit</button></form></body></html>";
    assert_eq!(render_task(&figure2_task()), expected);
}

#[test]
fn figure_3_mobile_page_golden() {
    let expected = "<!DOCTYPE html>\n\
        <html><head><meta charset=\"utf-8\">\
        <meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\
        <title>Please fill out missing fields of the following Table</title></head>\
        <body class=\"crowddb mobile\">\
        <h1>Please fill out missing fields of the following Table</h1>\
        <p class=\"instructions\">Enter the missing information for the Talk.</p>\
        <form method=\"post\" action=\"submit\">\
        <p class=\"table-name\">Table: <b>talk</b></p>\
        <div class=\"field known\"><label>title</label>\
        <input type=\"text\" name=\"title\" value=\"CrowdDB\" readonly></div>\
        <div class=\"field asked\"><label>abstract</label>\
        <input type=\"text\" name=\"abstract\" placeholder=\"abstract (STRING)\"></div>\
        <button type=\"submit\">Submit</button></form></body></html>";
    assert_eq!(render_mobile_task(&figure2_task()), expected);
}

#[test]
fn compare_page_golden() {
    let page = render_task(&TaskKind::Equal {
        left: "I.B.M.".into(),
        right: "IBM".into(),
        instruction: "Do these refer to the same company?".into(),
    });
    let expected = "<!DOCTYPE html>\n\
        <html><head><meta charset=\"utf-8\">\
        <title>Do these refer to the same thing?</title></head>\
        <body class=\"crowddb mturk\"><h1>Do these refer to the same thing?</h1>\
        <p class=\"instructions\">Do these refer to the same company?</p>\
        <form method=\"post\" action=\"submit\">\
        <div class=\"pair\"><span class=\"left\">I.B.M.</span> \
        <span class=\"vs\">vs</span> <span class=\"right\">IBM</span></div>\
        <label class=\"choice\"><input type=\"radio\" name=\"verdict\" value=\"yes\"> \
        Yes, the same</label>\
        <label class=\"choice\"><input type=\"radio\" name=\"verdict\" value=\"no\"> \
        No, different</label>\
        <button type=\"submit\">Submit</button></form></body></html>";
    assert_eq!(page, expected);
}
