//! CrowdSQL semantics across the whole stack: the CNULL lifecycle,
//! answer memorization, open-world boundedness, quality control with
//! disagreeing workers, escalation, and failure injection.

use crowddb::{Answer, CrowdConfig, CrowdDB, MockPlatform, Platform, TaskKind, Value, VoteConfig};

fn conference_db(config: CrowdConfig) -> CrowdDB {
    let db = CrowdDB::with_config(config);
    for sql in [
        "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING, \
         nb_attendees CROWD INTEGER)",
        "CREATE CROWD TABLE NotableAttendee (name STRING PRIMARY KEY, title STRING, \
         FOREIGN KEY (title) REF Talk(title))",
        "INSERT INTO Talk (title) VALUES ('CrowdDB'), ('Qurk')",
    ] {
        db.execute_local(sql).unwrap();
    }
    db
}

fn probe_answers(value: &'static str) -> MockPlatform {
    MockPlatform::unanimous(move |kind| match kind {
        TaskKind::Probe { asked, .. } => Answer::Form(
            asked
                .iter()
                .map(|(c, _)| (c.clone(), value.to_string()))
                .collect(),
        ),
        _ => Answer::Blank,
    })
}

#[test]
fn cnull_lifecycle() {
    let db = conference_db(CrowdConfig::fast_test());
    // CNULL is visible and distinct from NULL before crowdsourcing.
    let r = db
        .execute_local("SELECT title FROM Talk WHERE abstract IS CNULL ORDER BY title")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let r = db
        .execute_local("SELECT title FROM Talk WHERE abstract IS NULL")
        .unwrap();
    assert!(r.rows.is_empty(), "CNULL is not NULL");

    // Crowdsource one value...
    let mut crowd = probe_answers("the abstract");
    db.execute("SELECT abstract FROM Talk WHERE title = 'Qurk'", &mut crowd)
        .unwrap();
    // ...and the marker is gone for that tuple only.
    let r = db
        .execute_local("SELECT title FROM Talk WHERE abstract IS CNULL")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::str("CrowdDB"));
}

#[test]
fn majority_vote_beats_a_noisy_worker() {
    let db = conference_db(CrowdConfig {
        vote: VoteConfig::replicated(3),
        ..CrowdConfig::default()
    });
    // Workers 0 and 2 answer '150'; worker 1 answers garbage.
    let mut crowd = MockPlatform::new(Box::new(|kind: &TaskKind, ordinal| match kind {
        TaskKind::Probe { asked, .. } => Answer::Form(
            asked
                .iter()
                .map(|(c, _)| {
                    let v = if ordinal == 1 { "9999" } else { " 150 " };
                    (c.clone(), v.to_string())
                })
                .collect(),
        ),
        _ => Answer::Blank,
    }));
    let r = db
        .execute(
            "SELECT nb_attendees FROM Talk WHERE title = 'CrowdDB'",
            &mut crowd,
        )
        .unwrap();
    assert!(r.complete);
    assert_eq!(
        r.rows[0][0],
        Value::Int(150),
        "majority wins, input trimmed"
    );
}

#[test]
fn tie_escalates_to_extra_assignment() {
    let db = conference_db(CrowdConfig {
        vote: VoteConfig {
            replication: 2,
            max_escalations: 2,
        },
        ..CrowdConfig::default()
    });
    // First two workers disagree; the tie-breaker agrees with answer A.
    let mut crowd = MockPlatform::new(Box::new(|kind: &TaskKind, ordinal| match kind {
        TaskKind::Probe { asked, .. } => Answer::Form(
            asked
                .iter()
                .map(|(c, _)| {
                    let v = match ordinal {
                        0 => "100",
                        1 => "200",
                        _ => "100",
                    };
                    (c.clone(), v.to_string())
                })
                .collect(),
        ),
        _ => Answer::Blank,
    }));
    let r = db
        .execute(
            "SELECT nb_attendees FROM Talk WHERE title = 'CrowdDB'",
            &mut crowd,
        )
        .unwrap();
    assert!(r.complete);
    assert_eq!(r.rows[0][0], Value::Int(100));
    assert_eq!(r.crowd.answers_collected, 3, "2 initial + 1 escalation");
}

#[test]
fn blank_answers_are_discarded_and_escalated() {
    let db = conference_db(CrowdConfig {
        vote: VoteConfig {
            replication: 1,
            max_escalations: 3,
        },
        ..CrowdConfig::default()
    });
    // The first worker spams; the second answers.
    let mut crowd = MockPlatform::new(Box::new(|kind: &TaskKind, ordinal| match kind {
        TaskKind::Probe { asked, .. } => {
            if ordinal == 0 {
                Answer::Blank
            } else {
                Answer::Form(
                    asked
                        .iter()
                        .map(|(c, _)| (c.clone(), "42".to_string()))
                        .collect(),
                )
            }
        }
        _ => Answer::Blank,
    }));
    let r = db
        .execute(
            "SELECT nb_attendees FROM Talk WHERE title = 'CrowdDB'",
            &mut crowd,
        )
        .unwrap();
    assert!(r.complete);
    assert_eq!(r.rows[0][0], Value::Int(42));
}

#[test]
fn all_blank_answers_give_up_gracefully() {
    let db = conference_db(CrowdConfig {
        vote: VoteConfig {
            replication: 1,
            max_escalations: 1,
        },
        max_rounds: 3,
        ..CrowdConfig::default()
    });
    let mut crowd = MockPlatform::unanimous(|_| Answer::Blank);
    let r = db
        .execute(
            "SELECT nb_attendees FROM Talk WHERE title = 'CrowdDB'",
            &mut crowd,
        )
        .unwrap();
    // No crash, no infinite loop: the value stays CNULL, warnings say so.
    assert!(!r.warnings.is_empty());
    assert!(r.rows[0][0].is_cnull());
    // The exhausted need is not re-posted by a later statement.
    let posted_before = crowd.stats().hits_posted;
    let _ = db
        .execute(
            "SELECT nb_attendees FROM Talk WHERE title = 'CrowdDB'",
            &mut crowd,
        )
        .unwrap();
    assert_eq!(crowd.stats().hits_posted, posted_before);
}

#[test]
fn unbounded_rejection_and_bounded_variants() {
    let db = conference_db(CrowdConfig::default());
    let err = db
        .execute_local("SELECT name FROM NotableAttendee")
        .unwrap_err();
    assert_eq!(err.category(), "unbounded-crowd-query");
    // All three paper-sanctioned bounding forms are accepted.
    for sql in [
        "SELECT name FROM NotableAttendee LIMIT 5",
        "SELECT title FROM NotableAttendee WHERE name = 'Mike Franklin'",
        "SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON t.title = n.title",
    ] {
        db.execute_local(sql)
            .unwrap_or_else(|e| panic!("{sql} should be bounded: {e}"));
    }
}

#[test]
fn crowd_join_writes_back_and_respects_fk_preset() {
    let db = conference_db(CrowdConfig::fast_test());
    let mut crowd = MockPlatform::unanimous(|kind| match kind {
        TaskKind::NewTuples { preset, .. } => {
            let title = preset
                .iter()
                .find(|(k, _)| k == "title")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            if title == "CrowdDB" {
                Answer::Tuples(vec![vec![
                    ("name".to_string(), "Mike Franklin".to_string()),
                    // Worker tries to override the preset: must be ignored.
                    ("title".to_string(), "WRONG".to_string()),
                ]])
            } else {
                Answer::Blank
            }
        }
        _ => Answer::Blank,
    });
    let r = db
        .execute(
            "SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON t.title = n.title",
            &mut crowd,
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][0], Value::str("CrowdDB"), "preset key wins");
    // The tuple is persisted in the crowd table.
    let r = db
        .execute_local("SELECT name FROM NotableAttendee LIMIT 10")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn crowdorder_converges_over_rounds() {
    let db = conference_db(CrowdConfig::fast_test());
    db.execute_local("INSERT INTO Talk (title) VALUES ('PIQL'), ('HyPer')")
        .unwrap();
    // Crowd preference: alphabetical by length then name (arbitrary but
    // consistent).
    let mut crowd = MockPlatform::unanimous(|kind| match kind {
        TaskKind::Order { left, right, .. } => {
            if (left.len(), left.clone()) <= (right.len(), right.clone()) {
                Answer::Left
            } else {
                Answer::Right
            }
        }
        _ => Answer::Blank,
    });
    let r = db
        .execute(
            "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'better?')",
            &mut crowd,
        )
        .unwrap();
    assert!(r.complete, "warnings: {:?}", r.warnings);
    let titles: Vec<String> = r.rows.iter().map(|x| x[0].to_string()).collect();
    assert_eq!(titles, vec!["PIQL", "Qurk", "HyPer", "CrowdDB"]);
}

#[test]
fn update_with_crowd_predicate_applies_once() {
    let db = conference_db(CrowdConfig::fast_test());
    db.execute_local("UPDATE Talk SET nb_attendees = 100")
        .unwrap();
    let mut crowd = MockPlatform::unanimous(|kind| match kind {
        TaskKind::Equal { left, right, .. } => {
            let norm = |s: &str| s.to_lowercase().replace('.', "");
            if norm(left) == norm(right) {
                Answer::Yes
            } else {
                Answer::No
            }
        }
        _ => Answer::Blank,
    });
    // The crowd decides 'CrowdDB' ~= 'crowddb.' — the non-idempotent
    // assignment must be applied exactly once.
    let r = db
        .execute(
            "UPDATE Talk SET nb_attendees = nb_attendees + 1 WHERE title ~= 'crowddb.'",
            &mut crowd,
        )
        .unwrap();
    assert_eq!(r.affected, 1);
    let check = db
        .execute_local("SELECT nb_attendees FROM Talk WHERE title = 'CrowdDB'")
        .unwrap();
    assert_eq!(check.rows[0][0], Value::Int(101));
}

#[test]
fn wrm_flags_and_bans_bad_workers() {
    let db = conference_db(CrowdConfig {
        vote: VoteConfig::replicated(3),
        ban_threshold: 0.45,
        ..CrowdConfig::default()
    });
    // Worker ordinal 2 of every HIT always disagrees (MockPlatform gives
    // each assignment a fresh worker id, so the "bad worker" is spread —
    // instead we check the aggregate accounting here).
    let mut crowd = MockPlatform::new(Box::new(|kind: &TaskKind, ordinal| match kind {
        TaskKind::Probe { asked, .. } => Answer::Form(
            asked
                .iter()
                .map(|(c, _)| {
                    let v = if ordinal == 2 { "999999" } else { "77" };
                    (c.clone(), v.to_string())
                })
                .collect(),
        ),
        _ => Answer::Blank,
    }));
    db.execute("SELECT nb_attendees FROM Talk", &mut crowd)
        .unwrap();
    db.with_wrm(|wrm| {
        assert!(wrm.community_size() >= 6);
        assert!(wrm.total_paid_cents() > 0);
        // A third of assignments disagreed with the accepted majority.
        let dist = wrm.work_distribution();
        assert!(!dist.is_empty());
    });
}

#[test]
fn preview_and_explain_cover_crowd_queries() {
    let db = conference_db(CrowdConfig::default());
    let html = db
        .preview_first_task("SELECT abstract FROM Talk WHERE title = 'CrowdDB'")
        .unwrap()
        .expect("task exists");
    assert!(html.contains("CrowdDB"));
    let plan = db
        .explain("SELECT t.title, n.name FROM Talk t JOIN NotableAttendee n ON t.title = n.title")
        .unwrap();
    assert!(plan.contains("CROWD TABLE"), "{plan}");
    assert!(plan.contains("BOUNDED"), "{plan}");
}

#[test]
fn budget_enforcement_stops_crowd_spending() {
    let db = CrowdDB::with_config(CrowdConfig {
        vote: VoteConfig::replicated(3),
        reward_cents: 2,
        max_budget_cents: Some(6), // enough for one HIT (3 assignments x 2c)
        ..CrowdConfig::default()
    });
    db.execute_local("CREATE TABLE t (id INTEGER PRIMARY KEY, v CROWD INTEGER)")
        .unwrap();
    for i in 0..10 {
        db.execute_local(&format!("INSERT INTO t (id) VALUES ({i})"))
            .unwrap();
    }
    let mut crowd = probe_answers("5");
    // 10 probes wanted, but the budget covers only the first wave's cost
    // check — the second round trips the budget gate.
    let r = db.execute("SELECT v FROM t", &mut crowd).unwrap();
    assert!(!r.complete);
    assert!(
        r.warnings.iter().any(|w| w.contains("budget")),
        "warnings: {:?}",
        r.warnings
    );
    // Some values resolved before the gate, the rest still CNULL.
    let resolved = r.rows.iter().filter(|row| !row[0].is_cnull()).count();
    assert!(resolved >= 1, "first wave should land");
}

#[test]
fn unlimited_budget_resolves_everything() {
    let db = CrowdDB::with_config(CrowdConfig {
        vote: VoteConfig::single(),
        max_budget_cents: None,
        ..CrowdConfig::default()
    });
    db.execute_local("CREATE TABLE t (id INTEGER PRIMARY KEY, v CROWD INTEGER)")
        .unwrap();
    for i in 0..10 {
        db.execute_local(&format!("INSERT INTO t (id) VALUES ({i})"))
            .unwrap();
    }
    let mut crowd = probe_answers("5");
    let r = db.execute("SELECT v FROM t", &mut crowd).unwrap();
    assert!(r.complete);
    assert!(r.rows.iter().all(|row| row[0] == Value::Int(5)));
}

#[test]
fn session_snapshot_restores_answers_and_caches() {
    let db = conference_db(CrowdConfig::fast_test());
    let mut crowd = probe_answers("persisted answer");
    db.execute(
        "SELECT abstract FROM Talk WHERE title = 'CrowdDB'",
        &mut crowd,
    )
    .unwrap();
    // A comparison verdict lives only in the session caches.
    db.with_caches(|c| {
        c.put_equal(
            "CrowDB",
            "CrowdDB",
            "Do these two values refer to the same entity?",
            true,
        )
    });
    let bytes = db.snapshot().unwrap();

    let restored = CrowdDB::restore(&bytes, CrowdConfig::fast_test()).unwrap();
    // Crowdsourced value served from restored storage, no tasks posted.
    let mut crowd2 = MockPlatform::unanimous(|_| Answer::Blank);
    let r = restored
        .execute(
            "SELECT abstract FROM Talk WHERE title = 'CrowdDB'",
            &mut crowd2,
        )
        .unwrap();
    assert!(r.complete);
    assert_eq!(r.rows[0][0], Value::str("persisted answer"));
    // Cached comparison verdict survives too.
    let r = restored
        .execute(
            "SELECT title FROM Talk WHERE title ~= 'CrowDB'",
            &mut crowd2,
        )
        .unwrap();
    assert!(r.complete);
    assert_eq!(r.rows.len(), 1);
    // Templates were regenerated from the schemas.
    restored.with_templates(|t| {
        assert!(t
            .get("talk", crowddb_ui::template::TemplateKind::Probe)
            .is_some());
    });
}

#[test]
fn restore_rejects_garbage() {
    assert!(CrowdDB::restore(b"junk", CrowdConfig::default()).is_err());
    assert!(CrowdDB::restore(&[], CrowdConfig::default()).is_err());
}
