//! System-level property tests: random data through the full
//! parse→bind→optimize→execute stack must satisfy SQL invariants, and
//! optimization must never change results.

use crowddb::{CrowdDB, Value};
use proptest::prelude::*;

/// Build a CrowdDB with `rows` of (id, grp, score) in table `t`.
fn seeded_db(rows: &[(i64, String, i64)]) -> CrowdDB {
    let db = CrowdDB::new();
    db.execute_local("CREATE TABLE t (id INTEGER PRIMARY KEY, grp STRING, score INTEGER)")
        .unwrap();
    for (id, grp, score) in rows {
        db.execute_local(&format!(
            "INSERT INTO t VALUES ({id}, '{}', {score})",
            grp.replace('\'', "''")
        ))
        .unwrap();
    }
    db
}

fn rows_strategy() -> impl Strategy<Value = Vec<(i64, String, i64)>> {
    prop::collection::vec((0i64..1000, "[a-d]", -100i64..100), 0..40).prop_map(|v| {
        // Deduplicate primary keys, keeping first occurrence.
        let mut seen = std::collections::HashSet::new();
        v.into_iter()
            .filter(|(id, _, _)| seen.insert(*id))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn select_star_returns_all_rows(rows in rows_strategy()) {
        let db = seeded_db(&rows);
        let r = db.execute_local("SELECT * FROM t").unwrap();
        prop_assert_eq!(r.rows.len(), rows.len());
    }

    #[test]
    fn order_by_sorts_and_limit_windows(rows in rows_strategy(), limit in 0u64..20, offset in 0u64..10) {
        let db = seeded_db(&rows);
        let r = db
            .execute_local(&format!(
                "SELECT score FROM t ORDER BY score LIMIT {limit} OFFSET {offset}"
            ))
            .unwrap();
        // Sortedness.
        let got: Vec<i64> = r.rows.iter().map(|x| x[0].as_i64().unwrap()).collect();
        for w in got.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Window matches the reference computation.
        let mut expected: Vec<i64> = rows.iter().map(|(_, _, s)| *s).collect();
        expected.sort_unstable();
        let lo = (offset as usize).min(expected.len());
        let hi = (lo + limit as usize).min(expected.len());
        prop_assert_eq!(got, expected[lo..hi].to_vec());
    }

    #[test]
    fn where_filter_matches_reference(rows in rows_strategy(), threshold in -100i64..100) {
        let db = seeded_db(&rows);
        let r = db
            .execute_local(&format!("SELECT id FROM t WHERE score > {threshold}"))
            .unwrap();
        let expected: std::collections::HashSet<i64> = rows
            .iter()
            .filter(|(_, _, s)| *s > threshold)
            .map(|(id, _, _)| *id)
            .collect();
        let got: std::collections::HashSet<i64> =
            r.rows.iter().map(|x| x[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn group_by_count_partitions_rows(rows in rows_strategy()) {
        let db = seeded_db(&rows);
        let r = db
            .execute_local("SELECT grp, COUNT(*) FROM t GROUP BY grp")
            .unwrap();
        let total: i64 = r.rows.iter().map(|x| x[1].as_i64().unwrap()).sum();
        prop_assert_eq!(total, rows.len() as i64);
        // Each group's count matches the reference.
        for row in &r.rows {
            let g = row[0].to_string();
            let expected = rows.iter().filter(|(_, rg, _)| *rg == g).count() as i64;
            prop_assert_eq!(row[1].as_i64().unwrap(), expected);
        }
    }

    #[test]
    fn aggregates_match_reference(rows in rows_strategy()) {
        let db = seeded_db(&rows);
        let r = db
            .execute_local("SELECT COUNT(*), SUM(score), MIN(score), MAX(score) FROM t")
            .unwrap();
        let row = &r.rows[0];
        prop_assert_eq!(row[0].as_i64().unwrap(), rows.len() as i64);
        if rows.is_empty() {
            prop_assert_eq!(&row[1], &Value::Null);
            prop_assert_eq!(&row[2], &Value::Null);
        } else {
            prop_assert_eq!(row[1].as_i64().unwrap(), rows.iter().map(|x| x.2).sum::<i64>());
            prop_assert_eq!(row[2].as_i64().unwrap(), rows.iter().map(|x| x.2).min().unwrap());
            prop_assert_eq!(row[3].as_i64().unwrap(), rows.iter().map(|x| x.2).max().unwrap());
        }
    }

    #[test]
    fn self_join_on_key_is_identity_sized(rows in rows_strategy()) {
        let db = seeded_db(&rows);
        let r = db
            .execute_local("SELECT a.id FROM t a JOIN t b ON a.id = b.id")
            .unwrap();
        prop_assert_eq!(r.rows.len(), rows.len());
    }

    #[test]
    fn distinct_never_increases_rows(rows in rows_strategy()) {
        let db = seeded_db(&rows);
        let all = db.execute_local("SELECT grp FROM t").unwrap();
        let distinct = db.execute_local("SELECT DISTINCT grp FROM t").unwrap();
        prop_assert!(distinct.rows.len() <= all.rows.len());
        let set: std::collections::HashSet<String> =
            all.rows.iter().map(|x| x[0].to_string()).collect();
        prop_assert_eq!(distinct.rows.len(), set.len());
    }

    #[test]
    fn snapshot_restore_preserves_query_results(rows in rows_strategy()) {
        let db = seeded_db(&rows);
        let before = db
            .execute_local("SELECT id, grp, score FROM t ORDER BY id")
            .unwrap();
        let snap = db.storage().snapshot().unwrap();
        let restored_storage = crowddb_storage::Database::restore(snap).unwrap();
        // Query the restored storage through a fresh engine round.
        let caches = crowddb_exec::CompareCaches::default();
        let stmt = crowddb_sql::parse_statement("SELECT id, grp, score FROM t ORDER BY id").unwrap();
        let crowddb_sql::Statement::Select(q) = stmt else { panic!() };
        let plan = restored_storage
            .with_catalog(|c| crowddb_plan::Binder::new(c).bind_query(&q))
            .unwrap();
        let result = crowddb_exec::execute(&restored_storage, &caches, &plan).unwrap();
        prop_assert_eq!(result.rows, before.rows);
    }

    #[test]
    fn update_then_delete_is_consistent(rows in rows_strategy(), bump in 1i64..50) {
        let db = seeded_db(&rows);
        let updated = db
            .execute_local(&format!("UPDATE t SET score = score + {bump} WHERE grp = 'a'"))
            .unwrap();
        let expected_a = rows.iter().filter(|(_, g, _)| g == "a").count();
        prop_assert_eq!(updated.affected, expected_a);
        let deleted = db.execute_local("DELETE FROM t WHERE grp = 'a'").unwrap();
        prop_assert_eq!(deleted.affected, expected_a);
        let left = db.execute_local("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(left.rows[0][0].as_i64().unwrap(), (rows.len() - expected_a) as i64);
    }
}

/// Optimizer soundness: the full rule set must never change query
/// results. Random data, a query family covering filters, joins, and
/// projections, both optimizer configurations, compared as multisets.
mod optimizer_soundness {
    use super::*;
    use crowddb_exec::{execute, CompareCaches};
    use crowddb_plan::cardinality::FnStats;
    use crowddb_plan::{optimize, Binder, OptimizerConfig};
    use crowddb_sql::{parse_statement, Statement};
    use crowddb_storage::Database;

    fn raw_db(rows: &[(i64, String, i64)], more: &[(i64, String)]) -> Database {
        let db = Database::new();
        for ddl in [
            "CREATE TABLE t (id INTEGER PRIMARY KEY, grp STRING, score INTEGER)",
            "CREATE TABLE u (id INTEGER PRIMARY KEY, tag STRING)",
        ] {
            let Statement::CreateTable(ct) = parse_statement(ddl).unwrap() else {
                panic!()
            };
            let schema = db.with_catalog(|c| c.schema_from_ast(&ct)).unwrap();
            db.create_table(schema).unwrap();
        }
        for (id, grp, score) in rows {
            db.insert("t", crowddb_common::row![*id, grp.clone(), *score])
                .unwrap();
        }
        for (id, tag) in more {
            db.insert("u", crowddb_common::row![*id, tag.clone()])
                .unwrap();
        }
        db
    }

    fn run_config(db: &Database, sql: &str, config: &OptimizerConfig) -> Vec<crowddb::Row> {
        let Statement::Select(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let bound = db.with_catalog(|c| Binder::new(c).bind_query(&q)).unwrap();
        let stats_fn = |t: &str| db.stats(t).ok().map(|s| s.live_rows as u64);
        let plan = optimize(bound, &FnStats(stats_fn), config);
        let caches = CompareCaches::default();
        let mut rows = execute(db, &caches, &plan).unwrap().rows;
        rows.sort_by(|a, b| format!("{a}").cmp(&format!("{b}")));
        rows
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn optimized_equals_unoptimized(
            rows in super::rows_strategy(),
            tags in proptest::collection::vec((0i64..1000, "[x-z]"), 0..25),
            threshold in -100i64..100,
        ) {
            let mut seen = std::collections::HashSet::new();
            let tags: Vec<(i64, String)> = tags
                .into_iter()
                .filter(|(id, _)| seen.insert(*id))
                .collect();
            let db = raw_db(&rows, &tags);
            let none = OptimizerConfig {
                fold_constants: false,
                pushdown_predicates: false,
                reorder_joins: false,
                pushdown_limit: false,
            };
            let full = OptimizerConfig::default();
            for sql in [
                format!("SELECT id, score FROM t WHERE score > {threshold} AND grp <> 'q'"),
                format!(
                    "SELECT t.id, u.tag FROM t, u WHERE t.id = u.id AND t.score > {threshold}"
                ),
                "SELECT t.grp, u.tag FROM t JOIN u ON t.id = u.id WHERE 1 = 1".to_string(),
                format!(
                    "SELECT a.id FROM t a, t b, u WHERE a.id = b.id AND b.id = u.id \
                     AND a.score <= {threshold}"
                ),
                "SELECT d.s FROM (SELECT id, score AS s FROM t) AS d WHERE d.s > 0".to_string(),
            ] {
                prop_assert_eq!(
                    run_config(&db, &sql, &full),
                    run_config(&db, &sql, &none),
                    "optimizer changed results for {}",
                    sql
                );
            }
        }
    }
}

/// Marketplace simulator invariants.
mod simulator_properties {
    use super::*;
    use crowddb_platform::{PerfectModel, Platform, SimPlatform, TaskKind, TaskSpec};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn sim_never_over_delivers(seed in 0u64..5000, hits in 1usize..20, reps in 1u32..4) {
            let mut p = SimPlatform::amt(seed, Box::new(PerfectModel));
            let specs: Vec<TaskSpec> = (0..hits)
                .map(|i| {
                    TaskSpec::new(TaskKind::Equal {
                        left: format!("a{i}"),
                        right: format!("b{i}"),
                        instruction: "same?".into(),
                    })
                    .reward(3)
                    .replicate(reps)
                })
                .collect();
            let ids = p.post(specs).unwrap();
            let mut clock = 0.0;
            let mut total = 0usize;
            let mut last_now = p.now();
            while clock < 200_000.0 {
                p.advance(600.0);
                clock += 600.0;
                // Clock is monotone.
                prop_assert!(p.now() >= last_now);
                last_now = p.now();
                total += p.collect().len();
                if ids.iter().all(|h| p.is_complete(*h)) {
                    break;
                }
            }
            // Never more responses than requested assignments.
            prop_assert!(total as u64 <= (hits as u64) * (reps as u64));
            let s = p.stats();
            prop_assert!(s.assignments_completed <= s.assignments_requested);
            prop_assert_eq!(s.hits_posted, hits as u64);
        }
    }
}
