//! SQL conformance over electronic data: CrowdDB must behave like a
//! conventional DBMS when no crowd is involved ("Existing SQL queries
//! can be run on CrowdDB", paper §1).

use crowddb::{CrowdDB, Value};

fn db() -> CrowdDB {
    let db = CrowdDB::new();
    for sql in [
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name STRING, dept STRING, \
         salary INTEGER, manager STRING)",
        "CREATE TABLE dept (dept STRING PRIMARY KEY, building INTEGER)",
        "INSERT INTO dept VALUES ('eng', 1), ('sales', 2), ('hr', 3)",
        "INSERT INTO emp VALUES \
         (1, 'ada', 'eng', 120, NULL), \
         (2, 'bob', 'eng', 100, 'ada'), \
         (3, 'cyd', 'sales', 90, NULL), \
         (4, 'dan', 'sales', 80, 'cyd'), \
         (5, 'eve', 'hr', 70, NULL), \
         (6, 'fay', 'eng', 110, 'ada')",
    ] {
        db.execute_local(sql)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
    }
    db
}

fn rows(db: &CrowdDB, sql: &str) -> Vec<Vec<String>> {
    let r = db
        .execute_local(sql)
        .unwrap_or_else(|e| panic!("{sql}: {e}"));
    assert!(r.complete, "query should not need the crowd: {sql}");
    r.rows
        .iter()
        .map(|row| row.values().iter().map(|v| v.to_string()).collect())
        .collect()
}

#[test]
fn select_with_predicates() {
    let d = db();
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp WHERE salary >= 100 AND dept = 'eng' ORDER BY name"
        ),
        vec![vec!["ada"], vec!["bob"], vec!["fay"]]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp WHERE salary BETWEEN 75 AND 95 ORDER BY name"
        ),
        vec![vec!["cyd"], vec!["dan"]]
    );
    assert_eq!(
        rows(&d, "SELECT name FROM emp WHERE name LIKE '_a%' ORDER BY 1"),
        vec![vec!["dan"], vec!["fay"]]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp WHERE dept IN ('hr', 'sales') ORDER BY name"
        ),
        vec![vec!["cyd"], vec!["dan"], vec!["eve"]]
    );
}

#[test]
fn null_semantics() {
    let d = db();
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp WHERE manager IS NULL ORDER BY name"
        ),
        vec![vec!["ada"], vec!["cyd"], vec!["eve"]]
    );
    // NULL = NULL is UNKNOWN, not TRUE.
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp WHERE manager = manager AND manager IS NULL"
        ),
        Vec::<Vec<String>>::new()
    );
    assert_eq!(
        rows(&d, "SELECT COUNT(*), COUNT(manager) FROM emp"),
        vec![vec!["6", "3"]]
    );
}

#[test]
fn joins() {
    let d = db();
    assert_eq!(
        rows(
            &d,
            "SELECT e.name, d.building FROM emp e JOIN dept d ON e.dept = d.dept \
             WHERE d.building < 3 ORDER BY e.name"
        ),
        vec![
            vec!["ada", "1"],
            vec!["bob", "1"],
            vec!["cyd", "2"],
            vec!["dan", "2"],
            vec!["fay", "1"]
        ]
    );
    // Self join: who works for ada?
    assert_eq!(
        rows(
            &d,
            "SELECT e.name FROM emp e JOIN emp m ON e.manager = m.name \
             WHERE m.name = 'ada' ORDER BY e.name"
        ),
        vec![vec!["bob"], vec!["fay"]]
    );
    // Left join keeps unmatched rows.
    assert_eq!(
        rows(
            &d,
            "SELECT d.dept, COUNT(e.id) FROM dept d LEFT JOIN emp e ON d.dept = e.dept \
             AND e.salary > 150 GROUP BY d.dept ORDER BY d.dept"
        )
        .len(),
        3
    );
}

#[test]
fn aggregation() {
    let d = db();
    assert_eq!(
        rows(
            &d,
            "SELECT dept, COUNT(*), SUM(salary), MIN(salary), MAX(salary) FROM emp \
             GROUP BY dept ORDER BY dept"
        ),
        vec![
            vec!["eng", "3", "330", "100", "120"],
            vec!["hr", "1", "70", "70", "70"],
            vec!["sales", "2", "170", "80", "90"],
        ]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT dept FROM emp GROUP BY dept HAVING AVG(salary) >= 85 ORDER BY dept"
        ),
        vec![vec!["eng"], vec!["sales"]]
    );
    assert_eq!(
        rows(&d, "SELECT COUNT(DISTINCT dept) FROM emp"),
        vec![vec!["3"]]
    );
}

#[test]
fn sorting_limits_distinct() {
    let d = db();
    assert_eq!(
        rows(&d, "SELECT name FROM emp ORDER BY salary DESC LIMIT 2"),
        vec![vec!["ada"], vec!["fay"]]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp ORDER BY salary DESC LIMIT 2 OFFSET 2"
        ),
        vec![vec!["bob"], vec!["cyd"]]
    );
    assert_eq!(
        rows(&d, "SELECT DISTINCT dept FROM emp ORDER BY dept"),
        vec![vec!["eng"], vec!["hr"], vec!["sales"]]
    );
    // Multi-key sort.
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp ORDER BY dept, salary DESC LIMIT 3"
        ),
        vec![vec!["ada"], vec!["fay"], vec!["bob"]]
    );
}

#[test]
fn expressions_and_functions() {
    let d = db();
    assert_eq!(
        rows(&d, "SELECT UPPER(name), salary * 2 FROM emp WHERE id = 1"),
        vec![vec!["ADA", "240"]]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT name, CASE WHEN salary >= 110 THEN 'high' WHEN salary >= 85 THEN 'mid' \
             ELSE 'low' END FROM emp ORDER BY id LIMIT 3"
        ),
        vec![vec!["ada", "high"], vec!["bob", "mid"], vec!["cyd", "mid"]]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT COALESCE(manager, 'nobody') FROM emp WHERE id = 1"
        ),
        vec![vec!["nobody"]]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT CAST(salary AS STRING) || '$' FROM emp WHERE id = 5"
        ),
        vec![vec!["70$"]]
    );
}

#[test]
fn subqueries() {
    let d = db();
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"
        ),
        vec![vec!["ada"]]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp WHERE dept IN \
             (SELECT dept FROM dept WHERE building = 2) ORDER BY name"
        ),
        vec![vec!["cyd"], vec!["dan"]]
    );
    assert_eq!(
        rows(
            &d,
            "SELECT d.dept FROM dept d WHERE NOT EXISTS \
             (SELECT e.id FROM emp e WHERE e.salary > 100) ORDER BY d.dept"
        ),
        Vec::<Vec<String>>::new()
    );
}

#[test]
fn dml_update_delete() {
    let d = db();
    let r = d
        .execute_local("UPDATE emp SET salary = salary + 10 WHERE dept = 'eng'")
        .unwrap();
    assert_eq!(r.affected, 3);
    assert_eq!(
        rows(&d, "SELECT salary FROM emp WHERE id = 1"),
        vec![vec!["130"]]
    );
    let r = d
        .execute_local("DELETE FROM emp WHERE dept = 'hr'")
        .unwrap();
    assert_eq!(r.affected, 1);
    assert_eq!(rows(&d, "SELECT COUNT(*) FROM emp"), vec![vec!["5"]]);
}

#[test]
fn constraint_violations_surface() {
    let d = db();
    let err = d
        .execute_local("INSERT INTO emp VALUES (1, 'dup', 'eng', 1, NULL)")
        .unwrap_err();
    assert_eq!(err.category(), "constraint");
    let err = d
        .execute_local("INSERT INTO emp VALUES (7, 'x', 'eng', 'not a number', NULL)")
        .unwrap_err();
    assert_eq!(err.category(), "constraint");
}

#[test]
fn derived_tables_and_alias_scoping() {
    let d = db();
    assert_eq!(
        rows(
            &d,
            "SELECT t.d, t.total FROM \
             (SELECT dept AS d, SUM(salary) AS total FROM emp GROUP BY dept) AS t \
             WHERE t.total > 100 ORDER BY t.total DESC"
        ),
        vec![vec!["eng", "330"], vec!["sales", "170"]]
    );
}

#[test]
fn values_only_queries() {
    let d = db();
    assert_eq!(rows(&d, "SELECT 1 + 2 * 3"), vec![vec!["7"]]);
    assert_eq!(
        rows(&d, "SELECT LOWER('ABC') || '-' || UPPER('x')"),
        vec![vec!["abc-X"]]
    );
}

#[test]
fn explain_never_errors_on_valid_queries() {
    let d = db();
    for sql in [
        "SELECT * FROM emp",
        "SELECT dept, COUNT(*) FROM emp GROUP BY dept",
        "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.dept LIMIT 3",
    ] {
        let text = d.explain(sql).unwrap();
        assert!(text.contains("BOUNDED"), "{text}");
    }
}

#[test]
fn three_valued_filter_excludes_unknown() {
    let d = db();
    // manager > 'a' is UNKNOWN for NULL managers: excluded.
    assert_eq!(
        rows(&d, "SELECT COUNT(*) FROM emp WHERE manager > 'a'"),
        vec![vec!["3"]]
    );
    assert_eq!(
        rows(&d, "SELECT COUNT(*) FROM emp WHERE NOT (manager > 'a')"),
        vec![vec!["0"]]
    );
}

#[test]
fn result_value_types() {
    let d = db();
    let r = d
        .execute_local("SELECT id, name, salary FROM emp WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    assert_eq!(r.rows[0][1], Value::str("ada"));
    assert_eq!(r.columns, vec!["id", "name", "salary"]);
}

#[test]
fn union_and_union_all() {
    let d = db();
    assert_eq!(
        rows(
            &d,
            "SELECT dept FROM emp WHERE salary > 100 \
             UNION SELECT dept FROM emp WHERE salary < 80 ORDER BY dept"
        ),
        vec![vec!["eng"], vec!["hr"]]
    );
    // UNION dedups; UNION ALL keeps duplicates.
    assert_eq!(
        rows(&d, "SELECT dept FROM dept UNION SELECT dept FROM dept").len(),
        3
    );
    assert_eq!(
        rows(&d, "SELECT dept FROM dept UNION ALL SELECT dept FROM dept").len(),
        6
    );
    // Mixed arms, ORDER BY position and LIMIT over the whole union.
    assert_eq!(
        rows(
            &d,
            "SELECT name FROM emp WHERE dept = 'hr' \
             UNION ALL SELECT name FROM emp WHERE dept = 'sales' \
             ORDER BY 1 DESC LIMIT 2"
        ),
        vec![vec!["eve"], vec!["dan"]]
    );
}

#[test]
fn union_arity_mismatch_rejected() {
    let d = db();
    let err = d
        .execute_local("SELECT id, name FROM emp UNION SELECT dept FROM dept")
        .unwrap_err();
    assert!(err.message().contains("arities"), "{err}");
}

#[test]
fn union_round_trips_through_display() {
    let sql = "SELECT id FROM emp UNION ALL SELECT building FROM dept ORDER BY 1 LIMIT 4";
    let ast = crowddb_sql::parse_statement(sql).unwrap();
    let rendered = ast.to_string();
    assert_eq!(ast, crowddb_sql::parse_statement(&rendered).unwrap());
    let d = db();
    assert_eq!(rows(&d, sql).len(), 4);
}
