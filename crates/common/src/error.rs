//! The workspace-wide error type.

use std::fmt;

/// Convenient result alias used throughout CrowdDB.
pub type Result<T> = std::result::Result<T, CrowdError>;

/// Why a statement was cancelled by the resource governor.
///
/// Carried by [`CrowdError::Cancelled`]; every reason corresponds to one
/// cooperative-cancellation checkpoint class, so callers can distinguish
/// a user-initiated cancel from an enforced resource limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The session's cancel token was triggered (`\cancel` or
    /// `CancelToken::cancel`).
    UserRequested,
    /// The statement exceeded its deadline in virtual seconds.
    DeadlineExceeded,
    /// The statement produced more result rows than its output cap.
    OutputRowLimit,
    /// An operator produced more intermediate rows than the cap.
    IntermediateRowLimit,
}

impl CancelReason {
    /// Short machine-readable tag (used in metrics and events).
    pub fn tag(&self) -> &'static str {
        match self {
            CancelReason::UserRequested => "user-requested",
            CancelReason::DeadlineExceeded => "deadline-exceeded",
            CancelReason::OutputRowLimit => "output-row-limit",
            CancelReason::IntermediateRowLimit => "intermediate-row-limit",
        }
    }

    /// Human-readable message for this reason.
    pub fn message(&self) -> &'static str {
        match self {
            CancelReason::UserRequested => "statement cancelled by user request",
            CancelReason::DeadlineExceeded => "statement exceeded its deadline",
            CancelReason::OutputRowLimit => "statement exceeded its output row limit",
            CancelReason::IntermediateRowLimit => "statement exceeded its intermediate row limit",
        }
    }
}

/// Errors produced by any CrowdDB component.
///
/// A single error enum is shared across the workspace so that layers can
/// propagate failures without conversion boilerplate; the variant records
/// which stage of query processing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrowdError {
    /// Lexing or parsing of CrowdSQL failed.
    Parse(String),
    /// Name resolution / semantic analysis failed (unknown table, ambiguous
    /// column, arity mismatch, ...).
    Analyze(String),
    /// Static type checking of an expression failed.
    Type(String),
    /// Logical planning or optimization failed.
    Plan(String),
    /// The boundedness analysis determined the plan would request an
    /// unbounded amount of data from the crowd (open-world violation).
    ///
    /// The paper requires that the optimizer "warns the user at
    /// compile-time if the number of requests cannot be bounded".
    UnboundedCrowdQuery(String),
    /// Catalog manipulation failed (duplicate table, unknown column, ...).
    Catalog(String),
    /// An integrity constraint was violated (primary key, NOT NULL, foreign
    /// key, type domain).
    Constraint(String),
    /// Runtime execution failed.
    Exec(String),
    /// The crowdsourcing platform reported an error (task rejected, platform
    /// unavailable, malformed response).
    Platform(String),
    /// Quality control could not produce an accepted answer (e.g. the vote
    /// never reached quorum within the escalation budget).
    Quality(String),
    /// Task user-interface generation failed.
    Ui(String),
    /// Crowdsourcing budget exhausted before the query could complete.
    BudgetExhausted(String),
    /// A durability operation failed (write-ahead log or snapshot I/O,
    /// corrupted on-disk state).
    Io(String),
    /// The statement was cancelled cooperatively by the resource
    /// governor (user cancel, deadline, or a row cap); see
    /// [`CancelReason`]. The termination is clean: storage is
    /// uncorrupted and paid crowd answers are already settled.
    Cancelled(CancelReason),
    /// Admission control rejected the statement because the engine was
    /// at its concurrency limit and the bounded wait timed out.
    Overloaded(String),
    /// A subscription consumer fell behind its bounded delta queue: the
    /// queued batches were dropped and the next poll after this error
    /// delivers a fresh resync snapshot.
    SubscriptionLagged(String),
    /// An internal invariant was violated; indicates a CrowdDB bug.
    Internal(String),
}

impl CrowdError {
    /// Short machine-readable category name for this error.
    pub fn category(&self) -> &'static str {
        match self {
            CrowdError::Parse(_) => "parse",
            CrowdError::Analyze(_) => "analyze",
            CrowdError::Type(_) => "type",
            CrowdError::Plan(_) => "plan",
            CrowdError::UnboundedCrowdQuery(_) => "unbounded-crowd-query",
            CrowdError::Catalog(_) => "catalog",
            CrowdError::Constraint(_) => "constraint",
            CrowdError::Exec(_) => "exec",
            CrowdError::Platform(_) => "platform",
            CrowdError::Quality(_) => "quality",
            CrowdError::Ui(_) => "ui",
            CrowdError::BudgetExhausted(_) => "budget",
            CrowdError::Cancelled(_) => "cancelled",
            CrowdError::Overloaded(_) => "overloaded",
            CrowdError::SubscriptionLagged(_) => "subscription-lagged",
            CrowdError::Io(_) => "io",
            CrowdError::Internal(_) => "internal",
        }
    }

    /// The human-readable message carried by this error.
    pub fn message(&self) -> &str {
        match self {
            CrowdError::Parse(m)
            | CrowdError::Analyze(m)
            | CrowdError::Type(m)
            | CrowdError::Plan(m)
            | CrowdError::UnboundedCrowdQuery(m)
            | CrowdError::Catalog(m)
            | CrowdError::Constraint(m)
            | CrowdError::Exec(m)
            | CrowdError::Platform(m)
            | CrowdError::Quality(m)
            | CrowdError::Ui(m)
            | CrowdError::BudgetExhausted(m)
            | CrowdError::Overloaded(m)
            | CrowdError::SubscriptionLagged(m)
            | CrowdError::Io(m)
            | CrowdError::Internal(m) => m,
            CrowdError::Cancelled(reason) => reason.message(),
        }
    }
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.category(), self.message())
    }
}

impl std::error::Error for CrowdError {}

/// Build an [`CrowdError::Internal`] with format args.
#[macro_export]
macro_rules! internal_err {
    ($($arg:tt)*) => {
        $crate::CrowdError::Internal(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_and_message_roundtrip() {
        let e = CrowdError::Parse("unexpected token".into());
        assert_eq!(e.category(), "parse");
        assert_eq!(e.message(), "unexpected token");
        assert_eq!(e.to_string(), "parse error: unexpected token");
    }

    #[test]
    fn unbounded_is_distinct_category() {
        let e = CrowdError::UnboundedCrowdQuery("full scan of crowd table".into());
        assert_eq!(e.category(), "unbounded-crowd-query");
    }

    #[test]
    fn internal_macro_formats() {
        let e = internal_err!("bad state {}", 42);
        assert_eq!(e, CrowdError::Internal("bad state 42".into()));
    }

    #[test]
    fn cancelled_carries_typed_reason() {
        let e = CrowdError::Cancelled(CancelReason::DeadlineExceeded);
        assert_eq!(e.category(), "cancelled");
        assert_eq!(e.message(), "statement exceeded its deadline");
        assert_eq!(CancelReason::DeadlineExceeded.tag(), "deadline-exceeded");
        assert_eq!(
            e.to_string(),
            "cancelled error: statement exceeded its deadline"
        );
    }

    #[test]
    fn overloaded_is_distinct_category() {
        let e = CrowdError::Overloaded("admission queue full".into());
        assert_eq!(e.category(), "overloaded");
        assert_eq!(e.message(), "admission queue full");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CrowdError::Exec("x".into()));
    }
}
