//! The workspace-wide error type.

use std::fmt;

/// Convenient result alias used throughout CrowdDB.
pub type Result<T> = std::result::Result<T, CrowdError>;

/// Errors produced by any CrowdDB component.
///
/// A single error enum is shared across the workspace so that layers can
/// propagate failures without conversion boilerplate; the variant records
/// which stage of query processing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CrowdError {
    /// Lexing or parsing of CrowdSQL failed.
    Parse(String),
    /// Name resolution / semantic analysis failed (unknown table, ambiguous
    /// column, arity mismatch, ...).
    Analyze(String),
    /// Static type checking of an expression failed.
    Type(String),
    /// Logical planning or optimization failed.
    Plan(String),
    /// The boundedness analysis determined the plan would request an
    /// unbounded amount of data from the crowd (open-world violation).
    ///
    /// The paper requires that the optimizer "warns the user at
    /// compile-time if the number of requests cannot be bounded".
    UnboundedCrowdQuery(String),
    /// Catalog manipulation failed (duplicate table, unknown column, ...).
    Catalog(String),
    /// An integrity constraint was violated (primary key, NOT NULL, foreign
    /// key, type domain).
    Constraint(String),
    /// Runtime execution failed.
    Exec(String),
    /// The crowdsourcing platform reported an error (task rejected, platform
    /// unavailable, malformed response).
    Platform(String),
    /// Quality control could not produce an accepted answer (e.g. the vote
    /// never reached quorum within the escalation budget).
    Quality(String),
    /// Task user-interface generation failed.
    Ui(String),
    /// Crowdsourcing budget exhausted before the query could complete.
    BudgetExhausted(String),
    /// A durability operation failed (write-ahead log or snapshot I/O,
    /// corrupted on-disk state).
    Io(String),
    /// An internal invariant was violated; indicates a CrowdDB bug.
    Internal(String),
}

impl CrowdError {
    /// Short machine-readable category name for this error.
    pub fn category(&self) -> &'static str {
        match self {
            CrowdError::Parse(_) => "parse",
            CrowdError::Analyze(_) => "analyze",
            CrowdError::Type(_) => "type",
            CrowdError::Plan(_) => "plan",
            CrowdError::UnboundedCrowdQuery(_) => "unbounded-crowd-query",
            CrowdError::Catalog(_) => "catalog",
            CrowdError::Constraint(_) => "constraint",
            CrowdError::Exec(_) => "exec",
            CrowdError::Platform(_) => "platform",
            CrowdError::Quality(_) => "quality",
            CrowdError::Ui(_) => "ui",
            CrowdError::BudgetExhausted(_) => "budget",
            CrowdError::Io(_) => "io",
            CrowdError::Internal(_) => "internal",
        }
    }

    /// The human-readable message carried by this error.
    pub fn message(&self) -> &str {
        match self {
            CrowdError::Parse(m)
            | CrowdError::Analyze(m)
            | CrowdError::Type(m)
            | CrowdError::Plan(m)
            | CrowdError::UnboundedCrowdQuery(m)
            | CrowdError::Catalog(m)
            | CrowdError::Constraint(m)
            | CrowdError::Exec(m)
            | CrowdError::Platform(m)
            | CrowdError::Quality(m)
            | CrowdError::Ui(m)
            | CrowdError::BudgetExhausted(m)
            | CrowdError::Io(m)
            | CrowdError::Internal(m) => m,
        }
    }
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.category(), self.message())
    }
}

impl std::error::Error for CrowdError {}

/// Build an [`CrowdError::Internal`] with format args.
#[macro_export]
macro_rules! internal_err {
    ($($arg:tt)*) => {
        $crate::CrowdError::Internal(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_and_message_roundtrip() {
        let e = CrowdError::Parse("unexpected token".into());
        assert_eq!(e.category(), "parse");
        assert_eq!(e.message(), "unexpected token");
        assert_eq!(e.to_string(), "parse error: unexpected token");
    }

    #[test]
    fn unbounded_is_distinct_category() {
        let e = CrowdError::UnboundedCrowdQuery("full scan of crowd table".into());
        assert_eq!(e.category(), "unbounded-crowd-query");
    }

    #[test]
    fn internal_macro_formats() {
        let e = internal_err!("bad state {}", 42);
        assert_eq!(e, CrowdError::Internal("bad state 42".into()));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&CrowdError::Exec("x".into()));
    }
}
