//! Strongly-typed identifiers used across the engine.
//!
//! Newtypes prevent accidentally mixing, say, a table id with a tuple id;
//! all are cheap `Copy` wrappers over integers.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value of the identifier.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// Identifies a table in the catalog.
    TableId,
    "t"
);
id_type!(
    /// Identifies a tuple within a table (stable across updates, not reused
    /// after deletion).
    TupleId,
    "r"
);
id_type!(
    /// Identifies a column by ordinal position within its table.
    ColumnId,
    "c"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(TableId(3).to_string(), "t3");
        assert_eq!(TupleId(12).to_string(), "r12");
        assert_eq!(ColumnId(0).to_string(), "c0");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(TupleId(1));
        s.insert(TupleId(1));
        s.insert(TupleId(2));
        assert_eq!(s.len(), 2);
        assert!(TableId(1) < TableId(2));
    }

    #[test]
    fn from_u64() {
        let t: TableId = 7u64.into();
        assert_eq!(t.raw(), 7);
    }
}
