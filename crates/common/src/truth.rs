//! Three-valued logic (3VL).
//!
//! SQL predicates over missing data evaluate to `Unknown` rather than
//! `False`. CrowdDB keeps standard SQL semantics for `NULL`; `CNULL`
//! behaves like `NULL` during evaluation *unless* the crowd-execution layer
//! intercepts it first and sources the value (see `crowddb-exec`).

use std::fmt;

/// The SQL three-valued truth domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Truth cannot be determined because an input was missing.
    Unknown,
}

impl Truth {
    /// Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::False, _) | (_, Truth::False) => Truth::False,
            (Truth::True, Truth::True) => Truth::True,
            _ => Truth::Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        match (self, other) {
            (Truth::True, _) | (_, Truth::True) => Truth::True,
            (Truth::False, Truth::False) => Truth::False,
            _ => Truth::Unknown,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // deliberate Kleene `not`
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// SQL `WHERE` semantics: a row qualifies only when the predicate is
    /// definitely true.
    pub fn passes_filter(self) -> bool {
        self == Truth::True
    }

    /// Lift a definite boolean into the truth domain.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Project back to `Option<bool>` (`None` for `Unknown`).
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Truth::True => Some(true),
            Truth::False => Some(false),
            Truth::Unknown => None,
        }
    }
}

impl From<bool> for Truth {
    fn from(b: bool) -> Self {
        Truth::from_bool(b)
    }
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Truth::True => "TRUE",
            Truth::False => "FALSE",
            Truth::Unknown => "UNKNOWN",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Truth; 3] = [Truth::True, Truth::False, Truth::Unknown];

    #[test]
    fn and_truth_table() {
        assert_eq!(Truth::True.and(Truth::True), Truth::True);
        assert_eq!(Truth::True.and(Truth::False), Truth::False);
        assert_eq!(Truth::True.and(Truth::Unknown), Truth::Unknown);
        assert_eq!(Truth::False.and(Truth::Unknown), Truth::False);
        assert_eq!(Truth::Unknown.and(Truth::Unknown), Truth::Unknown);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Truth::False.or(Truth::False), Truth::False);
        assert_eq!(Truth::True.or(Truth::Unknown), Truth::True);
        assert_eq!(Truth::False.or(Truth::Unknown), Truth::Unknown);
        assert_eq!(Truth::Unknown.or(Truth::Unknown), Truth::Unknown);
    }

    #[test]
    fn de_morgan_holds_in_kleene_logic() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b).not(), a.not().or(b.not()));
                assert_eq!(a.or(b).not(), a.not().and(b.not()));
            }
        }
    }

    #[test]
    fn commutativity_and_associativity() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.and(b), b.and(a));
                assert_eq!(a.or(b), b.or(a));
                for c in ALL {
                    assert_eq!(a.and(b).and(c), a.and(b.and(c)));
                    assert_eq!(a.or(b).or(c), a.or(b.or(c)));
                }
            }
        }
    }

    #[test]
    fn filter_semantics() {
        assert!(Truth::True.passes_filter());
        assert!(!Truth::False.passes_filter());
        assert!(!Truth::Unknown.passes_filter());
    }

    #[test]
    fn bool_round_trip() {
        assert_eq!(Truth::from_bool(true).to_bool(), Some(true));
        assert_eq!(Truth::from_bool(false).to_bool(), Some(false));
        assert_eq!(Truth::Unknown.to_bool(), None);
    }
}
