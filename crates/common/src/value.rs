//! The CrowdDB value model, including `CNULL`.
//!
//! CrowdSQL "introduces a new value to each SQL type, referred to as
//! CNULL. [...] CNULL indicates that a value should be crowdsourced when
//! it is first used." (paper, §2.1). A `CNULL` therefore carries different
//! *intent* than `NULL`: `NULL` is a final answer ("unknown/inapplicable"),
//! while `CNULL` is a promise ("ask the crowd").

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};

use crate::truth::Truth;
use crate::types::DataType;

/// A single SQL value.
///
/// `Float` is stored as `f64`; CrowdDB forbids NaN floats at ingestion time
/// (see [`Value::validate`]) so that `Value` can provide a total sort
/// order and be hashed for grouping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// Standard SQL NULL: the value is unknown or inapplicable, final.
    Null,
    /// CrowdSQL CNULL: the value has not yet been crowdsourced.
    CNull,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (never NaN).
    Float(f64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Whether this is `NULL` or `CNULL` (i.e. missing for the purposes of
    /// standard SQL evaluation).
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Null | Value::CNull)
    }

    /// Whether this is specifically `CNULL` (crowdsourcing pending).
    pub fn is_cnull(&self) -> bool {
        matches!(self, Value::CNull)
    }

    /// The concrete type of this value, or `None` for `NULL`/`CNULL`
    /// (which inhabit every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null | Value::CNull => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Check that this value may be stored in a column of type `ty`,
    /// applying the implicit `Int -> Float` widening.
    ///
    /// Returns the (possibly widened) value to store.
    pub fn coerce_to(self, ty: DataType) -> Option<Value> {
        match (&self, ty) {
            (Value::Null, _) | (Value::CNull, _) => Some(self),
            (Value::Bool(_), DataType::Bool) => Some(self),
            (Value::Int(_), DataType::Int) => Some(self),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (Value::Float(_), DataType::Float) => Some(self),
            (Value::Str(_), DataType::Str) => Some(self),
            _ => None,
        }
    }

    /// Reject values that would break engine invariants (currently: NaN).
    pub fn validate(&self) -> Result<(), String> {
        if let Value::Float(f) = self {
            if f.is_nan() {
                return Err("NaN floats are not storable in CrowdDB".to_string());
            }
        }
        Ok(())
    }

    /// SQL equality in three-valued logic: any missing operand yields
    /// `Unknown`.
    pub fn sql_eq(&self, other: &Value) -> Truth {
        match self.compare(other) {
            None => Truth::Unknown,
            Some(ord) => Truth::from_bool(ord == Ordering::Equal),
        }
    }

    /// SQL comparison: `None` when either side is missing or the types are
    /// incomparable; otherwise the ordering under numeric unification.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) | (Value::CNull, _) | (_, Value::CNull) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used by `ORDER BY`, grouping, and index keys.
    ///
    /// Missing values sort *first* (`NULL`, then `CNULL`), matching the H2
    /// default of `NULLS FIRST`; concrete values follow their SQL order,
    /// with a fixed cross-type order (bool < numeric < string) so that the
    /// ordering is total even for heterogeneous inputs.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::CNull => 1,
                Value::Bool(_) => 2,
                Value::Int(_) | Value::Float(_) => 3,
                Value::Str(_) => 4,
            }
        }
        let (ra, rb) = (rank(self), rank(other));
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) | (Value::CNull, Value::CNull) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            // Both numeric: compare as f64, which is total given no NaN.
            (a, b) => {
                let fa = a.as_f64().expect("numeric rank implies numeric value");
                let fb = b.as_f64().expect("numeric rank implies numeric value");
                fa.partial_cmp(&fb).unwrap_or(Ordering::Equal)
            }
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a human-provided answer string into a value of type `ty`.
    ///
    /// Used when ingesting crowd answers: workers type free text into HTML
    /// forms, so integers arrive as `" 42 "`, booleans as `yes`/`no`, etc.
    /// Returns `None` if the text cannot be interpreted as `ty`.
    pub fn parse_answer(text: &str, ty: DataType) -> Option<Value> {
        let t = text.trim();
        if t.is_empty() {
            return None;
        }
        match ty {
            DataType::Str => Some(Value::Str(t.to_string())),
            DataType::Int => {
                // Tolerate thousands separators that workers often include.
                let cleaned: String = t.chars().filter(|c| *c != ',' && *c != '_').collect();
                cleaned.parse::<i64>().ok().map(Value::Int)
            }
            DataType::Float => {
                let cleaned: String = t.chars().filter(|c| *c != ',').collect();
                cleaned
                    .parse::<f64>()
                    .ok()
                    .filter(|f| !f.is_nan())
                    .map(Value::Float)
            }
            DataType::Bool => match t.to_ascii_lowercase().as_str() {
                "true" | "yes" | "y" | "1" | "t" => Some(Value::Bool(true)),
                "false" | "no" | "n" | "0" | "f" => Some(Value::Bool(false)),
                _ => None,
            },
        }
    }

    /// Render as a SQL literal (for `EXPLAIN`, logging, and plan dumps).
    pub fn sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::CNull => "CNULL".to_string(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format!("{f:?}"),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

/// Structural equality used for grouping, caching, and test assertions.
///
/// Unlike [`Value::sql_eq`], this treats `NULL == NULL` and `CNULL ==
/// CNULL` as true (but `NULL != CNULL`), and compares `Int` and `Float`
/// structurally (3 != 3.0) so that hashing stays consistent with equality.
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) | (Value::CNull, Value::CNull) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::CNull => state.write_u8(1),
            Value::Bool(b) => {
                state.write_u8(2);
                b.hash(state);
            }
            Value::Int(i) => {
                state.write_u8(3);
                i.hash(state);
            }
            Value::Float(f) => {
                state.write_u8(4);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                state.write_u8(5);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::CNull => f.write_str("CNULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_markers() {
        assert!(Value::Null.is_missing());
        assert!(Value::CNull.is_missing());
        assert!(Value::CNull.is_cnull());
        assert!(!Value::Null.is_cnull());
        assert!(!Value::Int(1).is_missing());
    }

    #[test]
    fn null_and_cnull_are_structurally_distinct() {
        assert_ne!(Value::Null, Value::CNull);
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::CNull, Value::CNull);
    }

    #[test]
    fn sql_eq_three_valued() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Truth::True);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Truth::False);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), Truth::Unknown);
        assert_eq!(Value::Null.sql_eq(&Value::Null), Truth::Unknown);
        assert_eq!(Value::CNull.sql_eq(&Value::CNull), Truth::Unknown);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).compare(&Value::Int(3)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types() {
        assert_eq!(Value::Int(1).compare(&Value::str("1")), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn sort_order_nulls_first() {
        let mut vals = vec![
            Value::str("b"),
            Value::Int(2),
            Value::CNull,
            Value::Null,
            Value::Int(1),
        ];
        vals.sort_by(|a, b| a.sort_cmp(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::CNull,
                Value::Int(1),
                Value::Int(2),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn coercion() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float),
            Some(Value::Float(3.0))
        );
        assert_eq!(Value::str("x").coerce_to(DataType::Int), None);
        assert_eq!(Value::CNull.coerce_to(DataType::Int), Some(Value::CNull));
    }

    #[test]
    fn parse_answers() {
        assert_eq!(
            Value::parse_answer(" 1,234 ", DataType::Int),
            Some(Value::Int(1234))
        );
        assert_eq!(
            Value::parse_answer("yes", DataType::Bool),
            Some(Value::Bool(true))
        );
        assert_eq!(
            Value::parse_answer("NO", DataType::Bool),
            Some(Value::Bool(false))
        );
        assert_eq!(Value::parse_answer("abc", DataType::Int), None);
        assert_eq!(Value::parse_answer("  ", DataType::Str), None);
        assert_eq!(
            Value::parse_answer(" some text ", DataType::Str),
            Some(Value::str("some text"))
        );
        assert_eq!(
            Value::parse_answer("3.5", DataType::Float),
            Some(Value::Float(3.5))
        );
    }

    #[test]
    fn sql_literals_escape() {
        assert_eq!(Value::str("it's").sql_literal(), "'it''s'");
        assert_eq!(Value::CNull.sql_literal(), "CNULL");
        assert_eq!(Value::Float(1.0).sql_literal(), "1.0");
    }

    #[test]
    fn nan_is_rejected() {
        assert!(Value::Float(f64::NAN).validate().is_err());
        assert!(Value::Float(1.0).validate().is_ok());
    }
}
