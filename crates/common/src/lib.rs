//! # crowddb-common
//!
//! Shared foundational types for the CrowdDB workspace.
//!
//! This crate defines the value model (including the `CNULL` marker that
//! CrowdSQL adds to every SQL type), the schema model (including `CROWD`
//! columns and `CROWD` tables), rows, identifiers, and the common error
//! type used across all CrowdDB crates.
//!
//! The design follows the VLDB 2011 demo paper "CrowdDB: Query Processing
//! with the VLDB Crowd": `CNULL` indicates that a value *should be
//! crowdsourced when it is first used*, which is distinct from SQL `NULL`
//! ("known to be missing / inapplicable").

pub mod error;
pub mod ids;
pub mod row;
pub mod schema;
pub mod truth;
pub mod types;
pub mod value;

pub use error::{CancelReason, CrowdError, Result};
pub use ids::{ColumnId, TableId, TupleId};
pub use row::Row;
pub use schema::{ColumnDef, ForeignKey, TableSchema};
pub use truth::Truth;
pub use types::DataType;
pub use value::Value;
