//! The CrowdSQL type system.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Data types supported by CrowdDB.
///
/// The paper's examples use `STRING` and `INTEGER`; we additionally support
/// booleans and double-precision floats, which the H2 substrate the paper
/// built on provides as well. Every type implicitly contains the two
/// missing-value markers `NULL` and `CNULL` (see
/// [`Value`](crate::value::Value)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean truth values.
    Bool,
    /// 64-bit signed integer (`INTEGER` / `INT`).
    Int,
    /// 64-bit IEEE-754 float (`FLOAT` / `DOUBLE`).
    Float,
    /// Variable-length UTF-8 string (`STRING` / `VARCHAR` / `TEXT`).
    Str,
}

impl DataType {
    /// Whether a value of type `from` can be implicitly coerced to `self`.
    ///
    /// CrowdDB implements a small, predictable lattice: `Int -> Float` is
    /// the only implicit widening. Everything else requires an explicit
    /// `CAST` or fails type checking.
    pub fn coercible_from(self, from: DataType) -> bool {
        self == from || (self == DataType::Float && from == DataType::Int)
    }

    /// The common supertype of two types for comparison/arithmetic, if any.
    pub fn unify(a: DataType, b: DataType) -> Option<DataType> {
        if a == b {
            Some(a)
        } else if matches!(
            (a, b),
            (DataType::Int, DataType::Float) | (DataType::Float, DataType::Int)
        ) {
            Some(DataType::Float)
        } else {
            None
        }
    }

    /// Whether this type supports arithmetic (`+ - * / %`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }

    /// SQL spelling of the type, as printed by `EXPLAIN` and DDL dumps.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercion_lattice() {
        assert!(DataType::Float.coercible_from(DataType::Int));
        assert!(!DataType::Int.coercible_from(DataType::Float));
        assert!(DataType::Str.coercible_from(DataType::Str));
        assert!(!DataType::Str.coercible_from(DataType::Int));
    }

    #[test]
    fn unify_numeric() {
        assert_eq!(
            DataType::unify(DataType::Int, DataType::Float),
            Some(DataType::Float)
        );
        assert_eq!(
            DataType::unify(DataType::Float, DataType::Int),
            Some(DataType::Float)
        );
        assert_eq!(
            DataType::unify(DataType::Int, DataType::Int),
            Some(DataType::Int)
        );
        assert_eq!(DataType::unify(DataType::Str, DataType::Int), None);
    }

    #[test]
    fn numeric_predicate() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Bool.is_numeric());
    }

    #[test]
    fn sql_names() {
        assert_eq!(DataType::Str.to_string(), "STRING");
        assert_eq!(DataType::Int.to_string(), "INTEGER");
    }
}
