//! Rows (tuples) flowing through the engine.

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A tuple of values.
///
/// Rows are the unit of data flow between operators and the unit of storage
/// in heap tables. A row does not know its schema; operators carry schema
/// information separately (see `crowddb-plan`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Create a row from values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the value at `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Replace the value at `idx`. Panics if out of bounds.
    pub fn set(&mut self, idx: usize, v: Value) {
        self.values[idx] = v;
    }

    /// All values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Consume the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Concatenate two rows (used by joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row { values }
    }

    /// Project the row onto the given column indexes.
    ///
    /// Panics if any index is out of bounds — projections are produced by
    /// the planner, which validates them.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row {
            values: indexes.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Indexes of columns whose value is `CNULL`.
    pub fn cnull_columns(&self) -> Vec<usize> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_cnull())
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether any column is `CNULL`.
    pub fn has_cnull(&self) -> bool {
        self.values.iter().any(Value::is_cnull)
    }
}

impl Index<usize> for Row {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Construct a [`Row`] from a list of expressions convertible to
/// [`Value`].
///
/// ```
/// use crowddb_common::{row, Value};
/// let r = row![1i64, "title", Value::CNull];
/// assert_eq!(r.arity(), 3);
/// ```
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = Row::new(vec![Value::Int(1), Value::str("x")]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.get(0), Some(&Value::Int(1)));
        assert_eq!(r.get(2), None);
        assert_eq!(r[1], Value::str("x"));
    }

    #[test]
    fn concat_and_project() {
        let a = Row::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Row::new(vec![Value::str("z")]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        let p = c.project(&[2, 0]);
        assert_eq!(p, Row::new(vec![Value::str("z"), Value::Int(1)]));
    }

    #[test]
    fn cnull_tracking() {
        let r = Row::new(vec![Value::Int(1), Value::CNull, Value::Null, Value::CNull]);
        assert!(r.has_cnull());
        assert_eq!(r.cnull_columns(), vec![1, 3]);
        let clean = Row::new(vec![Value::Int(1), Value::Null]);
        assert!(!clean.has_cnull());
    }

    #[test]
    fn row_macro() {
        let r = row![42i64, "hello", true, Value::CNull];
        assert_eq!(r[0], Value::Int(42));
        assert_eq!(r[1], Value::str("hello"));
        assert_eq!(r[2], Value::Bool(true));
        assert!(r[3].is_cnull());
    }

    #[test]
    fn display() {
        let r = row![1i64, "a"];
        assert_eq!(r.to_string(), "(1, a)");
    }

    #[test]
    fn set_replaces() {
        let mut r = row![Value::CNull];
        r.set(0, Value::Int(9));
        assert_eq!(r[0], Value::Int(9));
    }
}
