//! Schema model: tables, columns, keys, and CROWD annotations.
//!
//! CrowdSQL extends the DDL in two ways (paper §2.1):
//!
//! * a column may be marked `CROWD` — its missing values (`CNULL`) are
//!   crowdsourced on first use;
//! * a whole table may be declared `CREATE CROWD TABLE` — it is treated
//!   under the open-world assumption and new tuples may be crowdsourced.
//!
//! Both tables and columns can additionally carry free-text annotations
//! that the UI generator embeds as worker instructions (paper §3.1).

use serde::{Deserialize, Serialize};

use crate::error::{CrowdError, Result};
use crate::types::DataType;

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (stored lower-cased; SQL identifiers are
    /// case-insensitive in CrowdDB).
    pub name: String,
    /// Declared data type.
    pub data_type: DataType,
    /// `CROWD` modifier: missing values are sourced from the crowd.
    pub crowd: bool,
    /// `NOT NULL` constraint (primary-key columns are implicitly NOT NULL).
    pub not_null: bool,
    /// Optional free-text annotation used as instructions in generated
    /// task user interfaces.
    pub annotation: Option<String>,
}

impl ColumnDef {
    /// Create a plain (non-crowd, nullable) column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into().to_ascii_lowercase(),
            data_type,
            crowd: false,
            not_null: false,
            annotation: None,
        }
    }

    /// Builder: mark the column as `CROWD`.
    pub fn crowd(mut self) -> ColumnDef {
        self.crowd = true;
        self
    }

    /// Builder: mark the column as `NOT NULL`.
    pub fn not_null(mut self) -> ColumnDef {
        self.not_null = true;
        self
    }

    /// Builder: attach a free-text annotation.
    pub fn with_annotation(mut self, text: impl Into<String>) -> ColumnDef {
        self.annotation = Some(text.into());
        self
    }
}

/// A foreign-key constraint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing column ordinals in this table.
    pub columns: Vec<usize>,
    /// Referenced table name (lower-cased).
    pub ref_table: String,
    /// Referenced column names in the referenced table (lower-cased).
    pub ref_columns: Vec<String>,
}

/// Definition of a table, electronic or crowdsourced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name (lower-cased).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Ordinals of the primary-key columns (empty = no declared key).
    pub primary_key: Vec<usize>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
    /// `CREATE CROWD TABLE`: open-world table whose tuples may be
    /// crowdsourced.
    pub crowd_table: bool,
    /// Optional free-text annotation used as task instructions.
    pub annotation: Option<String>,
}

impl TableSchema {
    /// Create a schema. Column and table names are lower-cased; duplicate
    /// column names are rejected.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Result<TableSchema> {
        let name = name.into().to_ascii_lowercase();
        if name.is_empty() {
            return Err(CrowdError::Catalog("empty table name".into()));
        }
        if columns.is_empty() {
            return Err(CrowdError::Catalog(format!(
                "table '{name}' must have at least one column"
            )));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(CrowdError::Catalog(format!(
                    "duplicate column '{}' in table '{name}'",
                    c.name
                )));
            }
        }
        Ok(TableSchema {
            name,
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
            crowd_table: false,
            annotation: None,
        })
    }

    /// Builder: declare the primary key by column names.
    pub fn with_primary_key(mut self, names: &[&str]) -> Result<TableSchema> {
        let mut pk = Vec::with_capacity(names.len());
        for n in names {
            pk.push(self.column_index(n).ok_or_else(|| {
                CrowdError::Catalog(format!(
                    "primary key column '{n}' not found in table '{}'",
                    self.name
                ))
            })?);
        }
        for &i in &pk {
            self.columns[i].not_null = true;
        }
        self.primary_key = pk;
        Ok(self)
    }

    /// Builder: mark the table as a CROWD table.
    pub fn crowd(mut self) -> TableSchema {
        self.crowd_table = true;
        self
    }

    /// Builder: attach a free-text annotation.
    pub fn with_annotation(mut self, text: impl Into<String>) -> TableSchema {
        self.annotation = Some(text.into());
        self
    }

    /// Builder: add a foreign key by column names.
    pub fn with_foreign_key(
        mut self,
        columns: &[&str],
        ref_table: &str,
        ref_columns: &[&str],
    ) -> Result<TableSchema> {
        if columns.len() != ref_columns.len() {
            return Err(CrowdError::Catalog(format!(
                "foreign key arity mismatch in table '{}'",
                self.name
            )));
        }
        let mut ords = Vec::with_capacity(columns.len());
        for n in columns {
            ords.push(self.column_index(n).ok_or_else(|| {
                CrowdError::Catalog(format!(
                    "foreign key column '{n}' not found in table '{}'",
                    self.name
                ))
            })?);
        }
        self.foreign_keys.push(ForeignKey {
            columns: ords,
            ref_table: ref_table.to_ascii_lowercase(),
            ref_columns: ref_columns.iter().map(|s| s.to_ascii_lowercase()).collect(),
        });
        Ok(self)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Ordinal of the column with the given (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lname)
    }

    /// The column definition with the given (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Ordinals of all `CROWD` columns.
    pub fn crowd_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.crowd)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether this table involves the crowd at all (crowd table, or any
    /// crowd column). Such tables get task UI templates generated at
    /// compile time (paper §3.1).
    pub fn is_crowd_related(&self) -> bool {
        self.crowd_table || self.columns.iter().any(|c| c.crowd)
    }

    /// In a CROWD table, the ordinals of columns the crowd is *not* asked
    /// to fill for new tuples (none — the whole tuple is requested); in a
    /// regular table, the non-crowd columns.
    pub fn electronic_columns(&self) -> Vec<usize> {
        if self.crowd_table {
            Vec::new()
        } else {
            self.columns
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.crowd)
                .map(|(i, _)| i)
                .collect()
        }
    }

    /// Render the schema back to CrowdSQL DDL.
    pub fn to_ddl(&self) -> String {
        let mut out = String::new();
        out.push_str("CREATE ");
        if self.crowd_table {
            out.push_str("CROWD ");
        }
        out.push_str("TABLE ");
        out.push_str(&self.name);
        out.push_str(" (\n");
        let mut parts: Vec<String> = Vec::new();
        for (i, c) in self.columns.iter().enumerate() {
            let mut p = format!("  {}", c.name);
            if c.crowd {
                p.push_str(" CROWD");
            }
            p.push(' ');
            p.push_str(c.data_type.sql_name());
            if self.primary_key == vec![i] {
                p.push_str(" PRIMARY KEY");
            } else if c.not_null && !self.primary_key.contains(&i) {
                p.push_str(" NOT NULL");
            }
            parts.push(p);
        }
        if self.primary_key.len() > 1 {
            let names: Vec<&str> = self
                .primary_key
                .iter()
                .map(|&i| self.columns[i].name.as_str())
                .collect();
            parts.push(format!("  PRIMARY KEY ({})", names.join(", ")));
        }
        for fk in &self.foreign_keys {
            let cols: Vec<&str> = fk
                .columns
                .iter()
                .map(|&i| self.columns[i].name.as_str())
                .collect();
            parts.push(format!(
                "  FOREIGN KEY ({}) REF {}({})",
                cols.join(", "),
                fk.ref_table,
                fk.ref_columns.join(", ")
            ));
        }
        out.push_str(&parts.join(",\n"));
        out.push_str("\n)");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn talk_schema() -> TableSchema {
        TableSchema::new(
            "Talk",
            vec![
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("abstract", DataType::Str).crowd(),
                ColumnDef::new("nb_attendees", DataType::Int).crowd(),
            ],
        )
        .unwrap()
        .with_primary_key(&["title"])
        .unwrap()
    }

    #[test]
    fn names_are_case_insensitive() {
        let s = talk_schema();
        assert_eq!(s.name, "talk");
        assert_eq!(s.column_index("TITLE"), Some(0));
        assert_eq!(s.column_index("Nb_Attendees"), Some(2));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn crowd_columns_detected() {
        let s = talk_schema();
        assert_eq!(s.crowd_columns(), vec![1, 2]);
        assert!(s.is_crowd_related());
        assert!(!s.crowd_table);
        assert_eq!(s.electronic_columns(), vec![0]);
    }

    #[test]
    fn primary_key_implies_not_null() {
        let s = talk_schema();
        assert!(s.columns[0].not_null);
        assert_eq!(s.primary_key, vec![0]);
    }

    #[test]
    fn duplicate_columns_rejected() {
        let err = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Int),
                ColumnDef::new("A", DataType::Str),
            ],
        )
        .unwrap_err();
        assert_eq!(err.category(), "catalog");
    }

    #[test]
    fn empty_table_rejected() {
        assert!(TableSchema::new("t", vec![]).is_err());
        assert!(TableSchema::new("", vec![ColumnDef::new("a", DataType::Int)]).is_err());
    }

    #[test]
    fn crowd_table_with_foreign_key() {
        let s = TableSchema::new(
            "NotableAttendee",
            vec![
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("title", DataType::Str),
            ],
        )
        .unwrap()
        .with_primary_key(&["name"])
        .unwrap()
        .with_foreign_key(&["title"], "Talk", &["title"])
        .unwrap()
        .crowd();
        assert!(s.crowd_table);
        assert!(s.is_crowd_related());
        assert_eq!(s.electronic_columns(), Vec::<usize>::new());
        assert_eq!(s.foreign_keys[0].ref_table, "talk");
    }

    #[test]
    fn ddl_round_trips_paper_example_1() {
        let ddl = talk_schema().to_ddl();
        assert!(ddl.contains("CREATE TABLE talk"));
        assert!(ddl.contains("abstract CROWD STRING"));
        assert!(ddl.contains("nb_attendees CROWD INTEGER"));
        assert!(ddl.contains("title STRING PRIMARY KEY"));
    }

    #[test]
    fn ddl_for_crowd_table() {
        let s = TableSchema::new("x", vec![ColumnDef::new("a", DataType::Int)])
            .unwrap()
            .crowd();
        assert!(s.to_ddl().starts_with("CREATE CROWD TABLE x"));
    }

    #[test]
    fn unknown_pk_column_rejected() {
        let err = TableSchema::new("t", vec![ColumnDef::new("a", DataType::Int)])
            .unwrap()
            .with_primary_key(&["b"])
            .unwrap_err();
        assert_eq!(err.category(), "catalog");
    }

    #[test]
    fn fk_arity_mismatch_rejected() {
        let err = TableSchema::new("t", vec![ColumnDef::new("a", DataType::Int)])
            .unwrap()
            .with_foreign_key(&["a"], "u", &["x", "y"])
            .unwrap_err();
        assert_eq!(err.category(), "catalog");
    }
}
