//! Injectable clocks.
//!
//! Observability timestamps must never break the engine's determinism
//! contract (byte-identical runs per seed), so the default clock is a
//! [`TickClock`]: a monotone sequence number, not wall time. Production
//! deployments that want real timestamps opt into [`WallClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Source of event timestamps, in microseconds.
///
/// The unit is nominal: a [`TickClock`] returns a logical sequence
/// number (1, 2, 3, …) that merely *orders* events, which is all the
/// test suite and golden files need.
pub trait Clock: Send + Sync {
    /// Current time in (nominal) microseconds.
    fn now_micros(&self) -> u64;
}

/// Deterministic logical clock: each call returns the next integer,
/// starting at 1. The default for [`crate::Obs`].
#[derive(Debug, Default)]
pub struct TickClock {
    next: AtomicU64,
}

impl TickClock {
    /// A tick clock whose first reading is `1`.
    pub fn new() -> TickClock {
        TickClock {
            next: AtomicU64::new(0),
        }
    }
}

impl Clock for TickClock {
    fn now_micros(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Clock that always returns the same instant. Useful when a test wants
/// timestamps scrubbed entirely rather than sequenced.
#[derive(Debug, Clone, Copy)]
pub struct FixedClock(pub u64);

impl Clock for FixedClock {
    fn now_micros(&self) -> u64 {
        self.0
    }
}

/// Real wall-clock microseconds since the Unix epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_clock_is_a_sequence() {
        let c = TickClock::new();
        assert_eq!(c.now_micros(), 1);
        assert_eq!(c.now_micros(), 2);
        assert_eq!(c.now_micros(), 3);
    }

    #[test]
    fn fixed_clock_is_constant() {
        let c = FixedClock(42);
        assert_eq!(c.now_micros(), 42);
        assert_eq!(c.now_micros(), 42);
    }
}
