//! # crowddb-obs — the observability layer
//!
//! A small, dependency-light (parking_lot only), *deterministic*
//! measurement substrate for the engine:
//!
//! - [`MetricsRegistry`] — named counters, gauges, and fixed-bucket
//!   histograms behind sharded mutexes; snapshots are name-sorted and
//!   export to the Prometheus text format.
//! - [`EventLog`] — a bounded structured event sink covering statement
//!   spans, crowd rounds, the HIT lifecycle, vote resolutions, WAL
//!   activity, and injected faults; exports as JSON lines.
//! - [`Clock`] — injectable timestamps. The default [`TickClock`] is a
//!   logical sequence number, so event logs are byte-identical per
//!   seed; production can opt into [`WallClock`].
//!
//! The two halves are bundled into an [`Obs`] handle that every layer
//! shares via `Arc`:
//!
//! ```
//! use crowddb_obs::{Event, Obs};
//!
//! let obs = Obs::new(); // Arc<Obs> with a deterministic tick clock
//! obs.registry().counter_add("crowddb_demo_total", 2);
//! obs.events().emit(Event::HitsPosted { count: 2, reward_cents: 6 });
//!
//! let snap = obs.snapshot();
//! assert_eq!(snap.counter("crowddb_demo_total"), 2);
//! assert!(snap.to_prometheus().contains("crowddb_demo_total 2"));
//! assert!(obs.events().to_jsonl().starts_with("{\"ts\":1,\"event\":\"hits_posted\""));
//! ```
//!
//! ## Metric naming scheme
//!
//! `crowddb_<subsystem>_<quantity>[_total]`, snake_case throughout;
//! counters end in `_total`. The full taxonomy lives in DESIGN.md §9.

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod export;
pub mod registry;

use std::sync::Arc;

pub use clock::{Clock, FixedClock, TickClock, WallClock};
pub use event::{Event, EventLog, EventRecord};
pub use registry::{HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot};

/// The shared observability handle: one registry + one event log.
///
/// Constructed once per `CrowdDB` session (or injected, so tests and
/// the chaos platform can share it) and threaded through every layer.
pub struct Obs {
    registry: MetricsRegistry,
    events: EventLog,
}

impl Obs {
    /// Observability with the deterministic [`TickClock`] — the default
    /// everywhere, keeping golden files reproducible.
    #[allow(clippy::new_ret_no_self)]
    pub fn new() -> Arc<Obs> {
        Obs::with_clock(Arc::new(TickClock::new()))
    }

    /// Observability with real wall-clock timestamps.
    pub fn wall() -> Arc<Obs> {
        Obs::with_clock(Arc::new(WallClock))
    }

    /// Observability with a caller-provided clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Arc<Obs> {
        Arc::new(Obs {
            registry: MetricsRegistry::new(),
            events: EventLog::new(clock),
        })
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Snapshot the registry (shorthand for `registry().snapshot()`).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("metrics", &self.registry.snapshot().len())
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_bundles_registry_and_events() {
        let obs = Obs::new();
        obs.registry().counter_inc("crowddb_x_total");
        obs.events()
            .emit(Event::FaultInjected { kind: "hits_lost" });
        assert_eq!(obs.snapshot().counter("crowddb_x_total"), 1);
        assert_eq!(obs.events().len(), 1);
        let dbg = format!("{obs:?}");
        assert!(dbg.contains("metrics"));
    }

    #[test]
    fn independent_obs_are_isolated() {
        let a = Obs::new();
        let b = Obs::new();
        a.registry().counter_inc("crowddb_x_total");
        assert_eq!(b.snapshot().counter("crowddb_x_total"), 0);
        assert!(b.events().is_empty());
    }
}
