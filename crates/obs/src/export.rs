//! Exporters: Prometheus text exposition for the registry, JSON lines
//! for the event log. Both are hand-rolled (no serde) and fully
//! deterministic: metric order is name-sorted, float formatting is
//! `Display`-stable, and JSON field order is fixed per event variant.

use crate::event::{Event, EventRecord};
use crate::registry::{MetricValue, MetricsSnapshot};

/// Format a float the way both exporters want it: integral values print
/// without a fractional part (`5` not `5.0`), everything else via
/// `Display`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a snapshot in the Prometheus text exposition format:
/// `# TYPE` headers, cumulative `_bucket{le=...}` histogram series, and
/// name-sorted output.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snapshot.iter() {
        match value {
            MetricValue::Counter(c) => {
                out.push_str(&format!("# TYPE {name} counter\n{name} {c}\n"));
            }
            MetricValue::Gauge(g) => {
                out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", fmt_f64(*g)));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!("# TYPE {name} histogram\n"));
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(&h.counts) {
                    cumulative += count;
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                        fmt_f64(*bound)
                    ));
                }
                cumulative += h.counts.last().copied().unwrap_or(0);
                out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
                out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum)));
                out.push_str(&format!("{name}_count {}\n", h.count));
            }
        }
    }
    out
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

enum Field<'a> {
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(&'a str),
}

fn obj(ts: u64, name: &str, fields: &[(&str, Field<'_>)]) -> String {
    let mut out = format!("{{\"ts\":{ts},\"event\":\"{name}\"");
    for (key, value) in fields {
        out.push_str(&format!(",\"{key}\":"));
        match value {
            Field::U64(v) => out.push_str(&v.to_string()),
            Field::F64(v) => out.push_str(&fmt_f64(*v)),
            Field::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Field::Str(v) => out.push_str(&format!("\"{}\"", json_escape(v))),
        }
    }
    out.push('}');
    out
}

/// One event record as a single-line JSON object.
pub fn event_to_json(rec: &EventRecord) -> String {
    let ts = rec.ts;
    match &rec.event {
        Event::StatementBegin { id, sql } => obj(
            ts,
            "statement_begin",
            &[("id", Field::U64(*id)), ("sql", Field::Str(sql))],
        ),
        Event::StatementEnd {
            id,
            ok,
            complete,
            rounds,
            tasks_posted,
            answers,
            cents,
            virtual_secs,
        } => obj(
            ts,
            "statement_end",
            &[
                ("id", Field::U64(*id)),
                ("ok", Field::Bool(*ok)),
                ("complete", Field::Bool(*complete)),
                ("rounds", Field::U64(*rounds)),
                ("tasks_posted", Field::U64(*tasks_posted)),
                ("answers", Field::U64(*answers)),
                ("cents", Field::U64(*cents)),
                ("virtual_secs", Field::F64(*virtual_secs)),
            ],
        ),
        Event::SlowStatement {
            id,
            virtual_secs,
            threshold_secs,
        } => obj(
            ts,
            "slow_statement",
            &[
                ("id", Field::U64(*id)),
                ("virtual_secs", Field::F64(*virtual_secs)),
                ("threshold_secs", Field::F64(*threshold_secs)),
            ],
        ),
        Event::RoundBegin { round, needs } => obj(
            ts,
            "round_begin",
            &[("round", Field::U64(*round)), ("needs", Field::U64(*needs))],
        ),
        Event::RoundEnd {
            round,
            posted,
            answers,
            retries,
            reposts,
            degraded,
        } => obj(
            ts,
            "round_end",
            &[
                ("round", Field::U64(*round)),
                ("posted", Field::U64(*posted)),
                ("answers", Field::U64(*answers)),
                ("retries", Field::U64(*retries)),
                ("reposts", Field::U64(*reposts)),
                ("degraded", Field::Bool(*degraded)),
            ],
        ),
        Event::HitsPosted {
            count,
            reward_cents,
        } => obj(
            ts,
            "hits_posted",
            &[
                ("count", Field::U64(*count)),
                ("reward_cents", Field::U64(*reward_cents)),
            ],
        ),
        Event::HitAnswered { duplicate } => obj(
            ts,
            "hit_answered",
            &[("duplicate", Field::Bool(*duplicate))],
        ),
        Event::PostRetried { attempt } => {
            obj(ts, "post_retried", &[("attempt", Field::U64(*attempt))])
        }
        Event::HitReposted { repost } => {
            obj(ts, "hit_reposted", &[("repost", Field::U64(*repost))])
        }
        Event::HitExpired { reposts } => {
            obj(ts, "hit_expired", &[("reposts", Field::U64(*reposts))])
        }
        Event::Degraded { abandoned } => {
            obj(ts, "degraded", &[("abandoned", Field::U64(*abandoned))])
        }
        Event::VoteResolved {
            kind,
            decided,
            votes,
            total,
        } => obj(
            ts,
            "vote_resolved",
            &[
                ("kind", Field::Str(kind)),
                ("decided", Field::Bool(*decided)),
                ("votes", Field::U64(*votes)),
                ("total", Field::U64(*total)),
            ],
        ),
        Event::WalAppend { kind, bytes } => obj(
            ts,
            "wal_append",
            &[("kind", Field::Str(kind)), ("bytes", Field::U64(*bytes))],
        ),
        Event::WalFsync { micros } => obj(ts, "wal_fsync", &[("micros", Field::U64(*micros))]),
        Event::WalCheckpoint { bytes, records } => obj(
            ts,
            "wal_checkpoint",
            &[
                ("bytes", Field::U64(*bytes)),
                ("records", Field::U64(*records)),
            ],
        ),
        Event::FaultInjected { kind } => obj(ts, "fault_injected", &[("kind", Field::Str(kind))]),
        Event::StatementCancelled { id, reason } => obj(
            ts,
            "statement_cancelled",
            &[("id", Field::U64(*id)), ("reason", Field::Str(reason))],
        ),
        Event::AdmissionRejected { crowd } => {
            obj(ts, "admission_rejected", &[("crowd", Field::Bool(*crowd))])
        }
        Event::PanicContained { id } => obj(ts, "panic_contained", &[("id", Field::U64(*id))]),
        Event::ConnectionOpened { tenant, session } => obj(
            ts,
            "connection_opened",
            &[
                ("tenant", Field::Str(tenant)),
                ("session", Field::U64(*session)),
            ],
        ),
        Event::ConnectionClosed {
            tenant,
            session,
            requests,
        } => obj(
            ts,
            "connection_closed",
            &[
                ("tenant", Field::Str(tenant)),
                ("session", Field::U64(*session)),
                ("requests", Field::U64(*requests)),
            ],
        ),
        Event::ServerOverloaded { tenant, crowd } => obj(
            ts,
            "server_overloaded",
            &[
                ("tenant", Field::Str(tenant)),
                ("crowd", Field::Bool(*crowd)),
            ],
        ),
        Event::SubscriptionOpened { id, sql } => obj(
            ts,
            "subscription_opened",
            &[("id", Field::U64(*id)), ("sql", Field::Str(sql))],
        ),
        Event::SubscriptionClosed { id } => {
            obj(ts, "subscription_closed", &[("id", Field::U64(*id))])
        }
        Event::SubscriptionDelta {
            id,
            revision,
            added,
            removed,
        } => obj(
            ts,
            "subscription_delta",
            &[
                ("id", Field::U64(*id)),
                ("revision", Field::U64(*revision)),
                ("added", Field::U64(*added)),
                ("removed", Field::U64(*removed)),
            ],
        ),
        Event::SubscriptionLagged { id, dropped } => obj(
            ts,
            "subscription_lagged",
            &[("id", Field::U64(*id)), ("dropped", Field::U64(*dropped))],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn prometheus_renders_all_kinds() {
        let r = MetricsRegistry::new();
        r.counter_add("crowddb_a_total", 3);
        r.gauge_set("crowddb_g", 2.5);
        r.observe_with("crowddb_h", &[1.0, 10.0], 0.5);
        r.observe_with("crowddb_h", &[1.0, 10.0], 100.0);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE crowddb_a_total counter\ncrowddb_a_total 3\n"));
        assert!(text.contains("# TYPE crowddb_g gauge\ncrowddb_g 2.5\n"));
        assert!(text.contains("crowddb_h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("crowddb_h_bucket{le=\"10\"} 1\n"));
        assert!(text.contains("crowddb_h_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("crowddb_h_sum 100.5\n"));
        assert!(text.contains("crowddb_h_count 2\n"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let rec = EventRecord {
            ts: 7,
            event: Event::StatementBegin {
                id: 1,
                sql: "SELECT \"x\"\n\tFROM t\\u".to_string(),
            },
        };
        assert_eq!(
            rec.to_json(),
            "{\"ts\":7,\"event\":\"statement_begin\",\"id\":1,\
             \"sql\":\"SELECT \\\"x\\\"\\n\\tFROM t\\\\u\"}"
        );
    }

    #[test]
    fn floats_format_stably() {
        assert_eq!(fmt_f64(5.0), "5");
        assert_eq!(fmt_f64(2.5), "2.5");
        assert_eq!(fmt_f64(-3.0), "-3");
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
    }
}
