//! The structured event log.
//!
//! Every layer of the engine emits [`Event`]s into a shared
//! [`EventLog`]: statement spans from `core`, crowd-round and HIT
//! lifecycle events from the task manager, vote resolutions from
//! `quality`, WAL activity from the durability subsystem, and injected
//! faults from the chaos platform. The log is a bounded in-memory ring
//! (oldest entries dropped first) exported as JSON lines.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::Clock;
use crate::export;

/// Default event-log capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 1 << 16;

/// One structured event. Field order here is the field order in the
/// JSON-lines export.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A SQL statement entered the engine.
    StatementBegin {
        /// Session-unique statement id (pairs with `StatementEnd`).
        id: u64,
        /// The statement text, trimmed.
        sql: String,
    },
    /// A SQL statement finished (successfully or not).
    StatementEnd {
        /// Statement id from the matching `StatementBegin`.
        id: u64,
        /// Whether execution returned `Ok`.
        ok: bool,
        /// Whether the result was complete (no exhausted crowd work).
        complete: bool,
        /// Crowd rounds executed.
        rounds: u64,
        /// HITs posted (platform-visible).
        tasks_posted: u64,
        /// Assignments completed.
        answers: u64,
        /// Cents spent on this statement.
        cents: u64,
        /// Virtual seconds of crowd latency.
        virtual_secs: f64,
    },
    /// A statement exceeded the configured slow-statement threshold.
    SlowStatement {
        /// Statement id.
        id: u64,
        /// Observed virtual seconds.
        virtual_secs: f64,
        /// The threshold it exceeded.
        threshold_secs: f64,
    },
    /// A crowd round (one task-manager wave) is starting.
    RoundBegin {
        /// 1-based round number within the statement.
        round: u64,
        /// Task needs handed to the wave (post budget trim).
        needs: u64,
    },
    /// A crowd round finished.
    RoundEnd {
        /// Round number from the matching `RoundBegin`.
        round: u64,
        /// HITs posted this round.
        posted: u64,
        /// Responses collected this round.
        answers: u64,
        /// Post retries this round.
        retries: u64,
        /// HIT reposts this round.
        reposts: u64,
        /// Whether the wave degraded (circuit breaker tripped).
        degraded: bool,
    },
    /// A batch of HITs was accepted by the platform.
    HitsPosted {
        /// HITs in the batch.
        count: u64,
        /// Total liability in cents (reward × assignments, summed).
        reward_cents: u64,
    },
    /// One assignment response arrived.
    HitAnswered {
        /// Whether it was a duplicate delivery (dropped, not voted).
        duplicate: bool,
    },
    /// A failed post is being retried after backoff.
    PostRetried {
        /// 1-based attempt number that just failed.
        attempt: u64,
    },
    /// A HIT missed its deadline and was reposted.
    HitReposted {
        /// 1-based repost number for the underlying need.
        repost: u64,
    },
    /// A HIT missed its deadline with no repost budget left.
    HitExpired {
        /// Reposts already consumed for the need.
        reposts: u64,
    },
    /// The circuit breaker tripped; unresolved needs were abandoned.
    Degraded {
        /// Needs abandoned by the trip.
        abandoned: u64,
    },
    /// A majority vote reached its final outcome.
    VoteResolved {
        /// Task kind (`probe` / `equal` / `order`).
        kind: &'static str,
        /// Whether a strict majority decided.
        decided: bool,
        /// Votes for the winning answer (0 when undecided).
        votes: u64,
        /// Total ballots cast.
        total: u64,
    },
    /// A record was appended to the write-ahead log.
    WalAppend {
        /// Record kind (`LogRecord::kind`).
        kind: &'static str,
        /// Framed bytes written.
        bytes: u64,
    },
    /// The log was fsynced.
    WalFsync {
        /// Wall-clock fsync latency in microseconds.
        micros: u64,
    },
    /// A snapshot checkpoint truncated the log.
    WalCheckpoint {
        /// Snapshot payload bytes.
        bytes: u64,
        /// Log records the checkpoint absorbed.
        records: u64,
    },
    /// The fault injector fired.
    FaultInjected {
        /// Fault kind (`FaultStats` field name).
        kind: &'static str,
    },
    /// The resource governor terminated a statement.
    StatementCancelled {
        /// Statement id.
        id: u64,
        /// `CancelReason::tag()` (`user-requested`, `deadline-exceeded`,
        /// `output-row-limit`, `intermediate-row-limit`).
        reason: &'static str,
    },
    /// Admission control rejected a statement (session at capacity).
    AdmissionRejected {
        /// Whether the rejected statement was crowd-touching.
        crowd: bool,
    },
    /// A panicking statement was contained by the governor; the session
    /// stays usable.
    PanicContained {
        /// Statement id.
        id: u64,
    },
    /// A client connection completed the wire handshake and
    /// authenticated to a tenant.
    ConnectionOpened {
        /// Tenant the connection authenticated as.
        tenant: String,
        /// Server-unique session id.
        session: u64,
    },
    /// A client connection ended (clean close, drain, or error).
    ConnectionClosed {
        /// Tenant the connection belonged to.
        tenant: String,
        /// Session id from the matching `ConnectionOpened`.
        session: u64,
        /// Requests the session served.
        requests: u64,
    },
    /// Server-level admission control turned a request away with an
    /// `Overloaded` response.
    ServerOverloaded {
        /// Tenant whose request was rejected.
        tenant: String,
        /// Whether the rejected request was crowd-touching.
        crowd: bool,
    },
    /// A standing query (`SUBSCRIBE`) was registered.
    SubscriptionOpened {
        /// Engine-unique subscription id.
        id: u64,
        /// Canonical SQL of the underlying `SELECT`.
        sql: String,
    },
    /// A standing query was dropped (`UNSUBSCRIBE` or session cleanup).
    SubscriptionClosed {
        /// Subscription id from the matching `SubscriptionOpened`.
        id: u64,
    },
    /// A standing query emitted a delta batch.
    SubscriptionDelta {
        /// Subscription id.
        id: u64,
        /// Monotone revision number of the batch.
        revision: u64,
        /// Rows added.
        added: u64,
        /// Rows removed.
        removed: u64,
    },
    /// A subscription consumer fell behind its bounded queue; queued
    /// batches were dropped pending a resync snapshot.
    SubscriptionLagged {
        /// Subscription id.
        id: u64,
        /// Delta batches dropped from the queue.
        dropped: u64,
    },
}

impl Event {
    /// The event's type tag, as it appears in the JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            Event::StatementBegin { .. } => "statement_begin",
            Event::StatementEnd { .. } => "statement_end",
            Event::SlowStatement { .. } => "slow_statement",
            Event::RoundBegin { .. } => "round_begin",
            Event::RoundEnd { .. } => "round_end",
            Event::HitsPosted { .. } => "hits_posted",
            Event::HitAnswered { .. } => "hit_answered",
            Event::PostRetried { .. } => "post_retried",
            Event::HitReposted { .. } => "hit_reposted",
            Event::HitExpired { .. } => "hit_expired",
            Event::Degraded { .. } => "degraded",
            Event::VoteResolved { .. } => "vote_resolved",
            Event::WalAppend { .. } => "wal_append",
            Event::WalFsync { .. } => "wal_fsync",
            Event::WalCheckpoint { .. } => "wal_checkpoint",
            Event::FaultInjected { .. } => "fault_injected",
            Event::StatementCancelled { .. } => "statement_cancelled",
            Event::AdmissionRejected { .. } => "admission_rejected",
            Event::PanicContained { .. } => "panic_contained",
            Event::ConnectionOpened { .. } => "connection_opened",
            Event::ConnectionClosed { .. } => "connection_closed",
            Event::ServerOverloaded { .. } => "server_overloaded",
            Event::SubscriptionOpened { .. } => "subscription_opened",
            Event::SubscriptionClosed { .. } => "subscription_closed",
            Event::SubscriptionDelta { .. } => "subscription_delta",
            Event::SubscriptionLagged { .. } => "subscription_lagged",
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Timestamp from the log's [`Clock`] (a sequence number under the
    /// default `TickClock`).
    pub ts: u64,
    /// The event.
    pub event: Event,
}

impl EventRecord {
    /// One JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        export::event_to_json(self)
    }
}

struct Inner {
    events: VecDeque<EventRecord>,
    dropped: u64,
    cap: usize,
}

/// Bounded, thread-safe event sink.
pub struct EventLog {
    clock: Arc<dyn Clock>,
    inner: Mutex<Inner>,
}

impl EventLog {
    /// Event log with the default capacity.
    pub fn new(clock: Arc<dyn Clock>) -> EventLog {
        EventLog::with_capacity(clock, DEFAULT_EVENT_CAPACITY)
    }

    /// Event log keeping at most `cap` most-recent events.
    pub fn with_capacity(clock: Arc<dyn Clock>, cap: usize) -> EventLog {
        EventLog {
            clock,
            inner: Mutex::new(Inner {
                events: VecDeque::new(),
                dropped: 0,
                cap: cap.max(1),
            }),
        }
    }

    /// Append `event`, timestamped by the log's clock. Drops the oldest
    /// entry when full.
    pub fn emit(&self, event: Event) {
        let ts = self.clock.now_micros();
        let mut inner = self.inner.lock();
        if inner.events.len() == inner.cap {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(EventRecord { ts, event });
    }

    /// Events currently retained (oldest first).
    pub fn records(&self) -> Vec<EventRecord> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Discard all retained events (the drop counter is kept).
    pub fn clear(&self) {
        self.inner.lock().events.clear();
    }

    /// Export the retained events as JSON lines (one object per line,
    /// trailing newline included when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.inner.lock().events.iter() {
            out.push_str(&export::event_to_json(rec));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("len", &self.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TickClock;

    #[test]
    fn emit_orders_and_timestamps() {
        let log = EventLog::new(Arc::new(TickClock::new()));
        log.emit(Event::HitsPosted {
            count: 3,
            reward_cents: 9,
        });
        log.emit(Event::HitAnswered { duplicate: false });
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, 1);
        assert_eq!(recs[1].ts, 2);
        assert_eq!(recs[0].event.name(), "hits_posted");
    }

    #[test]
    fn capacity_drops_oldest() {
        let log = EventLog::with_capacity(Arc::new(TickClock::new()), 2);
        for _ in 0..5 {
            log.emit(Event::HitAnswered { duplicate: false });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        assert_eq!(log.records()[0].ts, 4);
    }
}
