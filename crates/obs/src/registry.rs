//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms behind sharded mutexes.
//!
//! Lookups hash the metric name (FNV-1a) to one of a small fixed number
//! of shards, each a `parking_lot::Mutex<HashMap>` — cheap enough for
//! the engine's hot paths (which are dominated by simulated human
//! latency anyway) while staying dependency-free and deterministic.
//!
//! Snapshots ([`MetricsRegistry::snapshot`]) copy everything into a
//! `BTreeMap`, so iteration order — and therefore the Prometheus
//! export — is stable regardless of insertion order.

use std::collections::{BTreeMap, HashMap};

use parking_lot::Mutex;

use crate::export;

const SHARDS: usize = 16;

/// Default histogram bucket upper bounds, tuned for the quantities the
/// engine observes (row counts, cents, virtual seconds).
pub const DEFAULT_BUCKETS: &[f64] = &[
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    1000.0,
    10_000.0,
    100_000.0,
    1_000_000.0,
];

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histo),
}

#[derive(Debug, Clone)]
struct Histo {
    bounds: Vec<f64>,
    /// One count per bound, plus a final overflow (`+Inf`) bucket.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histo {
    fn new(bounds: &[f64]) -> Histo {
        Histo {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += v;
        self.count += 1;
    }
}

/// Sharded registry of named metrics.
///
/// Names follow the Prometheus convention used throughout the engine:
/// `crowddb_<subsystem>_<what>[_total]`, snake_case, counters suffixed
/// `_total`. A name is bound to one metric kind; re-registering a name
/// with a different kind resets it to the new kind (last kind wins).
pub struct MetricsRegistry {
    shards: Vec<Mutex<HashMap<String, Metric>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        &self.shards[(fnv1a(name) as usize) % SHARDS]
    }

    /// Add `delta` to the counter `name`, creating it at zero first.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut shard = self.shard(name).lock();
        match shard.get_mut(name) {
            Some(Metric::Counter(c)) => *c += delta,
            _ => {
                shard.insert(name.to_string(), Metric::Counter(delta));
            }
        }
    }

    /// Increment the counter `name` by one.
    pub fn counter_inc(&self, name: &str) {
        self.counter_add(name, 1);
    }

    /// Set the gauge `name` to `v`.
    pub fn gauge_set(&self, name: &str, v: f64) {
        self.shard(name)
            .lock()
            .insert(name.to_string(), Metric::Gauge(v));
    }

    /// Record `v` into the histogram `name` with [`DEFAULT_BUCKETS`].
    pub fn observe(&self, name: &str, v: f64) {
        self.observe_with(name, DEFAULT_BUCKETS, v);
    }

    /// Record `v` into the histogram `name`, creating it with the given
    /// bucket bounds if absent (bounds of an existing histogram are
    /// kept — they are fixed at first observation).
    pub fn observe_with(&self, name: &str, bounds: &[f64], v: f64) {
        let mut shard = self.shard(name).lock();
        match shard.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(v),
            _ => {
                let mut h = Histo::new(bounds);
                h.observe(v);
                shard.insert(name.to_string(), Metric::Histogram(h));
            }
        }
    }

    /// Copy the current state of every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics = BTreeMap::new();
        for shard in &self.shards {
            for (name, metric) in shard.lock().iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(*c),
                    Metric::Gauge(g) => MetricValue::Gauge(*g),
                    Metric::Histogram(h) => MetricValue::Histogram(HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        counts: h.counts.clone(),
                        sum: h.sum,
                        count: h.count,
                    }),
                };
                metrics.insert(name.clone(), value);
            }
        }
        MetricsSnapshot { metrics }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

/// Point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (exclusive of the implicit `+Inf` bucket).
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `counts.len() == bounds.len() + 1`,
    /// the last entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

/// A sorted, immutable copy of the registry — what
/// `CrowdDB::metrics()` hands back.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Value of the counter `name`; absent counters read as 0.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Value of the gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// The histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterate metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Render the snapshot in the Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        export::to_prometheus(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.counter_inc("a_total");
        r.counter_add("a_total", 4);
        assert_eq!(r.snapshot().counter("a_total"), 5);
        assert_eq!(r.snapshot().counter("missing_total"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", 1.5);
        r.gauge_set("g", -2.0);
        assert_eq!(r.snapshot().gauge("g"), Some(-2.0));
        assert_eq!(r.snapshot().gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let r = MetricsRegistry::new();
        for v in [0.5, 1.0, 3.0, 1e9] {
            r.observe_with("h", &[1.0, 5.0], v);
        }
        let snap = r.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![1.0, 5.0]);
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 1_000_000_004.5).abs() < 1e-6);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        let r = MetricsRegistry::new();
        r.counter_inc("zz");
        r.counter_inc("aa");
        r.counter_inc("mm");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
    }
}
