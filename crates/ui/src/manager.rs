//! The UI Template Manager and Form Editor.

use std::collections::BTreeMap;

use crowddb_common::{CrowdError, Result, TableSchema};

use crate::creation::UiCreation;
use crate::template::{TemplateKind, UiTemplate};

/// Central store of task UI templates.
///
/// "All generated templates are centrally managed by the UI Template
/// Manager. Furthermore, these templates can be edited by application
/// developers in order to provide additional custom instructions." (§3.1)
#[derive(Debug, Default)]
pub struct UiTemplateManager {
    templates: BTreeMap<String, UiTemplate>,
}

impl UiTemplateManager {
    /// Empty manager.
    pub fn new() -> UiTemplateManager {
        UiTemplateManager::default()
    }

    /// Generate and register all templates for a schema (called when a
    /// table is created). Re-registering a schema replaces its templates,
    /// preserving nothing — edits are lost on DDL changes, matching the
    /// compile-time nature of generation.
    pub fn register_schema(&mut self, schema: &TableSchema) {
        for t in UiCreation::templates_for(schema) {
            self.templates.insert(t.name.clone(), t);
        }
    }

    /// Drop all templates of a table (called on `DROP TABLE`).
    pub fn drop_table(&mut self, table: &str) {
        let prefix = format!("{}:", table.to_ascii_lowercase());
        self.templates.retain(|name, _| !name.starts_with(&prefix));
    }

    /// Fetch a template by table and kind.
    pub fn get(&self, table: &str, kind: TemplateKind) -> Option<&UiTemplate> {
        self.templates.get(&UiCreation::template_name(
            &table.to_ascii_lowercase(),
            kind,
        ))
    }

    /// The Form Editor hook: apply `edit` to the named template.
    ///
    /// Application developers use this to customize worker instructions,
    /// hints, or titles without regenerating the template.
    pub fn edit(
        &mut self,
        table: &str,
        kind: TemplateKind,
        edit: impl FnOnce(&mut UiTemplate),
    ) -> Result<()> {
        let name = UiCreation::template_name(&table.to_ascii_lowercase(), kind);
        let t = self.templates.get_mut(&name).ok_or_else(|| {
            CrowdError::Ui(format!(
                "no template '{name}' — is the table crowd-related?"
            ))
        })?;
        edit(t);
        Ok(())
    }

    /// Names of all registered templates, sorted.
    pub fn template_names(&self) -> Vec<&str> {
        self.templates.keys().map(String::as_str).collect()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether no templates are registered.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::{ColumnDef, DataType};

    fn talk_schema() -> TableSchema {
        TableSchema::new(
            "talk",
            vec![
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("abstract", DataType::Str).crowd(),
            ],
        )
        .unwrap()
        .with_primary_key(&["title"])
        .unwrap()
    }

    fn attendee_schema() -> TableSchema {
        TableSchema::new(
            "notableattendee",
            vec![
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("title", DataType::Str),
            ],
        )
        .unwrap()
        .with_primary_key(&["name"])
        .unwrap()
        .crowd()
    }

    #[test]
    fn register_and_get() {
        let mut m = UiTemplateManager::new();
        m.register_schema(&talk_schema());
        m.register_schema(&attendee_schema());
        assert_eq!(m.len(), 3); // talk:probe, attendee:probe+new
        assert!(m.get("talk", TemplateKind::Probe).is_some());
        assert!(m.get("TALK", TemplateKind::Probe).is_some());
        assert!(m.get("talk", TemplateKind::NewTuples).is_none());
        assert!(m.get("notableattendee", TemplateKind::NewTuples).is_some());
    }

    #[test]
    fn form_editor_edits_instructions() {
        let mut m = UiTemplateManager::new();
        m.register_schema(&talk_schema());
        m.edit("talk", TemplateKind::Probe, |t| {
            t.instructions = "Find the abstract on the conference website.".into();
        })
        .unwrap();
        assert_eq!(
            m.get("talk", TemplateKind::Probe).unwrap().instructions,
            "Find the abstract on the conference website."
        );
    }

    #[test]
    fn edit_unknown_template_errors() {
        let mut m = UiTemplateManager::new();
        let err = m.edit("ghost", TemplateKind::Probe, |_| {}).unwrap_err();
        assert_eq!(err.category(), "ui");
    }

    #[test]
    fn drop_table_removes_its_templates() {
        let mut m = UiTemplateManager::new();
        m.register_schema(&talk_schema());
        m.register_schema(&attendee_schema());
        m.drop_table("notableattendee");
        assert_eq!(m.template_names(), vec!["talk:probe"]);
    }

    #[test]
    fn reregister_replaces_and_discards_edits() {
        let mut m = UiTemplateManager::new();
        m.register_schema(&talk_schema());
        m.edit("talk", TemplateKind::Probe, |t| {
            t.instructions = "custom".into();
        })
        .unwrap();
        m.register_schema(&talk_schema());
        assert_ne!(
            m.get("talk", TemplateKind::Probe).unwrap().instructions,
            "custom"
        );
    }
}
