//! Minimal HTML construction helpers.

/// Escape text for safe inclusion in HTML content or attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// A labeled read-only field (known value copied into the form).
pub fn readonly_field(label: &str, value: &str) -> String {
    format!(
        "<div class=\"field known\"><label>{}</label>\
         <input type=\"text\" name=\"{}\" value=\"{}\" readonly></div>",
        escape(label),
        escape(label),
        escape(value)
    )
}

/// A labeled input field the worker must fill.
pub fn input_field(label: &str, hint: &str) -> String {
    format!(
        "<div class=\"field asked\"><label>{}</label>\
         <input type=\"text\" name=\"{}\" placeholder=\"{}\"></div>",
        escape(label),
        escape(label),
        escape(hint)
    )
}

/// A two-option radio choice (used by compare tasks).
pub fn radio_choice(name: &str, options: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (value, label) in options {
        out.push_str(&format!(
            "<label class=\"choice\"><input type=\"radio\" name=\"{}\" value=\"{}\"> {}</label>",
            escape(name),
            escape(value),
            escape(label)
        ));
    }
    out
}

/// Wrap a body in a complete submit-able form page.
pub fn page(title: &str, instructions: &str, body: &str, mobile: bool) -> String {
    let class = if mobile {
        "crowddb mobile"
    } else {
        "crowddb mturk"
    };
    format!(
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\
         {viewport}<title>{title}</title></head>\
         <body class=\"{class}\"><h1>{title}</h1>\
         <p class=\"instructions\">{instructions}</p>\
         <form method=\"post\" action=\"submit\">{body}\
         <button type=\"submit\">Submit</button></form></body></html>",
        viewport = if mobile {
            "<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">"
        } else {
            ""
        },
        title = escape(title),
        instructions = escape(instructions),
        class = class,
        body = body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(escape("a<b>&\"'c"), "a&lt;b&gt;&amp;&quot;&#39;c");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn readonly_field_escapes_value() {
        let h = readonly_field("title", "Crowd<DB>");
        assert!(h.contains("value=\"Crowd&lt;DB&gt;\""));
        assert!(h.contains("readonly"));
    }

    #[test]
    fn input_field_has_no_value() {
        let h = input_field("abstract", "enter the abstract");
        assert!(h.contains("placeholder=\"enter the abstract\""));
        assert!(!h.contains("readonly"));
    }

    #[test]
    fn radio_choice_lists_options() {
        let h = radio_choice("verdict", &[("yes", "Same"), ("no", "Different")]);
        assert_eq!(h.matches("type=\"radio\"").count(), 2);
        assert!(h.contains("value=\"yes\""));
    }

    #[test]
    fn page_structure() {
        let p = page("Fill the table", "Do it well", "<div>x</div>", false);
        assert!(p.starts_with("<!DOCTYPE html>"));
        assert!(p.contains("<form method=\"post\""));
        assert!(p.contains("class=\"crowddb mturk\""));
        assert!(!p.contains("viewport"));
        let m = page("t", "i", "b", true);
        assert!(m.contains("viewport"));
        assert!(m.contains("class=\"crowddb mobile\""));
    }
}
