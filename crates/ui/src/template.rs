//! Task user-interface templates.
//!
//! A template is created once per (table, task shape) at schema-definition
//! time and instantiated with concrete tuple values at run time. Templates
//! carry editable instructions (the Form Editor's hook) and a field list
//! that drives both HTML generation and answer parsing.

use std::collections::HashMap;

use crowddb_common::DataType;
use serde::{Deserialize, Serialize};

use crate::html;

/// One form field of a template.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Column name.
    pub name: String,
    /// Column type (drives answer parsing).
    pub data_type: DataType,
    /// Whether the field is shown read-only (known value) or asked.
    pub asked: bool,
    /// Placeholder/hint text for asked fields.
    pub hint: String,
}

/// The shape of task a template serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Fill missing CROWD-column values of an existing tuple.
    Probe,
    /// Contribute new tuples of a CROWD table.
    NewTuples,
}

/// A reusable task UI template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UiTemplate {
    /// Unique template name, `<table>:<kind>`.
    pub name: String,
    /// Table this template crowdsources.
    pub table: String,
    /// Template shape.
    pub kind: TemplateKind,
    /// Page title shown to workers.
    pub title: String,
    /// Instructions paragraph (editable by the Form Editor).
    pub instructions: String,
    /// All fields, in schema order.
    pub fields: Vec<FieldSpec>,
}

impl UiTemplate {
    /// Instantiate the template for a concrete tuple.
    ///
    /// `known` maps column names to rendered values; fields present in
    /// `known` are shown read-only, fields in `asked` become inputs.
    /// Fields neither known nor asked are omitted — the paper's example
    /// shows only the fields relevant to the query.
    pub fn instantiate(
        &self,
        known: &HashMap<String, String>,
        asked: &[String],
        mobile: bool,
    ) -> String {
        let mut body = String::new();
        body.push_str(&format!(
            "<p class=\"table-name\">Table: <b>{}</b></p>",
            html::escape(&self.table)
        ));
        for f in &self.fields {
            if let Some(v) = known.get(&f.name) {
                body.push_str(&html::readonly_field(&f.name, v));
            } else if asked.iter().any(|a| a == &f.name) {
                body.push_str(&html::input_field(&f.name, &f.hint));
            }
        }
        html::page(&self.title, &self.instructions, &body, mobile)
    }

    /// Parse a submitted form (field → raw text) according to the field
    /// specs, discarding unknown fields. Returns `(field, text)` pairs in
    /// schema order.
    pub fn parse_submission(&self, form: &HashMap<String, String>) -> Vec<(String, String)> {
        self.fields
            .iter()
            .filter_map(|f| form.get(&f.name).map(|v| (f.name.clone(), v.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn talk_template() -> UiTemplate {
        UiTemplate {
            name: "talk:probe".into(),
            table: "talk".into(),
            kind: TemplateKind::Probe,
            title: "Please fill out missing fields of the following Table".into(),
            instructions: "Enter the missing information for the Talk.".into(),
            fields: vec![
                FieldSpec {
                    name: "title".into(),
                    data_type: DataType::Str,
                    asked: false,
                    hint: String::new(),
                },
                FieldSpec {
                    name: "abstract".into(),
                    data_type: DataType::Str,
                    asked: true,
                    hint: "the talk's abstract".into(),
                },
                FieldSpec {
                    name: "nb_attendees".into(),
                    data_type: DataType::Int,
                    asked: true,
                    hint: "number of attendees".into(),
                },
            ],
        }
    }

    #[test]
    fn instantiation_mirrors_paper_figure_2() {
        // The paper's example: crowdsourcing the missing abstract of the
        // "CrowdDB" talk — title is copied in read-only, abstract becomes
        // an input.
        let t = talk_template();
        let known = HashMap::from([("title".to_string(), "CrowdDB".to_string())]);
        let page = t.instantiate(&known, &["abstract".to_string()], false);
        assert!(page.contains("value=\"CrowdDB\""), "{page}");
        assert!(page.contains("readonly"));
        assert!(page.contains("name=\"abstract\""));
        // nb_attendees is neither known nor asked by this query: omitted.
        assert!(!page.contains("nb_attendees"));
        assert!(page.contains("Table: <b>talk</b>"));
    }

    #[test]
    fn mobile_instantiation_differs() {
        let t = talk_template();
        let known = HashMap::from([("title".to_string(), "CrowdDB".to_string())]);
        let desktop = t.instantiate(&known, &["abstract".to_string()], false);
        let mobile = t.instantiate(&known, &["abstract".to_string()], true);
        assert!(mobile.contains("viewport"));
        assert!(!desktop.contains("viewport"));
        assert!(mobile.contains("class=\"crowddb mobile\""));
    }

    #[test]
    fn values_are_escaped() {
        let t = talk_template();
        let known = HashMap::from([("title".to_string(), "<script>x</script>".to_string())]);
        let page = t.instantiate(&known, &[], false);
        assert!(!page.contains("<script>x</script>"));
        assert!(page.contains("&lt;script&gt;"));
    }

    #[test]
    fn parse_submission_orders_and_filters() {
        let t = talk_template();
        let form = HashMap::from([
            ("nb_attendees".to_string(), "120".to_string()),
            ("abstract".to_string(), "An abstract".to_string()),
            ("bogus".to_string(), "ignored".to_string()),
        ]);
        let parsed = t.parse_submission(&form);
        assert_eq!(
            parsed,
            vec![
                ("abstract".to_string(), "An abstract".to_string()),
                ("nb_attendees".to_string(), "120".to_string()),
            ]
        );
    }
}
