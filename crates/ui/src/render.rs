//! Runtime rendering of platform tasks into worker-facing pages.
//!
//! The Task Manager calls these when posting a HIT; the result is the
//! HTML the platform would display — Figure 2 (Mechanical Turk page) and
//! Figure 3 (mobile page) of the demo paper.

use crowddb_platform::TaskKind;

use crate::html;

/// Render a task as a Mechanical-Turk-style HTML page.
pub fn render_task(kind: &TaskKind) -> String {
    render(kind, false)
}

/// Render a task as a compact mobile page (paper Fig. 3).
pub fn render_mobile_task(kind: &TaskKind) -> String {
    render(kind, true)
}

fn render(kind: &TaskKind, mobile: bool) -> String {
    match kind {
        TaskKind::Probe {
            table,
            known,
            asked,
            instructions,
        } => {
            let mut body = format!(
                "<p class=\"table-name\">Table: <b>{}</b></p>",
                html::escape(table)
            );
            for (col, val) in known {
                body.push_str(&html::readonly_field(col, val));
            }
            for (col, ty) in asked {
                body.push_str(&html::input_field(col, &format!("{col} ({ty})")));
            }
            html::page(
                "Please fill out missing fields of the following Table",
                instructions,
                &body,
                mobile,
            )
        }
        TaskKind::NewTuples {
            table,
            columns,
            preset,
            max_tuples,
            instructions,
        } => {
            let mut body = format!(
                "<p class=\"table-name\">Table: <b>{}</b> \
                 <span class=\"max\">(up to {} entries)</span></p>",
                html::escape(table),
                max_tuples
            );
            for (col, val) in preset {
                body.push_str(&html::readonly_field(col, val));
            }
            for (col, ty) in columns {
                body.push_str(&html::input_field(col, &format!("{col} ({ty})")));
            }
            html::page(
                &format!("Please add new entries to the {table} table"),
                instructions,
                &body,
                mobile,
            )
        }
        TaskKind::Equal {
            left,
            right,
            instruction,
        } => {
            let mut body = format!(
                "<div class=\"pair\"><span class=\"left\">{}</span> \
                 <span class=\"vs\">vs</span> \
                 <span class=\"right\">{}</span></div>",
                html::escape(left),
                html::escape(right)
            );
            body.push_str(&html::radio_choice(
                "verdict",
                &[("yes", "Yes, the same"), ("no", "No, different")],
            ));
            html::page(
                "Do these refer to the same thing?",
                instruction,
                &body,
                mobile,
            )
        }
        TaskKind::Order {
            left,
            right,
            instruction,
        } => {
            let body = html::radio_choice(
                "choice",
                &[
                    (&format!("left:{left}"), left),
                    (&format!("right:{right}"), right),
                ],
            );
            html::page("Please pick one", instruction, &body, mobile)
        }
        TaskKind::EqualBatch { pairs, instruction } => {
            let mut body = String::new();
            for (i, (left, right)) in pairs.iter().enumerate() {
                body.push_str(&format!(
                    "<div class=\"pair\"><span class=\"left\">{}</span> \
                     <span class=\"vs\">vs</span> \
                     <span class=\"right\">{}</span></div>",
                    html::escape(left),
                    html::escape(right)
                ));
                body.push_str(&html::radio_choice(
                    &format!("verdict-{i}"),
                    &[("yes", "Yes, the same"), ("no", "No, different")],
                ));
            }
            html::page(
                "For each pair: do these refer to the same thing?",
                instruction,
                &body,
                mobile,
            )
        }
        TaskKind::OrderBatch { pairs, instruction } => {
            let mut body = String::new();
            for (i, (left, right)) in pairs.iter().enumerate() {
                body.push_str(&html::radio_choice(
                    &format!("choice-{i}"),
                    &[
                        (&format!("left:{left}"), left),
                        (&format!("right:{right}"), right),
                    ],
                ));
            }
            html::page("For each pair: please pick one", instruction, &body, mobile)
        }
        TaskKind::RankGroup { items, instruction } => {
            let mut body = String::from("<ol class=\"rank\">");
            for item in items {
                body.push_str(&format!("<li>{}</li>", html::escape(item)));
            }
            body.push_str("</ol>");
            html::page(
                "Please rank these items from best to worst",
                instruction,
                &body,
                mobile,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::DataType;

    fn probe() -> TaskKind {
        TaskKind::Probe {
            table: "talk".into(),
            known: vec![("title".into(), "CrowdDB".into())],
            asked: vec![("abstract".into(), DataType::Str)],
            instructions: "Enter the missing information for the Talk.".into(),
        }
    }

    #[test]
    fn probe_page_matches_paper_figure_2_structure() {
        let page = render_task(&probe());
        // Known value copied into the form...
        assert!(page.contains("value=\"CrowdDB\""));
        assert!(page.contains("readonly"));
        // ...asked field becomes an input...
        assert!(page.contains("name=\"abstract\""));
        // ...with instructions referring to the table.
        assert!(page.contains("missing fields of the following Table"));
        assert!(page.contains("Table: <b>talk</b>"));
    }

    #[test]
    fn mobile_page_is_responsive_variant() {
        let m = render_mobile_task(&probe());
        assert!(m.contains("viewport"));
        assert!(m.contains("class=\"crowddb mobile\""));
        assert!(render_task(&probe()).contains("class=\"crowddb mturk\""));
    }

    #[test]
    fn equal_page_has_binary_choice() {
        let page = render_task(&TaskKind::Equal {
            left: "I.B.M.".into(),
            right: "IBM".into(),
            instruction: "Are these the same company?".into(),
        });
        assert!(page.contains("I.B.M."));
        assert_eq!(page.matches("type=\"radio\"").count(), 2);
        assert!(page.contains("Are these the same company?"));
    }

    #[test]
    fn order_page_shows_both_items() {
        let page = render_task(&TaskKind::Order {
            left: "Talk A".into(),
            right: "Talk B".into(),
            instruction: "Which talk did you like better".into(),
        });
        assert!(page.contains("Talk A"));
        assert!(page.contains("Talk B"));
        assert!(page.contains("Which talk did you like better"));
    }

    #[test]
    fn new_tuples_page_shows_preset_and_limit() {
        let page = render_task(&TaskKind::NewTuples {
            table: "notableattendee".into(),
            columns: vec![("name".into(), DataType::Str)],
            preset: vec![("title".into(), "CrowdDB".into())],
            max_tuples: 3,
            instructions: String::new(),
        });
        assert!(page.contains("up to 3 entries"));
        assert!(page.contains("value=\"CrowdDB\""));
        assert!(page.contains("name=\"name\""));
    }

    #[test]
    fn html_is_escaped_everywhere() {
        let page = render_task(&TaskKind::Equal {
            left: "<b>x</b>".into(),
            right: "&y".into(),
            instruction: "<i>q</i>".into(),
        });
        assert!(!page.contains("<b>x</b>"));
        assert!(page.contains("&lt;b&gt;x&lt;/b&gt;"));
        assert!(page.contains("&amp;y"));
    }
}
