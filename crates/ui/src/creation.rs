//! The UI Creation component: schema → templates, at compile time.

use crowddb_common::TableSchema;

use crate::template::{FieldSpec, TemplateKind, UiTemplate};

/// Generates task UI templates from schema information.
///
/// "These user interfaces are HTML templates that are generated based on
/// the CROWD annotations in the schema and optional free-text annotations
/// of columns and tables that can also be found in the schema." (§3.1)
pub struct UiCreation;

impl UiCreation {
    /// All templates implied by a schema:
    ///
    /// * a **probe** template if the table has CROWD columns (fill missing
    ///   fields of an existing tuple);
    /// * a **new-tuples** template if the table is a CROWD table
    ///   (contribute whole tuples).
    pub fn templates_for(schema: &TableSchema) -> Vec<UiTemplate> {
        let mut out = Vec::new();
        // CROWD tables get a probe template too: their existing tuples may
        // carry CNULLs in any column (every column of a CROWD table is
        // crowdsourceable).
        if !schema.crowd_columns().is_empty() || schema.crowd_table {
            out.push(Self::probe_template(schema));
        }
        if schema.crowd_table {
            out.push(Self::new_tuples_template(schema));
        }
        out
    }

    /// Canonical name for a table's template of a given kind.
    pub fn template_name(table: &str, kind: TemplateKind) -> String {
        match kind {
            TemplateKind::Probe => format!("{table}:probe"),
            TemplateKind::NewTuples => format!("{table}:new"),
        }
    }

    fn fields_of(schema: &TableSchema) -> Vec<FieldSpec> {
        schema
            .columns
            .iter()
            .map(|c| FieldSpec {
                name: c.name.clone(),
                data_type: c.data_type,
                asked: c.crowd || schema.crowd_table,
                hint: c
                    .annotation
                    .clone()
                    .unwrap_or_else(|| format!("{} ({})", c.name, c.data_type)),
            })
            .collect()
    }

    fn probe_template(schema: &TableSchema) -> UiTemplate {
        let instructions = schema.annotation.clone().unwrap_or_else(|| {
            format!(
                "Please fill out the missing fields of the following {} record. \
                 Use web search or reference sources if needed.",
                schema.name
            )
        });
        UiTemplate {
            name: Self::template_name(&schema.name, TemplateKind::Probe),
            table: schema.name.clone(),
            kind: TemplateKind::Probe,
            title: "Please fill out missing fields of the following Table".into(),
            instructions,
            fields: Self::fields_of(schema),
        }
    }

    fn new_tuples_template(schema: &TableSchema) -> UiTemplate {
        let instructions = schema.annotation.clone().unwrap_or_else(|| {
            format!(
                "Please contribute new {} records you know of. \
                 Fill one record per form; duplicates are merged.",
                schema.name
            )
        });
        UiTemplate {
            name: Self::template_name(&schema.name, TemplateKind::NewTuples),
            table: schema.name.clone(),
            kind: TemplateKind::NewTuples,
            title: format!("Please add new entries to the {} table", schema.name),
            instructions,
            fields: Self::fields_of(schema),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::{ColumnDef, DataType};

    fn talk_schema() -> TableSchema {
        TableSchema::new(
            "talk",
            vec![
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("abstract", DataType::Str).crowd(),
                ColumnDef::new("nb_attendees", DataType::Int)
                    .crowd()
                    .with_annotation("how many people attended the talk"),
            ],
        )
        .unwrap()
        .with_primary_key(&["title"])
        .unwrap()
    }

    #[test]
    fn table_with_crowd_columns_gets_probe_template() {
        let templates = UiCreation::templates_for(&talk_schema());
        assert_eq!(templates.len(), 1);
        let t = &templates[0];
        assert_eq!(t.kind, TemplateKind::Probe);
        assert_eq!(t.name, "talk:probe");
        assert_eq!(t.fields.len(), 3);
        assert!(!t.fields[0].asked); // title: electronic
        assert!(t.fields[1].asked); // abstract: crowd
    }

    #[test]
    fn column_annotation_becomes_hint() {
        let templates = UiCreation::templates_for(&talk_schema());
        assert_eq!(
            templates[0].fields[2].hint,
            "how many people attended the talk"
        );
        // Unannotated asked column falls back to name+type.
        assert!(templates[0].fields[1].hint.contains("abstract"));
    }

    #[test]
    fn crowd_table_gets_both_probe_and_new() {
        let schema = TableSchema::new(
            "notableattendee",
            vec![
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("title", DataType::Str).crowd(),
            ],
        )
        .unwrap()
        .with_primary_key(&["name"])
        .unwrap()
        .crowd();
        let templates = UiCreation::templates_for(&schema);
        assert_eq!(templates.len(), 2);
        assert!(templates.iter().any(|t| t.kind == TemplateKind::Probe));
        assert!(templates.iter().any(|t| t.kind == TemplateKind::NewTuples));
        // In a CROWD table every field is askable.
        let new_t = templates
            .iter()
            .find(|t| t.kind == TemplateKind::NewTuples)
            .unwrap();
        assert!(new_t.fields.iter().all(|f| f.asked));
    }

    #[test]
    fn electronic_table_gets_no_templates() {
        let schema = TableSchema::new("plain", vec![ColumnDef::new("a", DataType::Int)]).unwrap();
        assert!(UiCreation::templates_for(&schema).is_empty());
    }

    #[test]
    fn table_annotation_becomes_instructions() {
        let schema = TableSchema::new(
            "restaurant",
            vec![ColumnDef::new("name", DataType::Str).crowd()],
        )
        .unwrap()
        .with_annotation("Only consider restaurants within walking distance of the venue.");
        let templates = UiCreation::templates_for(&schema);
        assert_eq!(
            templates[0].instructions,
            "Only consider restaurants within walking distance of the venue."
        );
    }
}
