//! # crowddb-ui
//!
//! Automatic task user-interface generation.
//!
//! "CrowdDB leverages the available database schema information to
//! automatically generate user interfaces. This generation is a two-step
//! process. At compile-time, the UI Creation component creates templates
//! to crowdsource missing information from all CROWD tables and all
//! regular tables which have CROWD columns. [...] Finally, at runtime the
//! Task Manager instantiates the templates on request of the crowd
//! operators in order to provide a user interface for a concrete tuple or
//! a set of tuples." (paper §3.1)
//!
//! This crate implements the three components from Figure 1:
//!
//! * **UI Creation** ([`creation`]) — builds [`UiTemplate`]s from schemas;
//! * **UI Template Manager** ([`manager`]) — stores and serves templates;
//! * **Form Editor** ([`manager::UiTemplateManager::edit`]) — lets
//!   application developers customize instructions;
//!
//! plus the runtime renderer ([`render`]) that instantiates templates into
//! the HTML pages shown in the paper's Figures 2 (Mechanical Turk) and 3
//! (mobile).

pub mod creation;
pub mod html;
pub mod manager;
pub mod render;
pub mod template;

pub use creation::UiCreation;
pub use manager::UiTemplateManager;
pub use render::{render_mobile_task, render_task};
pub use template::{FieldSpec, UiTemplate};
