//! Regression tests proving index/heap consistency across every DML and
//! crowd write-back path.
//!
//! The contract under test: after *any* mutation — `INSERT`, `UPDATE`
//! (key-changing or not), `DELETE`, an insert rollback, or a crowd
//! write-back (`write_back_value` / `write_back_tuple`, including via
//! WAL-record replay) — every index on the table agrees exactly with a
//! fresh recomputation from the heap. No ghost entries for deleted rows,
//! no stale keys after updates, no rows missing from the
//! `missing_key_tids` prefix when their key has a NULL/CNULL component.

use std::collections::BTreeMap;

use crowddb_common::{row, ColumnDef, DataType, TableSchema, TupleId, Value};
use crowddb_storage::{Database, IndexKey, IndexKind, LogRecord};

/// Assert every index on `table` matches a recomputation from the heap:
/// present-key rows are found by point probe (and only those rows),
/// missing-key rows appear in `missing_key_tids` (and only those), and
/// ordered indexes enumerate exactly the present-key rows via a full
/// range scan.
fn assert_indexes_consistent(db: &Database, table: &str) {
    db.with_table(table, |t| {
        let rows = t.scan_rows().unwrap();
        for idx in t.indexes() {
            // Recompute the expected entries from the heap.
            let mut present: BTreeMap<IndexKey, Vec<TupleId>> = BTreeMap::new();
            let mut missing: Vec<TupleId> = Vec::new();
            for (tid, r) in &rows {
                let key = idx.key_of(r.values());
                if key.has_missing() {
                    missing.push(*tid);
                } else {
                    present.entry(key).or_default().push(*tid);
                }
            }
            missing.sort_unstable_by_key(|tid| tid.0);

            // Point probes return exactly the heap's rows for each key.
            for (key, tids) in &present {
                let mut got = idx.get(t.pager(), key).unwrap();
                got.sort_unstable_by_key(|tid| tid.0);
                assert_eq!(
                    &got, tids,
                    "index '{}' probe mismatch for key {key:?}",
                    idx.name
                );
            }

            // The missing-key prefix holds exactly the heap's
            // missing-key rows.
            let mut got_missing = idx.missing_key_tids(t.pager()).unwrap();
            got_missing.sort_unstable_by_key(|tid| tid.0);
            assert_eq!(
                got_missing, missing,
                "index '{}' missing-key prefix diverges from heap",
                idx.name
            );

            // Ordered indexes: an unbounded range scan yields exactly
            // the present-key entries — no ghosts survive behind keys we
            // did not think to probe.
            if idx.ordered() {
                let scanned = idx.range(t.pager(), None, None).unwrap().unwrap();
                let expected: usize = present.values().map(Vec::len).sum();
                assert_eq!(
                    scanned.len(),
                    expected,
                    "index '{}' range scan has ghost or lost entries",
                    idx.name
                );
            }
        }
    })
    .unwrap();
}

/// A crowd table with three indexes of different shapes: the implicit
/// unique PK index, a single-column B-tree secondary on a crowd column,
/// and a non-unique B-tree on a machine column.
fn talk_db() -> Database {
    let db = Database::new();
    let schema = TableSchema::new(
        "talk",
        vec![
            ColumnDef::new("title", DataType::Str),
            ColumnDef::new("abstract", DataType::Str).crowd(),
            ColumnDef::new("nb_attendees", DataType::Int).crowd(),
            ColumnDef::new("track", DataType::Str),
        ],
    )
    .unwrap()
    .with_primary_key(&["title"])
    .unwrap();
    db.create_table(schema).unwrap();
    db.create_index(
        "talk_attendees",
        "talk",
        &["nb_attendees".to_string()],
        false,
        IndexKind::BTree,
    )
    .unwrap();
    db.create_index(
        "talk_track",
        "talk",
        &["track".to_string()],
        false,
        IndexKind::BTree,
    )
    .unwrap();
    db
}

fn seed(db: &Database) -> Vec<TupleId> {
    let rows = [
        row!["CrowdDB", Value::CNull, Value::CNull, "systems"],
        row!["Qurk", Value::CNull, 140i64, "systems"],
        row!["PIQL", "perf insightful", 90i64, "languages"],
        row!["HyPer", Value::CNull, 180i64, "systems"],
    ];
    rows.into_iter()
        .map(|r| db.insert("talk", r).unwrap())
        .collect()
}

#[test]
fn insert_populates_all_indexes() {
    let db = talk_db();
    seed(&db);
    assert_indexes_consistent(&db, "talk");
    // The one CNULL attendee count sits in the missing prefix, not
    // under a key.
    db.with_table("talk", |t| {
        let idx = t
            .indexes()
            .iter()
            .find(|i| i.name == "talk_attendees")
            .unwrap();
        assert_eq!(idx.missing_key_tids(t.pager()).unwrap().len(), 1);
        assert_eq!(
            idx.get(t.pager(), &IndexKey(vec![Value::Int(140)]))
                .unwrap()
                .len(),
            1
        );
    })
    .unwrap();
}

#[test]
fn update_moves_entries_between_keys() {
    let db = talk_db();
    let tids = seed(&db);
    // Key-changing update on an indexed machine column.
    db.with_table_mut("talk", |t| {
        let mut r = t.get(tids[2]).unwrap().unwrap();
        r.set(3, Value::Str("systems".into()));
        t.update(tids[2], r)
    })
    .unwrap();
    assert_indexes_consistent(&db, "talk");
    db.with_table("talk", |t| {
        let idx = t.indexes().iter().find(|i| i.name == "talk_track").unwrap();
        assert!(idx
            .get(t.pager(), &IndexKey(vec![Value::Str("languages".into())]))
            .unwrap()
            .is_empty());
        assert_eq!(
            idx.get(t.pager(), &IndexKey(vec![Value::Str("systems".into())]))
                .unwrap()
                .len(),
            4
        );
    })
    .unwrap();

    // PK-changing update rewrites the unique PK index too.
    db.with_table_mut("talk", |t| {
        let mut r = t.get(tids[0]).unwrap().unwrap();
        r.set(0, Value::Str("CrowdDB 2".into()));
        t.update(tids[0], r)
    })
    .unwrap();
    assert_indexes_consistent(&db, "talk");
}

#[test]
fn delete_purges_every_index() {
    let db = talk_db();
    let tids = seed(&db);
    db.with_table_mut("talk", |t| t.delete(tids[1])).unwrap();
    assert_indexes_consistent(&db, "talk");
    db.with_table("talk", |t| {
        let idx = t
            .indexes()
            .iter()
            .find(|i| i.name == "talk_attendees")
            .unwrap();
        assert!(idx
            .get(t.pager(), &IndexKey(vec![Value::Int(140)]))
            .unwrap()
            .is_empty());
    })
    .unwrap();
    // Deleting a missing-key row shrinks the missing prefix, not a key.
    db.with_table_mut("talk", |t| t.delete(tids[0])).unwrap();
    assert_indexes_consistent(&db, "talk");
}

#[test]
fn rollback_insert_leaves_no_ghost_entries() {
    let db = talk_db();
    seed(&db);
    let tid = db
        .insert("talk", row!["Doomed", Value::CNull, 7i64, "systems"])
        .unwrap();
    assert_indexes_consistent(&db, "talk");
    assert!(db
        .with_table_mut("talk", |t| t.rollback_insert(tid))
        .unwrap());
    assert_indexes_consistent(&db, "talk");
    db.with_table("talk", |t| {
        let idx = t
            .indexes()
            .iter()
            .find(|i| i.name == "talk_attendees")
            .unwrap();
        assert!(idx
            .get(t.pager(), &IndexKey(vec![Value::Int(7)]))
            .unwrap()
            .is_empty());
        assert!(t.get(tid).unwrap().is_none());
    })
    .unwrap();
}

#[test]
fn write_back_value_promotes_missing_key_to_present() {
    let db = talk_db();
    let tids = seed(&db);
    // Crowd answers the CNULL attendee count for 'CrowdDB': the row must
    // leave the missing prefix and appear under its new key.
    db.write_back_value("talk", tids[0], 2, Value::Int(220))
        .unwrap();
    assert_indexes_consistent(&db, "talk");
    db.with_table("talk", |t| {
        let idx = t
            .indexes()
            .iter()
            .find(|i| i.name == "talk_attendees")
            .unwrap();
        assert_eq!(
            idx.get(t.pager(), &IndexKey(vec![Value::Int(220)]))
                .unwrap(),
            vec![tids[0]]
        );
        assert!(idx.missing_key_tids(t.pager()).unwrap().is_empty());
    })
    .unwrap();
}

#[test]
fn wal_replay_write_backs_maintain_indexes() {
    let db = talk_db();
    let tids = seed(&db);
    // The same write-back paths recovery uses: apply WAL records.
    assert!(db
        .apply(&LogRecord::WriteBackValue {
            table: "talk".into(),
            tid: tids[3],
            col: 2,
            value: Value::Int(180),
        })
        .unwrap());
    assert_indexes_consistent(&db, "talk");
    assert!(db
        .apply(&LogRecord::WriteBackTuple {
            table: "talk".into(),
            row: row!["Qurk2", Value::CNull, 140i64, "systems"],
        })
        .unwrap());
    assert_indexes_consistent(&db, "talk");
    // Duplicate-PK write-back is a no-op and must not disturb indexes.
    assert!(db
        .apply(&LogRecord::WriteBackTuple {
            table: "talk".into(),
            row: row!["Qurk2", Value::CNull, 1i64, "other"],
        })
        .unwrap());
    assert_indexes_consistent(&db, "talk");
    db.with_table("talk", |t| {
        let idx = t
            .indexes()
            .iter()
            .find(|i| i.name == "talk_attendees")
            .unwrap();
        assert_eq!(
            idx.get(t.pager(), &IndexKey(vec![Value::Int(140)]))
                .unwrap()
                .len(),
            2
        );
    })
    .unwrap();
}

/// Deterministic mixed-workload fuzz: a small LCG drives hundreds of
/// interleaved inserts, key-changing updates, write-backs, deletes, and
/// rollbacks; the full consistency check runs after every step. This is
/// the "never diverge" guarantee in one test.
#[test]
fn mixed_workload_never_diverges() {
    let db = talk_db();
    let mut live: Vec<TupleId> = seed(&db);
    let mut state: u64 = 0xC0FFEE;
    let mut next = |m: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    let mut serial = 0u64;
    for step in 0..300 {
        match next(5) {
            0 => {
                serial += 1;
                let att = if next(3) == 0 {
                    Value::CNull
                } else {
                    Value::Int(next(50) as i64 * 10)
                };
                let track = if next(2) == 0 { "systems" } else { "languages" };
                let tid = db
                    .insert("talk", row![format!("t{serial}"), Value::CNull, att, track])
                    .unwrap();
                live.push(tid);
            }
            1 if !live.is_empty() => {
                let tid = live[next(live.len() as u64) as usize];
                let att = Value::Int(next(50) as i64 * 10);
                db.with_table_mut("talk", |t| {
                    let mut r = t.get(tid).unwrap().unwrap();
                    r.set(2, att);
                    t.update(tid, r)
                })
                .unwrap();
            }
            2 if !live.is_empty() => {
                let tid = live[next(live.len() as u64) as usize];
                db.write_back_value("talk", tid, 1, Value::Str(format!("a{step}")))
                    .unwrap();
            }
            3 if !live.is_empty() => {
                let tid = live.swap_remove(next(live.len() as u64) as usize);
                assert!(db.with_table_mut("talk", |t| t.delete(tid)).unwrap());
            }
            4 => {
                serial += 1;
                let tid = db
                    .insert(
                        "talk",
                        row![format!("t{serial}"), Value::CNull, Value::CNull, "systems"],
                    )
                    .unwrap();
                // Simulate a constraint-violation unwind.
                assert!(db
                    .with_table_mut("talk", |t| t.rollback_insert(tid))
                    .unwrap());
            }
            _ => {}
        }
        assert_indexes_consistent(&db, "talk");
    }
    assert!(!live.is_empty());
}

/// Index maintenance holds under the file-backed pager with a tiny
/// buffer pool: eviction pressure must never lose or duplicate entries.
#[test]
fn small_pool_file_backed_indexes_stay_consistent() {
    use crowddb_storage::PagerConfig;
    let dir = crowddb_wal::testutil::TestDir::new("idx-maint-pool");
    let cfg = PagerConfig {
        page_size: 512,
        pool_pages: 4,
    };
    let db = Database::open_file(dir.path(), cfg).unwrap();
    let schema = TableSchema::new(
        "talk",
        vec![
            ColumnDef::new("title", DataType::Str),
            ColumnDef::new("nb_attendees", DataType::Int).crowd(),
        ],
    )
    .unwrap()
    .with_primary_key(&["title"])
    .unwrap();
    db.create_table(schema).unwrap();
    db.create_index(
        "talk_attendees",
        "talk",
        &["nb_attendees".to_string()],
        false,
        IndexKind::BTree,
    )
    .unwrap();
    let mut tids = Vec::new();
    for i in 0..200i64 {
        let att = if i % 5 == 0 {
            Value::CNull
        } else {
            Value::Int(i % 17)
        };
        tids.push(db.insert("talk", row![format!("t{i}"), att]).unwrap());
    }
    // The pool is no-steal: dirty pages stay pinned, so eviction only
    // starts once a checkpoint cleans them.
    let (prep, _meta) = db.begin_checkpoint().unwrap();
    db.complete_checkpoint(&prep).unwrap();
    for (i, tid) in tids.iter().enumerate() {
        if i % 3 == 0 {
            db.write_back_value("talk", *tid, 1, Value::Int(999))
                .unwrap();
        }
    }
    for tid in tids.iter().step_by(7) {
        db.with_table_mut("talk", |t| t.delete(*tid)).unwrap();
    }
    assert_indexes_consistent(&db, "talk");
    let stats = db.pager_stats();
    assert!(
        stats.evictions > 0,
        "4-page pool over 200 rows must evict: {stats:?}"
    );
}
