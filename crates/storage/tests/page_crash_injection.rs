//! Page-level crash injection: the checkpoint journal (`pages.journal`)
//! is damaged at every byte offset and the database reopened against
//! both the old and the new committed metadata.
//!
//! The recovery matrix under test (see `Pager::open_file`):
//!
//! * **Crash before the metadata commit** (caller still holds the *old*
//!   meta): the journal carries a newer epoch, so recovery discards it —
//!   at *every* truncation offset and under arbitrary byte corruption —
//!   and serves exactly the previous checkpoint's bytes.
//! * **Crash after the metadata commit, before the page-file apply**
//!   (caller holds the *new* meta): an intact journal is redone
//!   idempotently to the new state; a torn or corrupted journal whose
//!   epoch still reads as the committed one is a typed `Io` error, never
//!   silently-wrong pages. (Truncation below the 24-byte journal header
//!   is unreachable in this scenario — the journal is fully fsynced
//!   before the metadata commit — so the sweep starts at the header.)

use crowddb_common::{row, Value};
use crowddb_common::{ColumnDef, DataType, TableSchema};
use crowddb_storage::pager::{JOURNAL_FILE, PAGES_FILE};
use crowddb_storage::{Database, IndexKind, PagerConfig};
use crowddb_wal::testutil::TestDir;

const JOURNAL_HEADER: usize = 24; // magic + epoch + entry count

fn small_cfg() -> PagerConfig {
    PagerConfig {
        page_size: 256,
        pool_pages: 0,
    }
}

fn create_schema(db: &Database) {
    let schema = TableSchema::new(
        "talk",
        vec![
            ColumnDef::new("title", DataType::Str),
            ColumnDef::new("nb_attendees", DataType::Int).crowd(),
        ],
    )
    .unwrap()
    .with_primary_key(&["title"])
    .unwrap();
    db.create_table(schema).unwrap();
    db.create_index(
        "talk_attendees",
        "talk",
        &["nb_attendees".to_string()],
        false,
        IndexKind::BTree,
    )
    .unwrap();
}

/// Build the crash scene: a database with one completed checkpoint
/// (meta1), further DML, and a second checkpoint journaled but never
/// applied. Returns the on-disk images plus both committed metadata
/// candidates and the two reference states.
struct Scene {
    pages_image: Vec<u8>,
    journal_image: Vec<u8>,
    meta1: Vec<u8>,
    meta2: Vec<u8>,
    ref1: Vec<u8>,
    ref2: Vec<u8>,
}

fn build_scene() -> Scene {
    let dir = TestDir::new("page-crash-master");
    let db = Database::open_file(dir.path(), small_cfg()).unwrap();
    create_schema(&db);
    for i in 0..24i64 {
        db.insert("talk", row![format!("t{i}"), i * 10]).unwrap();
    }
    // Checkpoint 1: journal + commit + apply, the normal full cycle.
    let (prep1, meta1) = db.begin_checkpoint().unwrap();
    db.complete_checkpoint(&prep1).unwrap();
    let ref1 = db.snapshot().unwrap();

    // Post-checkpoint tail: updates, a delete, fresh inserts.
    for i in 0..8i64 {
        db.write_back_value(
            "talk",
            crowddb_common::TupleId(i as u64),
            1,
            Value::Int(999 + i),
        )
        .unwrap();
    }
    db.with_table_mut("talk", |t| t.delete(crowddb_common::TupleId(20)))
        .unwrap();
    for i in 24..30i64 {
        db.insert("talk", row![format!("t{i}"), i * 10]).unwrap();
    }
    let ref2 = db.snapshot().unwrap();

    // Checkpoint 2: journal the dirty pages, then crash before the apply.
    let (_prep2, meta2) = db.begin_checkpoint().unwrap();
    drop(db);

    let pages_image = std::fs::read(dir.path().join(PAGES_FILE)).unwrap();
    let journal_image = std::fs::read(dir.path().join(JOURNAL_FILE)).unwrap();
    assert!(
        journal_image.len() > JOURNAL_HEADER,
        "scene must journal at least one page"
    );
    Scene {
        pages_image,
        journal_image,
        meta1: meta1.to_vec(),
        meta2: meta2.to_vec(),
        ref1: ref1.to_vec(),
        ref2: ref2.to_vec(),
    }
}

fn restore_scene(scene: &Scene, journal: &[u8]) -> TestDir {
    let dir = TestDir::new("page-crash-cut");
    std::fs::write(dir.path().join(PAGES_FILE), &scene.pages_image).unwrap();
    std::fs::write(dir.path().join(JOURNAL_FILE), journal).unwrap();
    dir
}

#[test]
fn journal_truncation_sweep_old_meta_recovers_previous_checkpoint() {
    let scene = build_scene();
    // Crash before the metadata commit: whatever survives of the journal
    // — nothing, a header, a torn entry, all of it — recovery against
    // the old meta discards it and serves checkpoint 1 exactly.
    for cut in 0..=scene.journal_image.len() {
        let dir = restore_scene(&scene, &scene.journal_image[..cut]);
        let db = Database::open_paged(dir.path(), small_cfg(), &scene.meta1)
            .unwrap_or_else(|e| panic!("cut {cut}: pre-commit recovery failed: {e}"));
        assert_eq!(
            db.snapshot().unwrap().to_vec(),
            scene.ref1,
            "cut {cut}: pre-commit recovery must serve checkpoint 1"
        );
    }
}

#[test]
fn journal_truncation_sweep_new_meta_redoes_or_fails_typed() {
    let scene = build_scene();
    let full = scene.journal_image.len();
    // Crash after the metadata commit: the journal was fully fsynced
    // before the commit, so recovery either redoes it (intact) or
    // refuses with a typed error (torn mid-entry) — never wrong bytes.
    for cut in JOURNAL_HEADER..=full {
        let dir = restore_scene(&scene, &scene.journal_image[..cut]);
        match Database::open_paged(dir.path(), small_cfg(), &scene.meta2) {
            Ok(db) => {
                assert_eq!(cut, full, "only the intact journal may recover");
                assert_eq!(
                    db.snapshot().unwrap().to_vec(),
                    scene.ref2,
                    "redo must reproduce the pre-crash state"
                );
            }
            Err(crowddb_common::CrowdError::Io(msg)) => {
                assert!(cut < full, "the intact journal must not fail: {msg}");
                assert!(
                    msg.contains("journal"),
                    "error should name the journal: {msg}"
                );
            }
            Err(e) => panic!("cut {cut}: expected Io error, got {e}"),
        }
    }
}

#[test]
fn journal_corruption_sweep_is_detected_or_discarded() {
    let scene = build_scene();
    // Flip one byte at every offset. Against the old meta the journal is
    // not trusted at all, so recovery always lands on checkpoint 1;
    // against the new meta a corrupt body is a typed error (the CRC or
    // frame check catches it) while corruption confined to the header's
    // magic makes the journal unclassifiable and equally untrusted.
    for pos in 0..scene.journal_image.len() {
        let mut corrupt = scene.journal_image.clone();
        corrupt[pos] ^= 0xFF;

        let dir = restore_scene(&scene, &corrupt);
        let db = Database::open_paged(dir.path(), small_cfg(), &scene.meta1)
            .unwrap_or_else(|e| panic!("flip {pos}: pre-commit recovery failed: {e}"));
        assert_eq!(
            db.snapshot().unwrap().to_vec(),
            scene.ref1,
            "flip {pos}: pre-commit recovery must serve checkpoint 1"
        );

        let dir = restore_scene(&scene, &corrupt);
        match Database::open_paged(dir.path(), small_cfg(), &scene.meta2) {
            // The 24-byte header carries no checksum, so a flip there can
            // be misclassified (bad magic → unclassifiable discard, bad
            // epoch → foreign-epoch discard, shorter count → short-but-
            // framed redo). Every body byte is CRC-covered: a flip past
            // the header must be a typed refusal, never a silent accept.
            Ok(_) => assert!(
                pos < JOURNAL_HEADER,
                "flip {pos}: silent acceptance of a corrupt journal body"
            ),
            Err(crowddb_common::CrowdError::Io(_)) => {}
            Err(e) => panic!("flip {pos}: expected Io error, got {e}"),
        }
    }
}

/// A crash immediately after `complete_checkpoint` (journal applied and
/// truncated) must reopen cleanly from the new meta with no journal at
/// all.
#[test]
fn reopen_after_completed_checkpoint_needs_no_journal() {
    let scene = build_scene();
    // Simulate the apply: the journal pages land in pages.db, journal
    // truncated. Easiest faithful route: reopen with meta2 and the full
    // journal (redo path), snapshot, then reopen the same dir again —
    // the journal is now gone.
    let dir = restore_scene(&scene, &scene.journal_image);
    let db = Database::open_paged(dir.path(), small_cfg(), &scene.meta2).unwrap();
    assert_eq!(db.snapshot().unwrap().to_vec(), scene.ref2);
    drop(db);
    assert_eq!(
        std::fs::metadata(dir.path().join(JOURNAL_FILE))
            .unwrap()
            .len(),
        0,
        "redo must truncate the journal"
    );
    let db = Database::open_paged(dir.path(), small_cfg(), &scene.meta2).unwrap();
    assert_eq!(db.snapshot().unwrap().to_vec(), scene.ref2);
}
