//! Property tests for the log-record codec and the WAL's corruption
//! detection, driven by a hand-rolled splitmix64 generator (zero
//! external dependencies, reproducible by seed).
//!
//! * every generated [`LogRecord`] survives an encode→decode round trip;
//! * **any** single-byte corruption of a framed record is rejected by
//!   the WAL's CRC path: recovery either errors (header damage) or
//!   stops strictly before the corrupted frame.

use crowddb_common::{Row, TupleId, Value};
use crowddb_storage::LogRecord;
use crowddb_wal::testutil::TestDir;
use crowddb_wal::{scan_frames, FsyncPolicy, Wal, WAL_MAGIC};

/// splitmix64, same shape as the quality-crate property tests.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn string(&mut self) -> String {
        let alphabet: Vec<char> = "abcXYZ019 ,'\"()\\\u{e9}\u{4e2d}\n\t\0".chars().collect();
        let len = self.below(20);
        (0..len)
            .map(|_| alphabet[self.below(alphabet.len())])
            .collect()
    }

    fn value(&mut self) -> Value {
        match self.below(6) {
            0 => Value::Null,
            1 => Value::CNull,
            2 => Value::Bool(self.next().is_multiple_of(2)),
            3 => Value::Int(self.next() as i64),
            4 => Value::Float((self.next() % 1_000_000) as f64 / 128.0 - 1000.0),
            _ => Value::Str(self.string()),
        }
    }

    fn record(&mut self) -> LogRecord {
        match self.below(6) {
            0 => LogRecord::Ddl { sql: self.string() },
            1 => LogRecord::Dml { sql: self.string() },
            2 => LogRecord::WriteBackValue {
                table: self.string(),
                tid: TupleId(self.next()),
                col: self.below(32),
                value: self.value(),
            },
            3 => LogRecord::WriteBackTuple {
                table: self.string(),
                row: Row::new((0..self.below(6)).map(|_| self.value()).collect()),
            },
            4 => LogRecord::PutEqual {
                left: self.string(),
                right: self.string(),
                instruction: self.string(),
                verdict: self.next().is_multiple_of(2),
            },
            _ => LogRecord::PutOrder {
                left: self.string(),
                right: self.string(),
                instruction: self.string(),
                left_preferred: self.next().is_multiple_of(2),
            },
        }
    }
}

#[test]
fn arbitrary_records_round_trip() {
    let mut rng = Rng::new(0xC0DEC);
    for i in 0..300 {
        let rec = rng.record();
        let encoded = rec.encode();
        let decoded = LogRecord::decode(encoded).unwrap_or_else(|e| {
            panic!("iteration {i}: {rec:?} failed to decode: {e}");
        });
        assert_eq!(decoded, rec, "iteration {i}");
    }
}

#[test]
fn any_single_byte_corruption_is_rejected() {
    let dir = TestDir::new("proptest-corrupt");
    let path = dir.path().join("wal.bin");
    let mut rng = Rng::new(0xBADBEEF);
    let records: Vec<LogRecord> = (0..4).map(|_| rng.record()).collect();
    let mut frame_starts = Vec::new();
    {
        let (mut wal, _) = Wal::open(&path, FsyncPolicy::Never).unwrap();
        for rec in &records {
            frame_starts.push(wal.len());
            wal.append(rec).unwrap();
        }
    }
    let image = std::fs::read(&path).unwrap();
    assert!(frame_starts[0] == WAL_MAGIC.len() as u64);

    // Index of the frame a byte offset falls in (header bytes → None).
    let frame_of = |off: usize| -> Option<usize> {
        frame_starts.iter().rposition(|&start| off as u64 >= start)
    };

    for pos in 0..image.len() {
        let mut corrupt = image.clone();
        corrupt[pos] ^= 0xFF;
        match scan_frames(&corrupt) {
            Err(_) => {
                // Only header damage hard-errors; a single-byte flip in
                // a frame can never keep its CRC valid, so frame damage
                // always degrades to a shorter valid prefix instead.
                assert!(
                    pos < WAL_MAGIC.len(),
                    "unexpected hard error for byte {pos}"
                );
            }
            Ok((recovered, _)) => {
                let frame = frame_of(pos).expect("header corruption must error");
                assert!(
                    recovered.len() <= frame,
                    "byte {pos} in frame {frame} corrupted, yet {} record(s) recovered",
                    recovered.len()
                );
                for (i, (lsn, rec)) in recovered.iter().enumerate() {
                    assert_eq!(*lsn, (i + 1) as u64);
                    assert_eq!(
                        rec, &records[i],
                        "surviving prefix must match the original records"
                    );
                }
            }
        }
    }
}
