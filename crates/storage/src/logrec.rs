//! Write-ahead-log records.
//!
//! A [`LogRecord`] describes one committed, replayable effect. The
//! durability subsystem (`crowddb-wal`) frames encoded records with a
//! length + CRC header and appends them to the log; recovery decodes the
//! surviving prefix and replays it — storage-level records through
//! [`Database::apply`](crate::Database::apply), engine-level records
//! (logical DML, comparison-cache verdicts) through the `CrowdDB` facade.
//!
//! The encoding is built entirely on [`codec`]: every field
//! is a tagged [`Value`] or a [`Row`], so the log inherits the codec's
//! self-description and its truncation-safety properties.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crowddb_common::{CrowdError, Result, Row, TupleId, Value};

use crate::codec;

const TAG_DDL: u8 = 1;
const TAG_DML: u8 = 2;
const TAG_WRITE_BACK_VALUE: u8 = 3;
const TAG_WRITE_BACK_TUPLE: u8 = 4;
const TAG_PUT_EQUAL: u8 = 5;
const TAG_PUT_ORDER: u8 = 6;

/// One replayable effect, in commit order.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A committed DDL statement in canonical form (`CREATE TABLE ...`,
    /// `CREATE INDEX ...`, `DROP TABLE ...`). Applied by storage.
    Ddl {
        /// Canonical SQL text of the statement.
        sql: String,
    },
    /// A committed DML statement in canonical form. Replayed logically by
    /// the engine: given the same prior state and comparison caches
    /// (guaranteed by log order), re-execution is deterministic and
    /// reproduces the identical mutation — including tuple ids.
    Dml {
        /// Canonical SQL text of the statement.
        sql: String,
    },
    /// A crowd answer written back into a `CNULL` cell — the value the
    /// crowd was paid for. Logged by the task manager as soon as the vote
    /// decides, so a crash never re-buys a decided answer.
    WriteBackValue {
        /// Table holding the tuple.
        table: String,
        /// Tuple id (stable across snapshots — see
        /// [`HeapTable::restore_at`](crate::HeapTable::restore_at)).
        tid: TupleId,
        /// Column ordinal.
        col: usize,
        /// The accepted value.
        value: Value,
    },
    /// A crowdsourced tuple inserted into a CROWD table.
    WriteBackTuple {
        /// Target CROWD table.
        table: String,
        /// The contributed row (preset + answered + CNULL fills).
        row: Row,
    },
    /// A `CROWDEQUAL` verdict for the session comparison cache.
    PutEqual {
        /// Left operand.
        left: String,
        /// Right operand.
        right: String,
        /// The instruction shown to workers (part of the cache key).
        instruction: String,
        /// Whether the crowd judged the operands equal.
        verdict: bool,
    },
    /// A `CROWDORDER` verdict for the session comparison cache.
    PutOrder {
        /// Left operand.
        left: String,
        /// Right operand.
        right: String,
        /// The instruction shown to workers (part of the cache key).
        instruction: String,
        /// Whether the crowd preferred the left operand.
        left_preferred: bool,
    },
}

impl LogRecord {
    /// Short name for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            LogRecord::Ddl { .. } => "ddl",
            LogRecord::Dml { .. } => "dml",
            LogRecord::WriteBackValue { .. } => "write-back-value",
            LogRecord::WriteBackTuple { .. } => "write-back-tuple",
            LogRecord::PutEqual { .. } => "put-equal",
            LogRecord::PutOrder { .. } => "put-order",
        }
    }

    /// Encode this record into a standalone buffer (no framing — the log
    /// layer adds length + CRC).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            LogRecord::Ddl { sql } => {
                buf.put_u8(TAG_DDL);
                put_str(&mut buf, sql);
            }
            LogRecord::Dml { sql } => {
                buf.put_u8(TAG_DML);
                put_str(&mut buf, sql);
            }
            LogRecord::WriteBackValue {
                table,
                tid,
                col,
                value,
            } => {
                buf.put_u8(TAG_WRITE_BACK_VALUE);
                put_str(&mut buf, table);
                codec::encode_value(&mut buf, &Value::Int(tid.0 as i64));
                codec::encode_value(&mut buf, &Value::Int(*col as i64));
                codec::encode_value(&mut buf, value);
            }
            LogRecord::WriteBackTuple { table, row } => {
                buf.put_u8(TAG_WRITE_BACK_TUPLE);
                put_str(&mut buf, table);
                codec::encode_row(&mut buf, row);
            }
            LogRecord::PutEqual {
                left,
                right,
                instruction,
                verdict,
            } => {
                buf.put_u8(TAG_PUT_EQUAL);
                put_str(&mut buf, left);
                put_str(&mut buf, right);
                put_str(&mut buf, instruction);
                codec::encode_value(&mut buf, &Value::Bool(*verdict));
            }
            LogRecord::PutOrder {
                left,
                right,
                instruction,
                left_preferred,
            } => {
                buf.put_u8(TAG_PUT_ORDER);
                put_str(&mut buf, left);
                put_str(&mut buf, right);
                put_str(&mut buf, instruction);
                codec::encode_value(&mut buf, &Value::Bool(*left_preferred));
            }
        }
        buf.freeze()
    }

    /// Decode a record written by [`LogRecord::encode`]. The whole buffer
    /// must be consumed; trailing bytes are corruption.
    pub fn decode(mut buf: Bytes) -> Result<LogRecord> {
        if !buf.has_remaining() {
            return Err(CrowdError::Io("log record: empty payload".into()));
        }
        let tag = buf.get_u8();
        let rec = match tag {
            TAG_DDL => LogRecord::Ddl {
                sql: get_str(&mut buf)?,
            },
            TAG_DML => LogRecord::Dml {
                sql: get_str(&mut buf)?,
            },
            TAG_WRITE_BACK_VALUE => {
                let table = get_str(&mut buf)?;
                let tid = get_int(&mut buf)?;
                let col = get_int(&mut buf)?;
                let value = codec::decode_value(&mut buf)?;
                LogRecord::WriteBackValue {
                    table,
                    tid: TupleId(tid as u64),
                    col: col as usize,
                    value,
                }
            }
            TAG_WRITE_BACK_TUPLE => {
                let table = get_str(&mut buf)?;
                let row = codec::decode_row(&mut buf)?;
                LogRecord::WriteBackTuple { table, row }
            }
            TAG_PUT_EQUAL => LogRecord::PutEqual {
                left: get_str(&mut buf)?,
                right: get_str(&mut buf)?,
                instruction: get_str(&mut buf)?,
                verdict: get_bool(&mut buf)?,
            },
            TAG_PUT_ORDER => LogRecord::PutOrder {
                left: get_str(&mut buf)?,
                right: get_str(&mut buf)?,
                instruction: get_str(&mut buf)?,
                left_preferred: get_bool(&mut buf)?,
            },
            other => return Err(CrowdError::Io(format!("log record: unknown tag {other}"))),
        };
        if buf.has_remaining() {
            return Err(CrowdError::Io(format!(
                "log record: {} trailing byte(s) after {} record",
                buf.remaining(),
                rec.kind()
            )));
        }
        Ok(rec)
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    codec::encode_value(buf, &Value::Str(s.to_string()));
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    match codec::decode_value(buf)? {
        Value::Str(s) => Ok(s),
        other => Err(CrowdError::Io(format!(
            "log record: expected string, got {other:?}"
        ))),
    }
}

fn get_int(buf: &mut Bytes) -> Result<i64> {
    match codec::decode_value(buf)? {
        Value::Int(i) => Ok(i),
        other => Err(CrowdError::Io(format!(
            "log record: expected integer, got {other:?}"
        ))),
    }
}

fn get_bool(buf: &mut Bytes) -> Result<bool> {
    match codec::decode_value(buf)? {
        Value::Bool(b) => Ok(b),
        other => Err(CrowdError::Io(format!(
            "log record: expected boolean, got {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::row;

    fn all_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Ddl {
                sql: "CREATE TABLE t (a INTEGER)".into(),
            },
            LogRecord::Dml {
                sql: "INSERT INTO t VALUES (1)".into(),
            },
            LogRecord::WriteBackValue {
                table: "talk".into(),
                tid: TupleId(7),
                col: 2,
                value: Value::str("an abstract"),
            },
            LogRecord::WriteBackTuple {
                table: "notableattendee".into(),
                row: row!["Mike Franklin", Value::CNull, 3i64, true, 2.5f64],
            },
            LogRecord::PutEqual {
                left: "I.B.M.".into(),
                right: "IBM".into(),
                instruction: "same entity?".into(),
                verdict: true,
            },
            LogRecord::PutOrder {
                left: "sunset".into(),
                right: "fog".into(),
                instruction: "better picture?".into(),
                left_preferred: false,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for rec in all_records() {
            let bytes = rec.encode();
            let back = LogRecord::decode(bytes).unwrap();
            assert_eq!(rec, back);
        }
    }

    #[test]
    fn truncated_records_error_not_panic() {
        for rec in all_records() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(
                    LogRecord::decode(bytes.slice(..cut)).is_err(),
                    "{}: cut at {cut} decoded",
                    rec.kind()
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = all_records()[0].encode().to_vec();
        bytes.push(0);
        assert!(LogRecord::decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(LogRecord::decode(Bytes::from_static(&[99])).is_err());
        assert!(LogRecord::decode(Bytes::new()).is_err());
    }
}
