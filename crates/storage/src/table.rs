//! Heap tables with stable tuple ids, constraint enforcement, and index
//! maintenance.

use crowddb_common::{CrowdError, Result, Row, TableSchema, TupleId, Value};

use crate::index::{Index, IndexKey, IndexKind};

/// Statistics maintained incrementally and consumed by the optimizer's
/// cardinality annotation (paper §3.2.2: "the heuristic first annotates
/// the query plan with the cardinality predictions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Live (non-deleted) rows.
    pub live_rows: usize,
    /// Total slots including tombstones.
    pub total_slots: usize,
    /// Number of CNULL values currently stored.
    pub cnull_values: usize,
}

/// A heap table: rows in insertion order with tombstoned deletes.
///
/// Tuple ids are slot indexes and remain stable for the lifetime of the
/// row; they are never reused after deletion. The table owns its secondary
/// indexes and keeps them consistent on every mutation.
#[derive(Debug, Clone)]
pub struct HeapTable {
    schema: TableSchema,
    slots: Vec<Option<Row>>,
    indexes: Vec<Index>,
    cnull_values: usize,
    live_rows: usize,
}

impl HeapTable {
    /// Create an empty table. If the schema declares a primary key, a
    /// unique hash index named `<table>_pk` is created automatically.
    pub fn new(schema: TableSchema) -> HeapTable {
        let mut t = HeapTable {
            slots: Vec::new(),
            indexes: Vec::new(),
            cnull_values: 0,
            live_rows: 0,
            schema,
        };
        if !t.schema.primary_key.is_empty() {
            let idx = Index::new(
                format!("{}_pk", t.schema.name),
                t.schema.primary_key.clone(),
                IndexKind::Hash,
                true,
            );
            t.indexes.push(idx);
        }
        t
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Current statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            live_rows: self.live_rows,
            total_slots: self.slots.len(),
            cnull_values: self.cnull_values,
        }
    }

    /// Validate a row against the schema: arity, types (with implicit
    /// widening), NOT NULL. Returns the coerced row.
    ///
    /// CNULL is only legal in CROWD columns; a CNULL in a regular column
    /// is rejected, because nothing would ever crowdsource it.
    pub fn validate_row(&self, row: Row) -> Result<Row> {
        if row.arity() != self.schema.arity() {
            return Err(CrowdError::Constraint(format!(
                "table '{}' expects {} columns, got {}",
                self.schema.name,
                self.schema.arity(),
                row.arity()
            )));
        }
        let mut out = Vec::with_capacity(row.arity());
        for (i, v) in row.into_values().into_iter().enumerate() {
            let col = &self.schema.columns[i];
            v.validate().map_err(CrowdError::Constraint)?;
            if v.is_cnull() && !col.crowd && !self.schema.crowd_table {
                return Err(CrowdError::Constraint(format!(
                    "column '{}' of table '{}' is not a CROWD column; CNULL not allowed",
                    col.name, self.schema.name
                )));
            }
            if matches!(v, Value::Null) && col.not_null {
                return Err(CrowdError::Constraint(format!(
                    "column '{}' of table '{}' is NOT NULL",
                    col.name, self.schema.name
                )));
            }
            let coerced = v.clone().coerce_to(col.data_type).ok_or_else(|| {
                CrowdError::Constraint(format!(
                    "value {} is not assignable to column '{}' ({}) of table '{}'",
                    v.sql_literal(),
                    col.name,
                    col.data_type,
                    self.schema.name
                ))
            })?;
            out.push(coerced);
        }
        Ok(Row::new(out))
    }

    fn check_unique(&self, idx: &Index, key: &IndexKey, ignore: Option<TupleId>) -> Result<()> {
        if !idx.unique {
            return Ok(());
        }
        // Keys containing missing values never conflict (SQL semantics).
        if key.0.iter().any(Value::is_missing) {
            return Ok(());
        }
        let hit = idx.get(key).iter().any(|t| Some(*t) != ignore);
        if hit {
            return Err(CrowdError::Constraint(format!(
                "unique constraint '{}' violated by key {:?}",
                idx.name,
                key.0.iter().map(Value::sql_literal).collect::<Vec<_>>()
            )));
        }
        Ok(())
    }

    /// Insert a row, returning its tuple id.
    pub fn insert(&mut self, row: Row) -> Result<TupleId> {
        let tid = TupleId(self.slots.len() as u64);
        self.restore_at(tid, row)?;
        Ok(tid)
    }

    /// Place a row at a specific slot, padding intermediate slots with
    /// tombstones. This is the snapshot/recovery path: tuple ids are slot
    /// indexes and must survive a restart unchanged, because the
    /// write-ahead log addresses crowd-answer write-backs by tuple id.
    pub fn restore_at(&mut self, tid: TupleId, row: Row) -> Result<()> {
        let row = self.validate_row(row)?;
        let slot = tid.0 as usize;
        if self.slots.get(slot).is_some_and(|s| s.is_some()) {
            return Err(CrowdError::Internal(format!(
                "tuple slot {tid} of table '{}' is already occupied",
                self.schema.name
            )));
        }
        for idx in &self.indexes {
            let key = idx.key_of(row.values());
            self.check_unique(idx, &key, None)?;
        }
        for idx in &mut self.indexes {
            let key = idx.key_of(row.values());
            idx.insert(key, tid);
        }
        if self.slots.len() <= slot {
            self.slots.resize(slot + 1, None);
        }
        self.cnull_values += row.cnull_columns().len();
        self.live_rows += 1;
        self.slots[slot] = Some(row);
        Ok(())
    }

    /// Extend the slot vector with trailing tombstones up to `total`
    /// slots, so the next allocated tuple id matches the pre-snapshot
    /// instance even when the last rows were deleted.
    pub fn pad_slots(&mut self, total: usize) {
        if self.slots.len() < total {
            self.slots.resize(total, None);
        }
    }

    /// Undo an insert made earlier in the same statement. Beyond a plain
    /// delete, the tail slot itself is reclaimed so the failed statement
    /// leaves no trace in tuple-id space: a log that never recorded the
    /// statement must allocate the same ids on replay that this instance
    /// allocates going forward. Roll back a batch in reverse insertion
    /// order so each tuple is the tail when its turn comes.
    pub fn rollback_insert(&mut self, tid: TupleId) -> bool {
        let existed = self.delete(tid);
        if existed && tid.0 as usize + 1 == self.slots.len() {
            self.slots.pop();
        }
        existed
    }

    /// Fetch a live row by tuple id.
    pub fn get(&self, tid: TupleId) -> Option<&Row> {
        self.slots.get(tid.0 as usize).and_then(|s| s.as_ref())
    }

    /// Delete a row. Returns whether it existed.
    pub fn delete(&mut self, tid: TupleId) -> bool {
        let Some(slot) = self.slots.get_mut(tid.0 as usize) else {
            return false;
        };
        let Some(row) = slot.take() else {
            return false;
        };
        for idx in &mut self.indexes {
            let key = idx.key_of(row.values());
            idx.remove(&key, tid);
        }
        self.cnull_values -= row.cnull_columns().len();
        self.live_rows -= 1;
        true
    }

    /// Replace an entire row in place.
    pub fn update(&mut self, tid: TupleId, new_row: Row) -> Result<()> {
        let new_row = self.validate_row(new_row)?;
        let old = self
            .get(tid)
            .ok_or_else(|| CrowdError::Exec(format!("tuple {tid} not found")))?
            .clone();
        for idx in &self.indexes {
            let key = idx.key_of(new_row.values());
            self.check_unique(idx, &key, Some(tid))?;
        }
        for idx in &mut self.indexes {
            let old_key = idx.key_of(old.values());
            let new_key = idx.key_of(new_row.values());
            if old_key != new_key {
                idx.remove(&old_key, tid);
                idx.insert(new_key, tid);
            }
        }
        self.cnull_values -= old.cnull_columns().len();
        self.cnull_values += new_row.cnull_columns().len();
        self.slots[tid.0 as usize] = Some(new_row);
        Ok(())
    }

    /// Update a single column of a row — the write-back path used when a
    /// crowd answer arrives for a `CNULL` value.
    pub fn update_value(&mut self, tid: TupleId, col: usize, value: Value) -> Result<()> {
        let row = self
            .get(tid)
            .ok_or_else(|| CrowdError::Exec(format!("tuple {tid} not found")))?;
        let mut new_row = row.clone();
        if col >= new_row.arity() {
            return Err(CrowdError::Exec(format!(
                "column index {col} out of range for table '{}'",
                self.schema.name
            )));
        }
        new_row.set(col, value);
        self.update(tid, new_row)
    }

    /// Iterate over live `(tuple id, row)` pairs in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = (TupleId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (TupleId(i as u64), r)))
    }

    /// Materialize all live rows (used by executor table scans).
    pub fn scan_rows(&self) -> Vec<(TupleId, Row)> {
        self.scan().map(|(t, r)| (t, r.clone())).collect()
    }

    /// Add a secondary index, backfilling existing rows.
    pub fn add_index(&mut self, mut index: Index) -> Result<()> {
        if self.indexes.iter().any(|i| i.name == index.name) {
            return Err(CrowdError::Catalog(format!(
                "index '{}' already exists on table '{}'",
                index.name, self.schema.name
            )));
        }
        index.clear();
        for (tid, row) in self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (TupleId(i as u64), r)))
        {
            let key = index.key_of(row.values());
            self.check_unique(&index, &key, None)?;
            index.insert(key, tid);
        }
        self.indexes.push(index);
        Ok(())
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index whose leading columns equal `cols` exactly.
    pub fn index_on(&self, cols: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.columns == cols)
    }

    /// Look up tuples by primary-key value (if a PK exists).
    pub fn lookup_pk(&self, key_values: &[Value]) -> Vec<TupleId> {
        if self.schema.primary_key.is_empty() {
            return Vec::new();
        }
        match self.index_on(&self.schema.primary_key) {
            Some(idx) => idx.get(&IndexKey(key_values.to_vec())).to_vec(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::{row, ColumnDef, DataType};

    fn talk_table() -> HeapTable {
        let schema = TableSchema::new(
            "talk",
            vec![
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("abstract", DataType::Str).crowd(),
                ColumnDef::new("nb_attendees", DataType::Int).crowd(),
            ],
        )
        .unwrap()
        .with_primary_key(&["title"])
        .unwrap();
        HeapTable::new(schema)
    }

    #[test]
    fn rollback_insert_reclaims_the_tail_slot() {
        let mut t = talk_table();
        let keep = t.insert(row!["keep", Value::CNull, Value::CNull]).unwrap();
        let a = t.insert(row!["a", Value::CNull, Value::CNull]).unwrap();
        let b = t.insert(row!["b", Value::CNull, Value::CNull]).unwrap();
        assert!(t.rollback_insert(b));
        assert!(t.rollback_insert(a));
        // Tuple-id space is as if the inserts never happened.
        let next = t.insert(row!["next", Value::CNull, Value::CNull]).unwrap();
        assert_eq!(next, a, "slot must be reallocated, not burned");
        assert!(t.get(keep).is_some());
        // Rolling back a non-tail tuple degrades to a plain delete.
        assert!(t.rollback_insert(keep));
        assert_eq!(t.live_rows, 1);
        assert!(!t.rollback_insert(keep), "already gone");
    }

    #[test]
    fn insert_and_scan() {
        let mut t = talk_table();
        let t1 = t
            .insert(row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        let t2 = t.insert(row!["Qurk", "abstract text", 120i64]).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(t.stats().live_rows, 2);
        assert_eq!(t.stats().cnull_values, 2);
        let rows: Vec<_> = t.scan().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1[0], Value::str("CrowdDB"));
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = talk_table();
        t.insert(row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        let err = t
            .insert(row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap_err();
        assert_eq!(err.category(), "constraint");
        assert_eq!(t.stats().live_rows, 1);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = talk_table();
        let err = t.insert(row!["x", "abs", "not a number"]).unwrap_err();
        assert_eq!(err.category(), "constraint");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = talk_table();
        assert!(t.insert(row!["x"]).is_err());
    }

    #[test]
    fn cnull_only_in_crowd_columns() {
        let mut t = talk_table();
        let err = t.insert(row![Value::CNull, "a", 1i64]).unwrap_err();
        assert!(err.message().contains("not a CROWD column"), "{err}");
    }

    #[test]
    fn cnull_anywhere_in_crowd_tables() {
        let schema = TableSchema::new(
            "attendee",
            vec![
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("title", DataType::Str),
            ],
        )
        .unwrap()
        .crowd();
        let mut t = HeapTable::new(schema);
        assert!(t.insert(row!["Alice", Value::CNull]).is_ok());
    }

    #[test]
    fn not_null_enforced_on_pk() {
        let mut t = talk_table();
        let err = t.insert(row![Value::Null, "a", 1i64]).unwrap_err();
        assert_eq!(err.category(), "constraint");
    }

    #[test]
    fn delete_updates_stats_and_index() {
        let mut t = talk_table();
        let tid = t.insert(row!["CrowdDB", Value::CNull, 5i64]).unwrap();
        assert!(t.delete(tid));
        assert!(!t.delete(tid));
        assert_eq!(t.stats().live_rows, 0);
        assert_eq!(t.stats().cnull_values, 0);
        // PK is free again after deletion.
        t.insert(row!["CrowdDB", "a", 5i64]).unwrap();
    }

    #[test]
    fn tuple_ids_not_reused() {
        let mut t = talk_table();
        let t1 = t.insert(row!["a", "x", 1i64]).unwrap();
        t.delete(t1);
        let t2 = t.insert(row!["b", "y", 2i64]).unwrap();
        assert_ne!(t1, t2);
        assert!(t.get(t1).is_none());
        assert!(t.get(t2).is_some());
    }

    #[test]
    fn update_value_write_back() {
        let mut t = talk_table();
        let tid = t
            .insert(row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        t.update_value(tid, 1, Value::str("the abstract")).unwrap();
        assert_eq!(t.get(tid).unwrap()[1], Value::str("the abstract"));
        assert_eq!(t.stats().cnull_values, 1);
        t.update_value(tid, 2, Value::Int(250)).unwrap();
        assert_eq!(t.stats().cnull_values, 0);
    }

    #[test]
    fn update_maintains_pk_index() {
        let mut t = talk_table();
        let tid = t.insert(row!["Old", Value::CNull, 1i64]).unwrap();
        t.update_value(tid, 0, Value::str("New")).unwrap();
        assert_eq!(t.lookup_pk(&[Value::str("New")]), vec![tid]);
        assert!(t.lookup_pk(&[Value::str("Old")]).is_empty());
    }

    #[test]
    fn update_pk_conflict_rejected() {
        let mut t = talk_table();
        t.insert(row!["A", Value::CNull, 1i64]).unwrap();
        let tid_b = t.insert(row!["B", Value::CNull, 2i64]).unwrap();
        let err = t.update_value(tid_b, 0, Value::str("A")).unwrap_err();
        assert_eq!(err.category(), "constraint");
        // Row B unchanged after the failed update.
        assert_eq!(t.get(tid_b).unwrap()[0], Value::str("B"));
    }

    #[test]
    fn int_widens_to_float() {
        let schema = TableSchema::new("m", vec![ColumnDef::new("score", DataType::Float)]).unwrap();
        let mut t = HeapTable::new(schema);
        let tid = t.insert(row![3i64]).unwrap();
        assert_eq!(t.get(tid).unwrap()[0], Value::Float(3.0));
    }

    #[test]
    fn secondary_index_backfill_and_lookup() {
        let mut t = talk_table();
        t.insert(row!["a", "x", 10i64]).unwrap();
        t.insert(row!["b", "y", 20i64]).unwrap();
        t.insert(row!["c", "z", 10i64]).unwrap();
        t.add_index(Index::new("talk_att", vec![2], IndexKind::BTree, false))
            .unwrap();
        let idx = t.index_on(&[2]).unwrap();
        assert_eq!(idx.get(&IndexKey(vec![Value::Int(10)])).len(), 2);
        assert_eq!(idx.distinct_keys(), 2);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = talk_table();
        t.add_index(Index::new("i1", vec![2], IndexKind::Hash, false))
            .unwrap();
        assert!(t
            .add_index(Index::new("i1", vec![1], IndexKind::Hash, false))
            .is_err());
    }

    #[test]
    fn unique_index_backfill_conflict() {
        let mut t = talk_table();
        t.insert(row!["a", "x", 10i64]).unwrap();
        t.insert(row!["b", "y", 10i64]).unwrap();
        let err = t
            .add_index(Index::new("u", vec![2], IndexKind::Hash, true))
            .unwrap_err();
        assert_eq!(err.category(), "constraint");
    }

    #[test]
    fn nulls_do_not_conflict_in_unique_index() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("email", DataType::Str),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let mut t = HeapTable::new(schema);
        t.add_index(Index::new("u_email", vec![1], IndexKind::Hash, true))
            .unwrap();
        t.insert(row![1i64, Value::Null]).unwrap();
        t.insert(row![2i64, Value::Null]).unwrap(); // no conflict
        let err = t.insert(row![3i64, Value::Null]);
        assert!(err.is_ok());
    }

    #[test]
    fn nan_rejected_at_insert() {
        let schema = TableSchema::new("m", vec![ColumnDef::new("score", DataType::Float)]).unwrap();
        let mut t = HeapTable::new(schema);
        assert!(t.insert(row![f64::NAN]).is_err());
    }
}
