//! Tables over the paged storage engine: a primary B-tree keyed by
//! tuple id, secondary indexes, constraint enforcement, and index
//! maintenance.
//!
//! Tuple ids are allocation order and remain stable for the lifetime of
//! the row; they are never reused after deletion (the write-ahead log
//! addresses crowd-answer write-backs by tuple id). Rows are stored
//! codec-encoded as primary-tree values; reads therefore return owned
//! `Row`s and are fallible (file-backed pagers do I/O).

use std::sync::Arc;

use bytes::{Bytes, BytesMut};

use crowddb_common::{CrowdError, Result, Row, TableSchema, TupleId, Value};

use crate::btree::{BTree, KeyCmp};
use crate::codec;
use crate::cursor::{encode_tid_key, TableCursor};
use crate::index::{Index, IndexKey, IndexKind};
use crate::page::PageId;
use crate::pager::Pager;

/// Statistics maintained incrementally and consumed by the optimizer's
/// cardinality annotation (paper §3.2.2: "the heuristic first annotates
/// the query plan with the cardinality predictions").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Live (non-deleted) rows.
    pub live_rows: usize,
    /// Total tuple ids ever allocated, including tombstoned ones.
    pub total_slots: usize,
    /// Number of CNULL values currently stored.
    pub cnull_values: usize,
}

/// A table backed by paged B-trees.
///
/// Deliberately not `Clone`: two tables sharing the same trees would
/// corrupt each other through the shared pager.
#[derive(Debug)]
pub struct HeapTable {
    schema: TableSchema,
    pager: Arc<Pager>,
    /// Primary storage: tid (8 bytes BE) → codec-encoded row.
    primary: BTree,
    indexes: Vec<Index>,
    /// Next tuple id to allocate (= slots ever used, including deleted).
    total_slots: u64,
    cnull_values: usize,
    live_rows: usize,
}

impl HeapTable {
    /// Create an empty table. If the schema declares a primary key, a
    /// unique hash index named `<table>_pk` is created automatically.
    pub fn new(pager: Arc<Pager>, schema: TableSchema) -> Result<HeapTable> {
        let primary = BTree::create(&pager, KeyCmp::Bytes)?;
        let mut t = HeapTable {
            primary,
            indexes: Vec::new(),
            total_slots: 0,
            cnull_values: 0,
            live_rows: 0,
            schema,
            pager,
        };
        if !t.schema.primary_key.is_empty() {
            let idx = Index::new(
                &t.pager,
                format!("{}_pk", t.schema.name),
                t.schema.primary_key.clone(),
                IndexKind::Hash,
                true,
            )?;
            t.indexes.push(idx);
        }
        Ok(t)
    }

    /// Re-attach a table to trees already present in the pager (metadata
    /// restore after reopening a page file).
    pub fn from_parts(
        pager: Arc<Pager>,
        schema: TableSchema,
        primary_root: PageId,
        total_slots: u64,
        live_rows: usize,
        cnull_values: usize,
        indexes: Vec<Index>,
    ) -> HeapTable {
        HeapTable {
            primary: BTree::open(primary_root, KeyCmp::Bytes),
            indexes,
            total_slots,
            cnull_values,
            live_rows,
            schema,
            pager,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The pager backing this table (executors need it to probe this
    /// table's secondary indexes directly).
    pub fn pager(&self) -> &Pager {
        &self.pager
    }

    /// Root page of the primary tree (persisted in database metadata).
    pub fn primary_root(&self) -> PageId {
        self.primary.root()
    }

    /// Current statistics.
    pub fn stats(&self) -> TableStats {
        TableStats {
            live_rows: self.live_rows,
            total_slots: self.total_slots as usize,
            cnull_values: self.cnull_values,
        }
    }

    /// Validate a row against the schema: arity, types (with implicit
    /// widening), NOT NULL. Returns the coerced row.
    ///
    /// CNULL is only legal in CROWD columns; a CNULL in a regular column
    /// is rejected, because nothing would ever crowdsource it.
    pub fn validate_row(&self, row: Row) -> Result<Row> {
        if row.arity() != self.schema.arity() {
            return Err(CrowdError::Constraint(format!(
                "table '{}' expects {} columns, got {}",
                self.schema.name,
                self.schema.arity(),
                row.arity()
            )));
        }
        let mut out = Vec::with_capacity(row.arity());
        for (i, v) in row.into_values().into_iter().enumerate() {
            let col = &self.schema.columns[i];
            v.validate().map_err(CrowdError::Constraint)?;
            if v.is_cnull() && !col.crowd && !self.schema.crowd_table {
                return Err(CrowdError::Constraint(format!(
                    "column '{}' of table '{}' is not a CROWD column; CNULL not allowed",
                    col.name, self.schema.name
                )));
            }
            if matches!(v, Value::Null) && col.not_null {
                return Err(CrowdError::Constraint(format!(
                    "column '{}' of table '{}' is NOT NULL",
                    col.name, self.schema.name
                )));
            }
            let coerced = v.clone().coerce_to(col.data_type).ok_or_else(|| {
                CrowdError::Constraint(format!(
                    "value {} is not assignable to column '{}' ({}) of table '{}'",
                    v.sql_literal(),
                    col.name,
                    col.data_type,
                    self.schema.name
                ))
            })?;
            out.push(coerced);
        }
        Ok(Row::new(out))
    }

    fn check_unique(&self, idx: &Index, key: &IndexKey, ignore: Option<TupleId>) -> Result<()> {
        if !idx.unique {
            return Ok(());
        }
        // Keys containing missing values never conflict (SQL semantics).
        if key.has_missing() {
            return Ok(());
        }
        let hit = idx
            .get(&self.pager, key)?
            .iter()
            .any(|t| Some(*t) != ignore);
        if hit {
            return Err(CrowdError::Constraint(format!(
                "unique constraint '{}' violated by key {:?}",
                idx.name,
                key.0.iter().map(Value::sql_literal).collect::<Vec<_>>()
            )));
        }
        Ok(())
    }

    fn write_primary(&mut self, tid: TupleId, row: &Row) -> Result<()> {
        let mut buf = BytesMut::new();
        codec::encode_row(&mut buf, row);
        self.primary.insert(&self.pager, &encode_tid_key(tid), &buf)
    }

    /// Insert a row, returning its tuple id.
    pub fn insert(&mut self, row: Row) -> Result<TupleId> {
        let tid = TupleId(self.total_slots);
        self.restore_at(tid, row)?;
        Ok(tid)
    }

    /// Place a row at a specific tuple id, reserving any intermediate
    /// ids. This is the snapshot/recovery path: tuple ids must survive a
    /// restart unchanged, because the write-ahead log addresses
    /// crowd-answer write-backs by tuple id.
    pub fn restore_at(&mut self, tid: TupleId, row: Row) -> Result<()> {
        let row = self.validate_row(row)?;
        if self.get(tid)?.is_some() {
            return Err(CrowdError::Internal(format!(
                "tuple slot {tid} of table '{}' is already occupied",
                self.schema.name
            )));
        }
        for idx in &self.indexes {
            let key = idx.key_of(row.values());
            self.check_unique(idx, &key, None)?;
        }
        let pager = Arc::clone(&self.pager);
        for idx in &mut self.indexes {
            let key = idx.key_of(row.values());
            idx.insert(&pager, &key, tid)?;
        }
        self.write_primary(tid, &row)?;
        self.total_slots = self.total_slots.max(tid.0 + 1);
        self.cnull_values += row.cnull_columns().len();
        self.live_rows += 1;
        Ok(())
    }

    /// Reserve tuple-id space up to `total` ids, so the next allocated
    /// tuple id matches the pre-snapshot instance even when the last rows
    /// were deleted.
    pub fn pad_slots(&mut self, total: usize) {
        self.total_slots = self.total_slots.max(total as u64);
    }

    /// Undo an insert made earlier in the same statement. Beyond a plain
    /// delete, the tail tuple id itself is reclaimed so the failed
    /// statement leaves no trace in tuple-id space: a log that never
    /// recorded the statement must allocate the same ids on replay that
    /// this instance allocates going forward. Roll back a batch in
    /// reverse insertion order so each tuple is the tail when its turn
    /// comes.
    pub fn rollback_insert(&mut self, tid: TupleId) -> Result<bool> {
        let existed = self.delete(tid)?;
        if existed && tid.0 + 1 == self.total_slots {
            self.total_slots -= 1;
        }
        Ok(existed)
    }

    /// Fetch a live row by tuple id.
    pub fn get(&self, tid: TupleId) -> Result<Option<Row>> {
        if tid.0 >= self.total_slots {
            return Ok(None);
        }
        match self.primary.get(&self.pager, &encode_tid_key(tid))? {
            None => Ok(None),
            Some(bytes) => Ok(Some(codec::decode_row(&mut Bytes::from(bytes))?)),
        }
    }

    /// Delete a row. Returns whether it existed.
    pub fn delete(&mut self, tid: TupleId) -> Result<bool> {
        let Some(row) = self.get(tid)? else {
            return Ok(false);
        };
        self.primary.remove(&self.pager, &encode_tid_key(tid))?;
        let pager = Arc::clone(&self.pager);
        for idx in &mut self.indexes {
            let key = idx.key_of(row.values());
            idx.remove(&pager, &key, tid)?;
        }
        self.cnull_values -= row.cnull_columns().len();
        self.live_rows -= 1;
        Ok(true)
    }

    /// Replace an entire row in place.
    pub fn update(&mut self, tid: TupleId, new_row: Row) -> Result<()> {
        let new_row = self.validate_row(new_row)?;
        let old = self
            .get(tid)?
            .ok_or_else(|| CrowdError::Exec(format!("tuple {tid} not found")))?;
        for idx in &self.indexes {
            let key = idx.key_of(new_row.values());
            self.check_unique(idx, &key, Some(tid))?;
        }
        let pager = Arc::clone(&self.pager);
        for idx in &mut self.indexes {
            let old_key = idx.key_of(old.values());
            let new_key = idx.key_of(new_row.values());
            if old_key != new_key {
                idx.remove(&pager, &old_key, tid)?;
                idx.insert(&pager, &new_key, tid)?;
            }
        }
        self.cnull_values -= old.cnull_columns().len();
        self.cnull_values += new_row.cnull_columns().len();
        self.write_primary(tid, &new_row)
    }

    /// Update a single column of a row — the write-back path used when a
    /// crowd answer arrives for a `CNULL` value.
    pub fn update_value(&mut self, tid: TupleId, col: usize, value: Value) -> Result<()> {
        let row = self
            .get(tid)?
            .ok_or_else(|| CrowdError::Exec(format!("tuple {tid} not found")))?;
        let mut new_row = row;
        if col >= new_row.arity() {
            return Err(CrowdError::Exec(format!(
                "column index {col} out of range for table '{}'",
                self.schema.name
            )));
        }
        new_row.set(col, value);
        self.update(tid, new_row)
    }

    /// A streaming cursor over live rows in tuple-id (insertion) order.
    pub fn cursor(&self) -> Result<TableCursor<'_>> {
        Ok(TableCursor::new(
            &self.pager,
            self.primary.cursor_first(&self.pager)?,
        ))
    }

    /// Materialize all live `(tuple id, row)` pairs in insertion order.
    pub fn scan_rows(&self) -> Result<Vec<(TupleId, Row)>> {
        self.cursor()?.collect_rows()
    }

    /// Add a secondary index, backfilling existing rows.
    pub fn add_index(
        &mut self,
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    ) -> Result<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(CrowdError::Catalog(format!(
                "index '{name}' already exists on table '{}'",
                self.schema.name
            )));
        }
        let mut index = Index::new(&self.pager, name, columns, kind, unique)?;
        match self.backfill(&mut index) {
            Ok(()) => {
                self.indexes.push(index);
                Ok(())
            }
            Err(e) => {
                // Release the partially built entry tree before bailing.
                index.free(&self.pager)?;
                Err(e)
            }
        }
    }

    fn backfill(&self, index: &mut Index) -> Result<()> {
        let mut cur = self.cursor()?;
        while let Some((tid, row)) = cur.next()? {
            let key = index.key_of(row.values());
            if index.unique && !key.has_missing() && !index.get(&self.pager, &key)?.is_empty() {
                return Err(CrowdError::Constraint(format!(
                    "unique constraint '{}' violated by key {:?}",
                    index.name,
                    key.0.iter().map(Value::sql_literal).collect::<Vec<_>>()
                )));
            }
            index.insert(&self.pager, &key, tid)?;
        }
        Ok(())
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> &[Index] {
        &self.indexes
    }

    /// Find an index whose columns equal `cols` exactly.
    pub fn index_on(&self, cols: &[usize]) -> Option<&Index> {
        self.indexes.iter().find(|i| i.columns == cols)
    }

    /// Look up tuples by primary-key value (if a PK exists).
    pub fn lookup_pk(&self, key_values: &[Value]) -> Result<Vec<TupleId>> {
        if self.schema.primary_key.is_empty() {
            return Ok(Vec::new());
        }
        match self.index_on(&self.schema.primary_key) {
            Some(idx) => idx.get(&self.pager, &IndexKey(key_values.to_vec())),
            None => Ok(Vec::new()),
        }
    }

    /// Free every page owned by this table (table dropped).
    pub fn free(self) -> Result<()> {
        let pager = Arc::clone(&self.pager);
        self.primary.free(&pager)?;
        for idx in self.indexes {
            idx.free(&pager)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PagerConfig;
    use crowddb_common::{row, ColumnDef, DataType};

    fn pager() -> Arc<Pager> {
        Arc::new(
            Pager::new_mem(PagerConfig {
                page_size: 256,
                pool_pages: 0,
            })
            .unwrap(),
        )
    }

    fn talk_table() -> HeapTable {
        let schema = TableSchema::new(
            "talk",
            vec![
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("abstract", DataType::Str).crowd(),
                ColumnDef::new("nb_attendees", DataType::Int).crowd(),
            ],
        )
        .unwrap()
        .with_primary_key(&["title"])
        .unwrap();
        HeapTable::new(pager(), schema).unwrap()
    }

    #[test]
    fn rollback_insert_reclaims_the_tail_slot() {
        let mut t = talk_table();
        let keep = t.insert(row!["keep", Value::CNull, Value::CNull]).unwrap();
        let a = t.insert(row!["a", Value::CNull, Value::CNull]).unwrap();
        let b = t.insert(row!["b", Value::CNull, Value::CNull]).unwrap();
        assert!(t.rollback_insert(b).unwrap());
        assert!(t.rollback_insert(a).unwrap());
        // Tuple-id space is as if the inserts never happened.
        let next = t.insert(row!["next", Value::CNull, Value::CNull]).unwrap();
        assert_eq!(next, a, "slot must be reallocated, not burned");
        assert!(t.get(keep).unwrap().is_some());
        // Rolling back a non-tail tuple degrades to a plain delete.
        assert!(t.rollback_insert(keep).unwrap());
        assert_eq!(t.stats().live_rows, 1);
        assert!(!t.rollback_insert(keep).unwrap(), "already gone");
    }

    #[test]
    fn insert_and_scan() {
        let mut t = talk_table();
        let t1 = t
            .insert(row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        let t2 = t.insert(row!["Qurk", "abstract text", 120i64]).unwrap();
        assert_ne!(t1, t2);
        assert_eq!(t.stats().live_rows, 2);
        assert_eq!(t.stats().cnull_values, 2);
        let rows = t.scan_rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1[0], Value::str("CrowdDB"));
    }

    #[test]
    fn cursor_streams_in_tid_order() {
        let mut t = talk_table();
        for i in 0..50i64 {
            t.insert(row![format!("talk-{i:03}"), Value::CNull, i])
                .unwrap();
        }
        t.delete(TupleId(10)).unwrap();
        let mut cur = t.cursor().unwrap();
        let mut tids = Vec::new();
        while let Some((tid, _)) = cur.next().unwrap() {
            tids.push(tid.0);
        }
        let expected: Vec<u64> = (0..50).filter(|&i| i != 10).collect();
        assert_eq!(tids, expected);
    }

    #[test]
    fn pk_uniqueness_enforced() {
        let mut t = talk_table();
        t.insert(row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        let err = t
            .insert(row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap_err();
        assert_eq!(err.category(), "constraint");
        assert_eq!(t.stats().live_rows, 1);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = talk_table();
        let err = t.insert(row!["x", "abs", "not a number"]).unwrap_err();
        assert_eq!(err.category(), "constraint");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = talk_table();
        assert!(t.insert(row!["x"]).is_err());
    }

    #[test]
    fn cnull_only_in_crowd_columns() {
        let mut t = talk_table();
        let err = t.insert(row![Value::CNull, "a", 1i64]).unwrap_err();
        assert!(err.message().contains("not a CROWD column"), "{err}");
    }

    #[test]
    fn cnull_anywhere_in_crowd_tables() {
        let schema = TableSchema::new(
            "attendee",
            vec![
                ColumnDef::new("name", DataType::Str),
                ColumnDef::new("title", DataType::Str),
            ],
        )
        .unwrap()
        .crowd();
        let mut t = HeapTable::new(pager(), schema).unwrap();
        assert!(t.insert(row!["Alice", Value::CNull]).is_ok());
    }

    #[test]
    fn not_null_enforced_on_pk() {
        let mut t = talk_table();
        let err = t.insert(row![Value::Null, "a", 1i64]).unwrap_err();
        assert_eq!(err.category(), "constraint");
    }

    #[test]
    fn delete_updates_stats_and_index() {
        let mut t = talk_table();
        let tid = t.insert(row!["CrowdDB", Value::CNull, 5i64]).unwrap();
        assert!(t.delete(tid).unwrap());
        assert!(!t.delete(tid).unwrap());
        assert_eq!(t.stats().live_rows, 0);
        assert_eq!(t.stats().cnull_values, 0);
        // PK is free again after deletion.
        t.insert(row!["CrowdDB", "a", 5i64]).unwrap();
    }

    #[test]
    fn tuple_ids_not_reused() {
        let mut t = talk_table();
        let t1 = t.insert(row!["a", "x", 1i64]).unwrap();
        t.delete(t1).unwrap();
        let t2 = t.insert(row!["b", "y", 2i64]).unwrap();
        assert_ne!(t1, t2);
        assert!(t.get(t1).unwrap().is_none());
        assert!(t.get(t2).unwrap().is_some());
    }

    #[test]
    fn update_value_write_back() {
        let mut t = talk_table();
        let tid = t
            .insert(row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        t.update_value(tid, 1, Value::str("the abstract")).unwrap();
        assert_eq!(t.get(tid).unwrap().unwrap()[1], Value::str("the abstract"));
        assert_eq!(t.stats().cnull_values, 1);
        t.update_value(tid, 2, Value::Int(250)).unwrap();
        assert_eq!(t.stats().cnull_values, 0);
    }

    #[test]
    fn update_maintains_pk_index() {
        let mut t = talk_table();
        let tid = t.insert(row!["Old", Value::CNull, 1i64]).unwrap();
        t.update_value(tid, 0, Value::str("New")).unwrap();
        assert_eq!(t.lookup_pk(&[Value::str("New")]).unwrap(), vec![tid]);
        assert!(t.lookup_pk(&[Value::str("Old")]).unwrap().is_empty());
    }

    #[test]
    fn update_pk_conflict_rejected() {
        let mut t = talk_table();
        t.insert(row!["A", Value::CNull, 1i64]).unwrap();
        let tid_b = t.insert(row!["B", Value::CNull, 2i64]).unwrap();
        let err = t.update_value(tid_b, 0, Value::str("A")).unwrap_err();
        assert_eq!(err.category(), "constraint");
        // Row B unchanged after the failed update.
        assert_eq!(t.get(tid_b).unwrap().unwrap()[0], Value::str("B"));
    }

    #[test]
    fn int_widens_to_float() {
        let schema = TableSchema::new("m", vec![ColumnDef::new("score", DataType::Float)]).unwrap();
        let mut t = HeapTable::new(pager(), schema).unwrap();
        let tid = t.insert(row![3i64]).unwrap();
        assert_eq!(t.get(tid).unwrap().unwrap()[0], Value::Float(3.0));
    }

    #[test]
    fn secondary_index_backfill_and_lookup() {
        let mut t = talk_table();
        t.insert(row!["a", "x", 10i64]).unwrap();
        t.insert(row!["b", "y", 20i64]).unwrap();
        t.insert(row!["c", "z", 10i64]).unwrap();
        t.add_index("talk_att", vec![2], IndexKind::BTree, false)
            .unwrap();
        let idx = t.index_on(&[2]).unwrap();
        assert_eq!(
            idx.get(t.pager(), &IndexKey(vec![Value::Int(10)]))
                .unwrap()
                .len(),
            2
        );
        assert_eq!(idx.distinct_keys(t.pager()).unwrap(), 2);
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = talk_table();
        t.add_index("i1", vec![2], IndexKind::Hash, false).unwrap();
        assert!(t.add_index("i1", vec![1], IndexKind::Hash, false).is_err());
    }

    #[test]
    fn unique_index_backfill_conflict() {
        let mut t = talk_table();
        t.insert(row!["a", "x", 10i64]).unwrap();
        t.insert(row!["b", "y", 10i64]).unwrap();
        let err = t
            .add_index("u", vec![2], IndexKind::Hash, true)
            .unwrap_err();
        assert_eq!(err.category(), "constraint");
        assert!(t.index_on(&[2]).is_none(), "failed index not attached");
    }

    #[test]
    fn nulls_do_not_conflict_in_unique_index() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("email", DataType::Str),
            ],
        )
        .unwrap()
        .with_primary_key(&["id"])
        .unwrap();
        let mut t = HeapTable::new(pager(), schema).unwrap();
        t.add_index("u_email", vec![1], IndexKind::Hash, true)
            .unwrap();
        t.insert(row![1i64, Value::Null]).unwrap();
        t.insert(row![2i64, Value::Null]).unwrap(); // no conflict
        let err = t.insert(row![3i64, Value::Null]);
        assert!(err.is_ok());
    }

    #[test]
    fn nan_rejected_at_insert() {
        let schema = TableSchema::new("m", vec![ColumnDef::new("score", DataType::Float)]).unwrap();
        let mut t = HeapTable::new(pager(), schema).unwrap();
        assert!(t.insert(row![f64::NAN]).is_err());
    }

    #[test]
    fn large_rows_round_trip_through_overflow() {
        let mut t = talk_table();
        let big = "x".repeat(4000);
        let tid = t.insert(row!["big", big.clone(), 1i64]).unwrap();
        assert_eq!(t.get(tid).unwrap().unwrap()[1], Value::str(&big));
        let rows = t.scan_rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].1[1], Value::str(&big));
    }
}
