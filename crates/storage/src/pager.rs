//! The pager: fixed-size page allocation, reads and writes through the
//! buffer pool, and the dirty-page checkpoint journal.
//!
//! Two backends share one API:
//!
//! * **Mem** — pages live in a `Vec`; writes are write-through (the
//!   backing store is updated immediately, the pool caches a clean copy),
//!   so a bounded pool only ever drops re-readable pages.
//! * **File** — pages live in `pages.db`; writes are write-back
//!   (*no-steal*): dirty pages stay resident until a checkpoint flushes
//!   them. A checkpoint is a double-write: dirty pages are first appended
//!   to `pages.journal` (CRC-framed, fsynced), then — after the caller
//!   commits its metadata snapshot — applied to `pages.db` and the
//!   journal is truncated. Crash recovery replays or discards the journal
//!   by comparing its epoch against the committed metadata epoch, so
//!   `pages.db` is always restored to exactly the bytes of the last
//!   committed checkpoint.
//!
//! Determinism: page allocation order is a function of the logical
//! operation sequence (free ids are reused smallest-first), and pool
//! state never influences results — only the `PagerStats` counters.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crowddb_common::{CrowdError, Result};

use crate::page::{self, PageId, HEADER_PAGE};
use crate::pool::{BufferPool, PagerStats};

/// Name of the page file inside a database directory.
pub const PAGES_FILE: &str = "pages.db";
/// Name of the checkpoint journal inside a database directory.
pub const JOURNAL_FILE: &str = "pages.journal";

const JOURNAL_MAGIC: &[u8; 8] = b"CDBJRNL1";

/// Pager construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PagerConfig {
    /// Page size in bytes (power of two not required; minimum
    /// [`page::MIN_PAGE_SIZE`]).
    pub page_size: usize,
    /// Buffer-pool budget in pages; `0` = unbounded.
    pub pool_pages: usize,
}

impl Default for PagerConfig {
    /// Defaults honor the `CROWDDB_PAGE_SIZE` / `CROWDDB_POOL_PAGES`
    /// environment variables so a whole test run can be squeezed through
    /// a tiny pool (CI small-pool stress) without code changes.
    fn default() -> PagerConfig {
        PagerConfig {
            page_size: env_usize("CROWDDB_PAGE_SIZE", page::DEFAULT_PAGE_SIZE),
            pool_pages: env_usize("CROWDDB_POOL_PAGES", 0),
        }
    }
}

fn env_usize(var: &str, default: usize) -> usize {
    std::env::var(var)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(default)
}

#[derive(Debug)]
enum Backend {
    /// Authoritative in-memory page store (write-through).
    Mem(Vec<Arc<Vec<u8>>>),
    /// `pages.db` in a database directory (write-back, no-steal).
    File { db: File, journal_path: PathBuf },
}

#[derive(Debug)]
struct PagerState {
    pool: BufferPool,
    backend: Backend,
    free: BTreeSet<PageId>,
    /// Pages ever allocated, including the header page.
    page_count: u64,
    /// Epoch of the most recent `begin_checkpoint` (committed or not).
    epoch: u64,
}

/// A page store: allocation, pooled reads, writes, and checkpoints.
#[derive(Debug)]
pub struct Pager {
    page_size: usize,
    state: Mutex<PagerState>,
}

/// An in-flight checkpoint: the journal is durable, the page-file apply
/// is pending. Produced by [`Pager::begin_checkpoint`]; the caller
/// commits its metadata (which records `epoch`) between the two halves.
#[derive(Debug)]
pub struct CheckpointPrep {
    /// The epoch written into the journal header. The caller must record
    /// it in its committed metadata so recovery can classify the journal.
    pub epoch: u64,
    pages: Vec<(PageId, Arc<Vec<u8>>)>,
}

impl CheckpointPrep {
    /// Number of dirty pages this checkpoint flushes.
    pub fn pages_written(&self) -> u64 {
        self.pages.len() as u64
    }
}

impl Pager {
    /// An in-memory pager (write-through backend).
    pub fn new_mem(cfg: PagerConfig) -> Result<Pager> {
        page::check_page_size(cfg.page_size)?;
        let header = Arc::new(page::header_page(cfg.page_size));
        Ok(Pager {
            page_size: cfg.page_size,
            state: Mutex::new(PagerState {
                pool: BufferPool::new(cfg.pool_pages),
                backend: Backend::Mem(vec![header]),
                free: BTreeSet::new(),
                page_count: 1,
                epoch: 0,
            }),
        })
    }

    /// Open (or create) a file-backed pager in `dir`, recovering the
    /// checkpoint journal against `committed_epoch` — the epoch recorded
    /// in the caller's last committed metadata snapshot (`0` for a fresh
    /// database).
    ///
    /// Journal classification:
    /// * empty/absent — nothing to do;
    /// * valid, epoch == committed — crash mid-apply: redo idempotently;
    /// * valid or torn, epoch > committed — crash before the metadata
    ///   commit: discard (the page file still holds the previous
    ///   checkpoint's bytes, and the write-ahead log was not reset);
    /// * torn at epoch == committed, or any journal older than committed —
    ///   corruption: fail with a typed error rather than serve bad pages.
    pub fn open_file(dir: &Path, cfg: PagerConfig, committed_epoch: u64) -> Result<Pager> {
        page::check_page_size(cfg.page_size)?;
        std::fs::create_dir_all(dir)
            .map_err(|e| CrowdError::Io(format!("pager: create dir {}: {e}", dir.display())))?;
        let db_path = dir.join(PAGES_FILE);
        let journal_path = dir.join(JOURNAL_FILE);
        let fresh = !db_path.exists();
        let db = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&db_path)
            .map_err(|e| CrowdError::Io(format!("pager: open {}: {e}", db_path.display())))?;
        let page_size = cfg.page_size;
        if fresh {
            write_at(&db, 0, &page::header_page(page_size))?;
            sync(&db)?;
            sync_dir(dir);
        } else {
            let mut header = vec![0u8; page_size];
            read_at(&db, 0, &mut header)?;
            let recorded = page::parse_header_page(&header)?;
            if recorded != page_size {
                return Err(CrowdError::Io(format!(
                    "pager: {} has page size {recorded}, configured {page_size}",
                    db_path.display()
                )));
            }
        }
        recover_journal(&db, &journal_path, page_size, committed_epoch)?;
        let len = db
            .metadata()
            .map_err(|e| CrowdError::Io(format!("pager: stat pages.db: {e}")))?
            .len();
        let page_count = (len / page_size as u64).max(1);
        Ok(Pager {
            page_size,
            state: Mutex::new(PagerState {
                pool: BufferPool::new(cfg.pool_pages),
                backend: Backend::File { db, journal_path },
                free: BTreeSet::new(),
                page_count,
                epoch: committed_epoch,
            }),
        })
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Whether pages persist to a file (durable sessions).
    pub fn is_file_backed(&self) -> bool {
        matches!(self.state.lock().backend, Backend::File { .. })
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PagerStats {
        self.state.lock().pool.stats
    }

    /// Number of dirty (unflushed) pages currently resident.
    pub fn dirty_count(&self) -> usize {
        self.state.lock().pool.dirty_count()
    }

    /// Epoch of the most recent checkpoint begun on this pager.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Allocation state (free page ids, total page count) for metadata
    /// snapshots.
    pub fn alloc_state(&self) -> (Vec<PageId>, u64) {
        let st = self.state.lock();
        (st.free.iter().copied().collect(), st.page_count)
    }

    /// Restore allocation state from a metadata snapshot.
    pub fn set_alloc_state(&self, free: Vec<PageId>, page_count: u64, epoch: u64) {
        let mut st = self.state.lock();
        st.free = free.into_iter().collect();
        st.page_count = page_count.max(1);
        st.epoch = epoch;
    }

    /// Allocate a page id (smallest freed id first, else extend).
    pub fn allocate(&self) -> PageId {
        let mut st = self.state.lock();
        if let Some(id) = st.free.iter().next().copied() {
            st.free.remove(&id);
            return id;
        }
        let id = st.page_count;
        st.page_count += 1;
        id
    }

    /// Return a page to the free list and drop it from the pool.
    pub fn free_page(&self, id: PageId) {
        debug_assert_ne!(id, HEADER_PAGE, "header page is never freed");
        let mut st = self.state.lock();
        st.pool.remove(id);
        st.free.insert(id);
    }

    /// Read a page through the pool.
    pub fn read(&self, id: PageId) -> Result<Arc<Vec<u8>>> {
        let mut st = self.state.lock();
        if let Some(data) = st.pool.get(id) {
            return Ok(data);
        }
        let data = match &st.backend {
            Backend::Mem(pages) => {
                let data = pages.get(id as usize).cloned().ok_or_else(|| {
                    CrowdError::Internal(format!("pager: read of unallocated page {id}"))
                })?;
                st.pool.stats.pages_read += 1;
                data
            }
            Backend::File { db, .. } => {
                let mut buf = vec![0u8; self.page_size];
                read_at(db, id * self.page_size as u64, &mut buf)?;
                st.pool.stats.pages_read += 1;
                Arc::new(buf)
            }
        };
        st.pool.install_clean(id, Arc::clone(&data));
        Ok(data)
    }

    /// Write a page (must be exactly `page_size` bytes). Mem backends
    /// write through; file backends mark the page dirty in the pool until
    /// the next checkpoint.
    pub fn write(&self, id: PageId, data: Vec<u8>) -> Result<()> {
        if data.len() != self.page_size {
            return Err(CrowdError::Internal(format!(
                "pager: page {id} write of {} bytes, page size {}",
                data.len(),
                self.page_size
            )));
        }
        let data = Arc::new(data);
        let mut st = self.state.lock();
        if id >= st.page_count {
            return Err(CrowdError::Internal(format!(
                "pager: write to unallocated page {id}"
            )));
        }
        match &mut st.backend {
            Backend::Mem(pages) => {
                if pages.len() <= id as usize {
                    pages.resize(id as usize + 1, Arc::new(vec![0u8; self.page_size]));
                }
                pages[id as usize] = Arc::clone(&data);
                st.pool.put(id, data, false);
            }
            Backend::File { .. } => {
                st.pool.put(id, data, true);
            }
        }
        Ok(())
    }

    /// First half of a checkpoint (file backends only): write every dirty
    /// page to the journal and fsync it. Dirty flags are *not* cleared —
    /// the caller must commit its metadata (recording the returned epoch)
    /// and then call [`Pager::complete_checkpoint`].
    pub fn begin_checkpoint(&self) -> Result<CheckpointPrep> {
        let mut st = self.state.lock();
        let Backend::File { journal_path, .. } = &st.backend else {
            return Err(CrowdError::Internal(
                "pager: checkpoint on a memory-backed pager".into(),
            ));
        };
        let journal_path = journal_path.clone();
        st.epoch += 1;
        let epoch = st.epoch;
        let pages = st.pool.dirty_pages();
        drop(st);

        let mut journal = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&journal_path)
            .map_err(|e| CrowdError::Io(format!("pager: open journal: {e}")))?;
        let mut buf = Vec::with_capacity(24 + pages.len() * (12 + self.page_size));
        buf.extend_from_slice(JOURNAL_MAGIC);
        buf.extend_from_slice(&epoch.to_le_bytes());
        buf.extend_from_slice(&(pages.len() as u64).to_le_bytes());
        for (id, data) in &pages {
            buf.extend_from_slice(&id.to_le_bytes());
            buf.extend_from_slice(&journal_crc(*id, data).to_le_bytes());
            buf.extend_from_slice(data);
        }
        journal
            .write_all(&buf)
            .map_err(|e| CrowdError::Io(format!("pager: write journal: {e}")))?;
        sync(&journal)?;
        Ok(CheckpointPrep { epoch, pages })
    }

    /// Second half of a checkpoint: apply the journaled pages to
    /// `pages.db`, fsync it, truncate the journal, and mark the flushed
    /// pages clean (evictable).
    pub fn complete_checkpoint(&self, prep: &CheckpointPrep) -> Result<()> {
        let st = self.state.lock();
        let Backend::File { db, journal_path } = &st.backend else {
            return Err(CrowdError::Internal(
                "pager: checkpoint on a memory-backed pager".into(),
            ));
        };
        let journal_path = journal_path.clone();
        for (id, data) in &prep.pages {
            write_at(db, *id * self.page_size as u64, data)?;
        }
        sync(db)?;
        drop(st);
        truncate_journal(&journal_path)?;
        let mut st = self.state.lock();
        st.pool.stats.pages_written += prep.pages.len() as u64;
        st.pool.mark_all_clean();
        Ok(())
    }
}

/// CRC-32 (IEEE, bitwise) over the page id and its contents. Journals
/// are small and written once per checkpoint, so the table-less
/// implementation is plenty fast and keeps this crate dependency-free.
fn journal_crc(id: PageId, data: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    let mut feed = |byte: u8| {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    };
    for b in id.to_le_bytes() {
        feed(b);
    }
    for &b in data {
        feed(b);
    }
    !crc
}

/// Outcome of parsing a checkpoint journal.
#[derive(Debug)]
enum JournalState {
    Empty,
    Valid {
        epoch: u64,
        pages: Vec<(PageId, Vec<u8>)>,
    },
    /// Torn or corrupt; `epoch` is present when the header was readable.
    Damaged {
        epoch: Option<u64>,
    },
}

fn parse_journal(path: &Path, page_size: usize) -> Result<JournalState> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(JournalState::Empty),
        Err(e) => return Err(CrowdError::Io(format!("pager: open journal: {e}"))),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| CrowdError::Io(format!("pager: read journal: {e}")))?;
    if bytes.is_empty() {
        return Ok(JournalState::Empty);
    }
    if bytes.len() < 24 || &bytes[..8] != JOURNAL_MAGIC {
        return Ok(JournalState::Damaged { epoch: None });
    }
    let epoch = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let count = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let entry_len = 12 + page_size;
    let mut pages = Vec::new();
    let mut off = 24usize;
    for _ in 0..count {
        if bytes.len() < off + entry_len {
            return Ok(JournalState::Damaged { epoch: Some(epoch) });
        }
        let id = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap());
        let data = &bytes[off + 12..off + entry_len];
        if journal_crc(id, data) != crc {
            return Ok(JournalState::Damaged { epoch: Some(epoch) });
        }
        pages.push((id, data.to_vec()));
        off += entry_len;
    }
    Ok(JournalState::Valid { epoch, pages })
}

fn recover_journal(
    db: &File,
    journal_path: &Path,
    page_size: usize,
    committed_epoch: u64,
) -> Result<()> {
    match parse_journal(journal_path, page_size)? {
        JournalState::Empty => Ok(()),
        JournalState::Valid { epoch, pages } if epoch == committed_epoch => {
            // Crash between the metadata commit and the page-file apply:
            // redo from full page images (idempotent).
            for (id, data) in &pages {
                write_at(db, *id * page_size as u64, data)?;
            }
            sync(db)?;
            truncate_journal(journal_path)
        }
        JournalState::Valid { epoch, .. } | JournalState::Damaged { epoch: Some(epoch) }
            if epoch > committed_epoch =>
        {
            // Crash before the metadata commit: the checkpoint never
            // happened. pages.db still holds the previous checkpoint.
            truncate_journal(journal_path)
        }
        JournalState::Damaged { epoch: None } => truncate_journal(journal_path),
        JournalState::Valid { epoch, .. } => Err(CrowdError::Io(format!(
            "pager: stale checkpoint journal (epoch {epoch}, committed {committed_epoch})"
        ))),
        JournalState::Damaged { epoch: Some(epoch) } => Err(CrowdError::Io(format!(
            "pager: checkpoint journal for committed epoch {epoch} is corrupt; \
             pages.db cannot be reconstructed"
        ))),
    }
}

fn truncate_journal(path: &Path) -> Result<()> {
    let f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
        .map_err(|e| CrowdError::Io(format!("pager: truncate journal: {e}")))?;
    sync(&f)
}

fn sync(f: &File) -> Result<()> {
    f.sync_all()
        .map_err(|e| CrowdError::Io(format!("pager: fsync: {e}")))
}

fn sync_dir(dir: &Path) {
    // Best-effort durability of file creation; failure is not fatal.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(unix)]
fn read_at(f: &File, offset: u64, buf: &mut [u8]) -> Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(buf, offset)
        .map_err(|e| CrowdError::Io(format!("pager: read at {offset}: {e}")))
}

#[cfg(unix)]
fn write_at(f: &File, offset: u64, buf: &[u8]) -> Result<()> {
    use std::os::unix::fs::FileExt;
    f.write_all_at(buf, offset)
        .map_err(|e| CrowdError::Io(format!("pager: write at {offset}: {e}")))
}

#[cfg(not(unix))]
compile_error!("crowddb-storage's pager requires a unix platform (positional file I/O)");

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(page_size: usize, pool: usize) -> PagerConfig {
        PagerConfig {
            page_size,
            pool_pages: pool,
        }
    }

    fn fill(p: &Pager, id: PageId, byte: u8) {
        let mut data = vec![byte; p.page_size()];
        data[0] = crate::page::kind::LEAF;
        p.write(id, data).unwrap();
    }

    #[test]
    fn mem_round_trip_and_alloc_order() {
        let p = Pager::new_mem(cfg(256, 0)).unwrap();
        let a = p.allocate();
        let b = p.allocate();
        assert_eq!((a, b), (1, 2), "page 0 is the header");
        fill(&p, a, 7);
        assert_eq!(p.read(a).unwrap()[5], 7);
        p.free_page(a);
        assert_eq!(p.allocate(), a, "smallest freed id is reused");
    }

    #[test]
    fn mem_bounded_pool_rereads_evicted_pages() {
        let p = Pager::new_mem(cfg(256, 2)).unwrap();
        let ids: Vec<PageId> = (0..8).map(|_| p.allocate()).collect();
        for (i, id) in ids.iter().enumerate() {
            fill(&p, *id, i as u8 + 1);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.read(*id).unwrap()[5], i as u8 + 1);
        }
        let stats = p.stats();
        assert!(stats.evictions > 0, "a 2-page pool must evict");
        assert!(stats.pages_read > 0);
    }

    #[test]
    fn file_checkpoint_flushes_only_dirty_pages() {
        let dir = tempdir();
        let p = Pager::open_file(&dir, cfg(256, 0), 0).unwrap();
        let a = p.allocate();
        let b = p.allocate();
        fill(&p, a, 1);
        fill(&p, b, 2);
        assert_eq!(p.dirty_count(), 2);
        let prep = p.begin_checkpoint().unwrap();
        assert_eq!(prep.pages_written(), 2);
        p.complete_checkpoint(&prep).unwrap();
        assert_eq!(p.dirty_count(), 0);
        // One more small write: the next checkpoint flushes just it.
        fill(&p, a, 3);
        let prep = p.begin_checkpoint().unwrap();
        assert_eq!(prep.pages_written(), 1);
        p.complete_checkpoint(&prep).unwrap();
        assert_eq!(p.stats().pages_written, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_reopen_reads_flushed_pages() {
        let dir = tempdir();
        {
            let p = Pager::open_file(&dir, cfg(256, 0), 0).unwrap();
            let a = p.allocate();
            fill(&p, a, 9);
            let prep = p.begin_checkpoint().unwrap();
            p.complete_checkpoint(&prep).unwrap();
            assert_eq!(prep.epoch, 1);
        }
        let p = Pager::open_file(&dir, cfg(256, 0), 1).unwrap();
        p.set_alloc_state(vec![], 2, 1);
        assert_eq!(p.read(1).unwrap()[5], 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_discarded_when_crash_precedes_commit() {
        let dir = tempdir();
        {
            let p = Pager::open_file(&dir, cfg(256, 0), 0).unwrap();
            let a = p.allocate();
            fill(&p, a, 1);
            // Journal written, metadata never committed (no complete).
            let _prep = p.begin_checkpoint().unwrap();
        }
        // Reopen with committed epoch 0: journal (epoch 1) is discarded.
        let p = Pager::open_file(&dir, cfg(256, 0), 0).unwrap();
        assert_eq!(std::fs::metadata(dir.join(JOURNAL_FILE)).unwrap().len(), 0);
        drop(p);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_replayed_when_commit_preceded_crash() {
        let dir = tempdir();
        {
            let p = Pager::open_file(&dir, cfg(256, 0), 0).unwrap();
            let a = p.allocate();
            fill(&p, a, 5);
            let _prep = p.begin_checkpoint().unwrap();
            // Metadata committed (epoch 1) but apply crashed: journal left.
        }
        let p = Pager::open_file(&dir, cfg(256, 0), 1).unwrap();
        p.set_alloc_state(vec![], 2, 1);
        assert_eq!(p.read(1).unwrap()[5], 5, "journal redo applied");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_journal_for_committed_epoch_fails_typed() {
        let dir = tempdir();
        {
            let p = Pager::open_file(&dir, cfg(256, 0), 0).unwrap();
            let a = p.allocate();
            fill(&p, a, 5);
            let _prep = p.begin_checkpoint().unwrap();
        }
        // Corrupt one payload byte: epoch still reads as 1.
        let path = dir.join(JOURNAL_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = Pager::open_file(&dir, cfg(256, 0), 1).unwrap_err();
        assert_eq!(err.category(), "io");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_page_size_on_reopen_rejected() {
        let dir = tempdir();
        drop(Pager::open_file(&dir, cfg(256, 0), 0).unwrap());
        let err = Pager::open_file(&dir, cfg(512, 0), 0).unwrap_err();
        assert_eq!(err.category(), "io");
        std::fs::remove_dir_all(&dir).ok();
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "crowddb-pager-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
