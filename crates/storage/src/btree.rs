//! A paged B-tree mapping byte-string keys to byte-string values.
//!
//! One tree backs each table's primary storage (key = `TupleId` as
//! big-endian bytes, value = the codec-encoded row) and each secondary
//! index entry set (key = encoded index values ‖ tid, empty value).
//! Nodes are whole-page encoded/decoded; values larger than
//! `page_size / 8` spill to overflow-page chains; keys are capped at
//! `page_size / 4` (a typed [`CrowdError::Constraint`] otherwise) so a
//! node always holds at least two entries and splits terminate.
//!
//! The tree is split-only: `remove` deletes from the leaf without
//! rebalancing, which keeps the structure a deterministic function of the
//! operation sequence (no merge heuristics) at the cost of slack after
//! heavy deletion — acceptable for CrowdDB's insert-mostly crowd tables.

use std::cmp::Ordering;

use bytes::Bytes;

use crowddb_common::{CrowdError, Result};

use crate::codec;
use crate::page::{kind, PageId};
use crate::pager::Pager;

/// How encoded keys of a tree compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyCmp {
    /// Plain memcmp. Primary trees use this: `TupleId` encoded big-endian
    /// makes byte order coincide with numeric order.
    Bytes,
    /// Index-entry order: the key is codec-encoded `Value`s followed by
    /// an 8-byte big-endian tid — every compared key must carry the tid
    /// suffix (seek targets use tid 0). Values compare by
    /// `Value::sort_cmp` component-wise (missing values first), shorter
    /// value lists first, ties broken by tid.
    IndexEntry,
}

impl KeyCmp {
    pub fn cmp(&self, a: &[u8], b: &[u8]) -> Ordering {
        match self {
            KeyCmp::Bytes => a.cmp(b),
            KeyCmp::IndexEntry => cmp_index_entries(a, b),
        }
    }
}

/// Compare two index-entry keys (encoded values ‖ 8-byte tid).
fn cmp_index_entries(a: &[u8], b: &[u8]) -> Ordering {
    let (av, atid) = split_index_entry(a);
    let (bv, btid) = split_index_entry(b);
    let mut ab = Bytes::copy_from_slice(av);
    let mut bb = Bytes::copy_from_slice(bv);
    loop {
        match (ab.is_empty(), bb.is_empty()) {
            (true, true) => return atid.cmp(btid),
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {}
        }
        let (x, y) = match (codec::decode_value(&mut ab), codec::decode_value(&mut bb)) {
            (Ok(x), Ok(y)) => (x, y),
            // Unreachable for keys this module encoded; fall back to a
            // total order rather than panic on foreign bytes.
            _ => return a.cmp(b),
        };
        match x.sort_cmp(&y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
}

/// Split an index-entry key into (encoded values, tid bytes).
fn split_index_entry(k: &[u8]) -> (&[u8], &[u8]) {
    if k.len() < 8 {
        (k, &[])
    } else {
        k.split_at(k.len() - 8)
    }
}

/// Largest key accepted by [`BTree::insert`].
pub fn max_key_len(page_size: usize) -> usize {
    page_size / 4
}

/// Largest value stored inline in a leaf; longer values spill to
/// overflow chains.
fn max_inline_val(page_size: usize) -> usize {
    page_size / 8
}

#[derive(Debug, Clone)]
enum Val {
    Inline(Vec<u8>),
    Overflow { first: PageId, total_len: u64 },
}

#[derive(Debug)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, Val)>,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
}

const OVERFLOW_FLAG: u32 = 1 << 31;

fn encode_node(node: &Node, page_size: usize) -> Option<Vec<u8>> {
    let mut buf = Vec::with_capacity(page_size);
    match node {
        Node::Leaf { entries } => {
            buf.push(kind::LEAF);
            buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
            for (k, v) in entries {
                buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                match v {
                    Val::Inline(bytes) => {
                        buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                        buf.extend_from_slice(k);
                        buf.extend_from_slice(bytes);
                    }
                    Val::Overflow { first, total_len } => {
                        buf.extend_from_slice(&(16u32 | OVERFLOW_FLAG).to_le_bytes());
                        buf.extend_from_slice(k);
                        buf.extend_from_slice(&first.to_le_bytes());
                        buf.extend_from_slice(&total_len.to_le_bytes());
                    }
                }
            }
        }
        Node::Internal { keys, children } => {
            debug_assert_eq!(children.len(), keys.len() + 1);
            buf.push(kind::INTERNAL);
            buf.extend_from_slice(&(keys.len() as u16).to_le_bytes());
            buf.extend_from_slice(&children[0].to_le_bytes());
            for (k, child) in keys.iter().zip(&children[1..]) {
                buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                buf.extend_from_slice(k);
                buf.extend_from_slice(&child.to_le_bytes());
            }
        }
    }
    if buf.len() > page_size {
        return None;
    }
    buf.resize(page_size, 0);
    Some(buf)
}

fn decode_node(data: &[u8]) -> Result<Node> {
    let corrupt = |what: &str| CrowdError::Internal(format!("btree: corrupt node ({what})"));
    let tag = *data.first().ok_or_else(|| corrupt("empty page"))?;
    let mut off = 3usize;
    let take = |off: &mut usize, n: usize| -> Result<&[u8]> {
        let s = data
            .get(*off..*off + n)
            .ok_or_else(|| corrupt("truncated"))?;
        *off += n;
        Ok(s)
    };
    let n = u16::from_le_bytes(
        data.get(1..3)
            .ok_or_else(|| corrupt("short"))?
            .try_into()
            .unwrap(),
    );
    match tag {
        kind::LEAF => {
            let mut entries = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let klen = u16::from_le_bytes(take(&mut off, 2)?.try_into().unwrap()) as usize;
                let vword = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap());
                let key = take(&mut off, klen)?.to_vec();
                let val = if vword & OVERFLOW_FLAG != 0 {
                    let first = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
                    let total_len = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
                    Val::Overflow { first, total_len }
                } else {
                    Val::Inline(take(&mut off, vword as usize)?.to_vec())
                };
                entries.push((key, val));
            }
            Ok(Node::Leaf { entries })
        }
        kind::INTERNAL => {
            let mut children = Vec::with_capacity(n as usize + 1);
            children.push(u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap()));
            let mut keys = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let klen = u16::from_le_bytes(take(&mut off, 2)?.try_into().unwrap()) as usize;
                keys.push(take(&mut off, klen)?.to_vec());
                children.push(u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap()));
            }
            Ok(Node::Internal { keys, children })
        }
        other => Err(corrupt(&format!("unexpected page kind {other}"))),
    }
}

/// Write `data` as an overflow chain, returning the first page id.
fn write_overflow(pager: &Pager, data: &[u8]) -> Result<PageId> {
    let cap = pager.page_size() - 13; // kind + next(8) + len(4)
    let chunks: Vec<&[u8]> = if data.is_empty() {
        vec![&[]]
    } else {
        data.chunks(cap).collect()
    };
    let ids: Vec<PageId> = chunks.iter().map(|_| pager.allocate()).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        let next = ids.get(i + 1).copied().unwrap_or(0);
        let mut page = Vec::with_capacity(pager.page_size());
        page.push(kind::OVERFLOW);
        page.extend_from_slice(&next.to_le_bytes());
        page.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        page.extend_from_slice(chunk);
        page.resize(pager.page_size(), 0);
        pager.write(ids[i], page)?;
    }
    Ok(ids[0])
}

fn read_overflow(pager: &Pager, first: PageId, total_len: u64) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(total_len as usize);
    let mut next = first;
    while next != 0 {
        let page = pager.read(next)?;
        if page.first() != Some(&kind::OVERFLOW) || page.len() < 13 {
            return Err(CrowdError::Internal(format!(
                "btree: page {next} is not an overflow page"
            )));
        }
        next = u64::from_le_bytes(page[1..9].try_into().unwrap());
        let len = u32::from_le_bytes(page[9..13].try_into().unwrap()) as usize;
        out.extend_from_slice(page.get(13..13 + len).ok_or_else(|| {
            CrowdError::Internal("btree: overflow chunk length out of range".into())
        })?);
    }
    if out.len() as u64 != total_len {
        return Err(CrowdError::Internal(format!(
            "btree: overflow chain length {} != recorded {total_len}",
            out.len()
        )));
    }
    Ok(out)
}

fn free_overflow(pager: &Pager, first: PageId) -> Result<()> {
    let mut next = first;
    while next != 0 {
        let page = pager.read(next)?;
        let id = next;
        next = u64::from_le_bytes(
            page.get(1..9)
                .ok_or_else(|| CrowdError::Internal("btree: short overflow page".into()))?
                .try_into()
                .unwrap(),
        );
        pager.free_page(id);
    }
    Ok(())
}

fn resolve_val(pager: &Pager, val: &Val) -> Result<Vec<u8>> {
    match val {
        Val::Inline(bytes) => Ok(bytes.clone()),
        Val::Overflow { first, total_len } => read_overflow(pager, *first, *total_len),
    }
}

/// A B-tree rooted at a page. The struct is cheap metadata (root id +
/// comparator); all node state lives in the pager.
#[derive(Debug, Clone)]
pub struct BTree {
    root: PageId,
    cmp: KeyCmp,
}

impl BTree {
    /// Allocate an empty tree (a single empty leaf).
    pub fn create(pager: &Pager, cmp: KeyCmp) -> Result<BTree> {
        let root = pager.allocate();
        let page = encode_node(&Node::Leaf { entries: vec![] }, pager.page_size())
            .expect("empty leaf always fits");
        pager.write(root, page)?;
        Ok(BTree { root, cmp })
    }

    /// Re-attach to an existing tree by root page id.
    pub fn open(root: PageId, cmp: KeyCmp) -> BTree {
        BTree { root, cmp }
    }

    /// The current root page id (persist this in table metadata).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// The comparator this tree was opened with.
    pub fn key_cmp(&self) -> KeyCmp {
        self.cmp
    }

    /// Insert or replace (`upsert`) a key.
    pub fn insert(&mut self, pager: &Pager, key: &[u8], value: &[u8]) -> Result<()> {
        if key.len() > max_key_len(pager.page_size()) {
            return Err(CrowdError::Constraint(format!(
                "index key of {} bytes exceeds the {}-byte limit for page size {}",
                key.len(),
                max_key_len(pager.page_size()),
                pager.page_size()
            )));
        }
        let val = if value.len() > max_inline_val(pager.page_size()) {
            Val::Overflow {
                first: write_overflow(pager, value)?,
                total_len: value.len() as u64,
            }
        } else {
            Val::Inline(value.to_vec())
        };
        if let Some((promoted, right)) = self.insert_rec(pager, self.root, key, val)? {
            let new_root = pager.allocate();
            let node = Node::Internal {
                keys: vec![promoted],
                children: vec![self.root, right],
            };
            let page = encode_node(&node, pager.page_size())
                .expect("two-child root always fits (key is length-capped)");
            pager.write(new_root, page)?;
            self.root = new_root;
        }
        Ok(())
    }

    fn insert_rec(
        &self,
        pager: &Pager,
        page_id: PageId,
        key: &[u8],
        val: Val,
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        let node = decode_node(&pager.read(page_id)?)?;
        match node {
            Node::Leaf { mut entries } => {
                let pos = entries.partition_point(|(k, _)| self.cmp.cmp(k, key) == Ordering::Less);
                if entries
                    .get(pos)
                    .is_some_and(|(k, _)| self.cmp.cmp(k, key) == Ordering::Equal)
                {
                    if let Val::Overflow { first, .. } = entries[pos].1 {
                        free_overflow(pager, first)?;
                    }
                    entries[pos].1 = val;
                } else {
                    entries.insert(pos, (key.to_vec(), val));
                }
                self.write_split(pager, page_id, Node::Leaf { entries })
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| self.cmp.cmp(k, key) != Ordering::Greater);
                if let Some((promoted, right)) = self.insert_rec(pager, children[idx], key, val)? {
                    keys.insert(idx, promoted);
                    children.insert(idx + 1, right);
                    self.write_split(pager, page_id, Node::Internal { keys, children })
                } else {
                    Ok(None)
                }
            }
        }
    }

    /// Write a node back, splitting it if it no longer fits the page.
    fn write_split(
        &self,
        pager: &Pager,
        page_id: PageId,
        node: Node,
    ) -> Result<Option<(Vec<u8>, PageId)>> {
        if let Some(page) = encode_node(&node, pager.page_size()) {
            pager.write(page_id, page)?;
            return Ok(None);
        }
        let page_size = pager.page_size();
        let (left, promoted, right) = match node {
            Node::Leaf { mut entries } => {
                debug_assert!(entries.len() >= 2, "length caps guarantee 2 entries fit");
                let right = entries.split_off(entries.len() / 2);
                let promoted = right[0].0.clone();
                (
                    Node::Leaf { entries },
                    promoted,
                    Node::Leaf { entries: right },
                )
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let mid = keys.len() / 2;
                let promoted = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // the promoted key moves up, not right
                let right_children = children.split_off(mid + 1);
                (
                    Node::Internal { keys, children },
                    promoted,
                    Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                )
            }
        };
        let right_id = pager.allocate();
        let left_page = encode_node(&left, page_size)
            .ok_or_else(|| CrowdError::Internal("btree: left half does not fit".into()))?;
        let right_page = encode_node(&right, page_size)
            .ok_or_else(|| CrowdError::Internal("btree: right half does not fit".into()))?;
        pager.write(page_id, left_page)?;
        pager.write(right_id, right_page)?;
        Ok(Some((promoted, right_id)))
    }

    /// Exact-key lookup.
    pub fn get(&self, pager: &Pager, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut page_id = self.root;
        loop {
            match decode_node(&pager.read(page_id)?)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| self.cmp.cmp(k, key) != Ordering::Greater);
                    page_id = children[idx];
                }
                Node::Leaf { entries } => {
                    let pos =
                        entries.partition_point(|(k, _)| self.cmp.cmp(k, key) == Ordering::Less);
                    return match entries.get(pos) {
                        Some((k, v)) if self.cmp.cmp(k, key) == Ordering::Equal => {
                            Ok(Some(resolve_val(pager, v)?))
                        }
                        _ => Ok(None),
                    };
                }
            }
        }
    }

    /// Remove a key. Returns whether it was present. Leaves are never
    /// merged (split-only policy).
    pub fn remove(&mut self, pager: &Pager, key: &[u8]) -> Result<bool> {
        let mut page_id = self.root;
        loop {
            match decode_node(&pager.read(page_id)?)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| self.cmp.cmp(k, key) != Ordering::Greater);
                    page_id = children[idx];
                }
                Node::Leaf { mut entries } => {
                    let pos =
                        entries.partition_point(|(k, _)| self.cmp.cmp(k, key) == Ordering::Less);
                    if entries
                        .get(pos)
                        .is_none_or(|(k, _)| self.cmp.cmp(k, key) != Ordering::Equal)
                    {
                        return Ok(false);
                    }
                    let (_, val) = entries.remove(pos);
                    if let Val::Overflow { first, .. } = val {
                        free_overflow(pager, first)?;
                    }
                    let page = encode_node(&Node::Leaf { entries }, pager.page_size())
                        .expect("a shrunk leaf always fits");
                    pager.write(page_id, page)?;
                    return Ok(true);
                }
            }
        }
    }

    /// A cursor positioned before the first entry.
    pub fn cursor_first(&self, pager: &Pager) -> Result<BTreeCursor> {
        let mut cur = BTreeCursor::new();
        cur.descend_leftmost(pager, self.root)?;
        Ok(cur)
    }

    /// A cursor positioned before the first entry whose key is `>= key`.
    pub fn cursor_seek(&self, pager: &Pager, key: &[u8]) -> Result<BTreeCursor> {
        let mut cur = BTreeCursor::new();
        let mut page_id = self.root;
        loop {
            match decode_node(&pager.read(page_id)?)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| self.cmp.cmp(k, key) != Ordering::Greater);
                    cur.stack.push((page_id, idx));
                    page_id = children[idx];
                }
                Node::Leaf { entries } => {
                    cur.pos =
                        entries.partition_point(|(k, _)| self.cmp.cmp(k, key) == Ordering::Less);
                    cur.leaf = entries;
                    return Ok(cur);
                }
            }
        }
    }

    /// Free every page of the tree (nodes and overflow chains) and leave
    /// a fresh empty root in place.
    pub fn clear(&mut self, pager: &Pager) -> Result<()> {
        free_tree(pager, self.root)?;
        let fresh = BTree::create(pager, self.cmp)?;
        self.root = fresh.root;
        Ok(())
    }

    /// Free every page of the tree, consuming it (index dropped).
    pub fn free(self, pager: &Pager) -> Result<()> {
        free_tree(pager, self.root)
    }
}

fn free_tree(pager: &Pager, page_id: PageId) -> Result<()> {
    match decode_node(&pager.read(page_id)?)? {
        Node::Internal { children, .. } => {
            for child in children {
                free_tree(pager, child)?;
            }
        }
        Node::Leaf { entries } => {
            for (_, val) in entries {
                if let Val::Overflow { first, .. } = val {
                    free_overflow(pager, first)?;
                }
            }
        }
    }
    pager.free_page(page_id);
    Ok(())
}

/// Forward iterator over a [`BTree`]: yields `(key, value)` in key order.
/// The tree must not be mutated while a cursor is open (callers
/// materialize under the table lock).
#[derive(Debug)]
pub struct BTreeCursor {
    /// Path of internal pages and the child index descended at each.
    stack: Vec<(PageId, usize)>,
    leaf: Vec<(Vec<u8>, Val)>,
    pos: usize,
}

impl BTreeCursor {
    fn new() -> BTreeCursor {
        BTreeCursor {
            stack: Vec::new(),
            leaf: Vec::new(),
            pos: 0,
        }
    }

    fn descend_leftmost(&mut self, pager: &Pager, mut page_id: PageId) -> Result<()> {
        loop {
            match decode_node(&pager.read(page_id)?)? {
                Node::Internal { children, .. } => {
                    self.stack.push((page_id, 0));
                    page_id = children[0];
                }
                Node::Leaf { entries } => {
                    self.leaf = entries;
                    self.pos = 0;
                    return Ok(());
                }
            }
        }
    }

    /// The next entry in key order, or `None` at the end.
    pub fn next(&mut self, pager: &Pager) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        loop {
            if self.pos < self.leaf.len() {
                let (key, val) = &self.leaf[self.pos];
                let out = (key.clone(), resolve_val(pager, val)?);
                self.pos += 1;
                return Ok(Some(out));
            }
            // Leaf exhausted: climb until an internal node has a further
            // child, then descend its leftmost path.
            loop {
                let Some((page_id, idx)) = self.stack.pop() else {
                    return Ok(None);
                };
                let Node::Internal { children, .. } = decode_node(&pager.read(page_id)?)? else {
                    return Err(CrowdError::Internal(
                        "btree: cursor stack entry is not internal".into(),
                    ));
                };
                if idx + 1 < children.len() {
                    self.stack.push((page_id, idx + 1));
                    self.descend_leftmost(pager, children[idx + 1])?;
                    break;
                }
            }
        }
    }

    /// Peek at the next key without consuming it (no overflow I/O).
    pub fn peek_key(&self) -> Option<&[u8]> {
        self.leaf.get(self.pos).map(|(k, _)| k.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PagerConfig;

    fn pager() -> Pager {
        Pager::new_mem(PagerConfig {
            page_size: 256,
            pool_pages: 0,
        })
        .unwrap()
    }

    fn key(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_roundtrip_with_splits() {
        let p = pager();
        let mut t = BTree::create(&p, KeyCmp::Bytes).unwrap();
        // Insert in a scrambled but deterministic order.
        for i in 0..500u64 {
            let k = (i * 7919) % 500;
            t.insert(&p, &key(k), format!("val-{k}").as_bytes())
                .unwrap();
        }
        for i in 0..500u64 {
            assert_eq!(
                t.get(&p, &key(i)).unwrap().as_deref(),
                Some(format!("val-{i}").as_bytes())
            );
        }
        assert_eq!(t.get(&p, &key(500)).unwrap(), None);
    }

    #[test]
    fn upsert_replaces_in_place() {
        let p = pager();
        let mut t = BTree::create(&p, KeyCmp::Bytes).unwrap();
        t.insert(&p, &key(1), b"old").unwrap();
        t.insert(&p, &key(1), b"new").unwrap();
        assert_eq!(t.get(&p, &key(1)).unwrap().as_deref(), Some(&b"new"[..]));
        let mut cur = t.cursor_first(&p).unwrap();
        let mut n = 0;
        while cur.next(&p).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 1);
    }

    #[test]
    fn cursor_yields_key_order() {
        let p = pager();
        let mut t = BTree::create(&p, KeyCmp::Bytes).unwrap();
        for i in (0..200u64).rev() {
            t.insert(&p, &key(i), b"x").unwrap();
        }
        let mut cur = t.cursor_first(&p).unwrap();
        let mut seen = Vec::new();
        while let Some((k, _)) = cur.next(&p).unwrap() {
            seen.push(u64::from_be_bytes(k.try_into().unwrap()));
        }
        assert_eq!(seen, (0..200u64).collect::<Vec<_>>());
    }

    #[test]
    fn seek_positions_at_lower_bound() {
        let p = pager();
        let mut t = BTree::create(&p, KeyCmp::Bytes).unwrap();
        for i in 0..100u64 {
            t.insert(&p, &key(i * 2), b"x").unwrap();
        }
        let mut cur = t.cursor_seek(&p, &key(31)).unwrap();
        let (k, _) = cur.next(&p).unwrap().unwrap();
        assert_eq!(u64::from_be_bytes(k.try_into().unwrap()), 32);
    }

    #[test]
    fn remove_deletes_and_tolerates_missing() {
        let p = pager();
        let mut t = BTree::create(&p, KeyCmp::Bytes).unwrap();
        for i in 0..100u64 {
            t.insert(&p, &key(i), b"x").unwrap();
        }
        assert!(t.remove(&p, &key(42)).unwrap());
        assert!(!t.remove(&p, &key(42)).unwrap());
        assert_eq!(t.get(&p, &key(42)).unwrap(), None);
        assert_eq!(t.get(&p, &key(41)).unwrap().as_deref(), Some(&b"x"[..]));
        let mut cur = t.cursor_first(&p).unwrap();
        let mut n = 0;
        while cur.next(&p).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 99);
    }

    #[test]
    fn large_values_spill_to_overflow_chains() {
        let p = pager();
        let mut t = BTree::create(&p, KeyCmp::Bytes).unwrap();
        let big: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        t.insert(&p, &key(7), &big).unwrap();
        assert_eq!(t.get(&p, &key(7)).unwrap().as_deref(), Some(&big[..]));
        // Replacing frees the old chain (after writing the new one, so
        // the steady state holds two chains' worth of pages); page count
        // must not grow unboundedly across repeated upserts of the key.
        t.insert(&p, &key(7), &big).unwrap();
        let (_, before) = p.alloc_state();
        for _ in 0..10 {
            t.insert(&p, &key(7), &big).unwrap();
        }
        let (_, after) = p.alloc_state();
        assert_eq!(before, after, "freed overflow pages are reused");
        assert_eq!(t.get(&p, &key(7)).unwrap().as_deref(), Some(&big[..]));
    }

    #[test]
    fn oversized_key_is_a_typed_constraint_error() {
        let p = pager();
        let mut t = BTree::create(&p, KeyCmp::Bytes).unwrap();
        let huge_key = vec![0u8; 256];
        let err = t.insert(&p, &huge_key, b"x").unwrap_err();
        assert_eq!(err.category(), "constraint");
    }

    #[test]
    fn clear_frees_all_pages() {
        let p = pager();
        let mut t = BTree::create(&p, KeyCmp::Bytes).unwrap();
        for i in 0..200u64 {
            t.insert(&p, &key(i), b"some value").unwrap();
        }
        t.clear(&p).unwrap();
        assert_eq!(t.get(&p, &key(0)).unwrap(), None);
        // A fresh insert reuses freed pages rather than extending.
        let (free_before, count_before) = p.alloc_state();
        assert!(!free_before.is_empty());
        t.insert(&p, &key(0), b"x").unwrap();
        let (_, count_after) = p.alloc_state();
        assert_eq!(count_before, count_after);
    }

    #[test]
    fn index_entry_order_missing_first_then_value_then_tid() {
        use crowddb_common::Value;
        let entry = |v: &Value, tid: u64| {
            let mut buf = bytes::BytesMut::new();
            codec::encode_value(&mut buf, v);
            let mut k = buf.to_vec();
            k.extend_from_slice(&tid.to_be_bytes());
            k
        };
        let cmp = KeyCmp::IndexEntry;
        let null = entry(&Value::Null, 5);
        let cnull = entry(&Value::CNull, 5);
        let one = entry(&Value::Int(1), 5);
        let two = entry(&Value::Int(2), 1);
        assert_eq!(cmp.cmp(&null, &one), Ordering::Less, "missing sorts first");
        assert_eq!(cmp.cmp(&cnull, &one), Ordering::Less);
        assert_eq!(cmp.cmp(&one, &two), Ordering::Less);
        let one_t9 = entry(&Value::Int(1), 9);
        assert_eq!(cmp.cmp(&one, &one_t9), Ordering::Less, "tid breaks ties");
        // A seek target is (prefix values, tid 0): it sorts at-or-before
        // every full entry sharing the prefix, including tid 0 itself.
        assert_ne!(cmp.cmp(&entry(&Value::Int(1), 0), &one), Ordering::Greater);
        assert_eq!(
            cmp.cmp(&entry(&Value::Int(1), 0), &entry(&Value::Int(1), 0)),
            Ordering::Equal
        );
    }
}
