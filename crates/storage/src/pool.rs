//! The buffer pool: an in-memory cache of fixed-size pages with a
//! deterministic LRU eviction policy.
//!
//! The pool is a *no-steal* cache: dirty pages (written since the last
//! checkpoint flush) are never evicted — they stay resident until a
//! checkpoint writes them to stable storage and marks them clean. Only
//! clean pages are evictable, and evicting a clean page is a pure drop
//! (the backend already holds identical bytes), so pool size can never
//! affect query results — only hit/miss counters. Eviction order is
//! least-recently-used driven by a logical access counter, which makes
//! the cache state itself a deterministic function of the access
//! sequence.

use std::collections::HashMap;
use std::sync::Arc;

use crate::page::PageId;

/// Cumulative pager/pool counters. Monotonic within a session; snapshot
/// and diff them to attribute work to an operator or a checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagerStats {
    /// Pages fetched from the backend (pool misses that did I/O).
    pub pages_read: u64,
    /// Pages flushed to stable storage by checkpoints.
    pub pages_written: u64,
    /// Page requests answered from the pool.
    pub pool_hits: u64,
    /// Page requests that missed the pool.
    pub pool_misses: u64,
    /// Clean pages dropped to respect the pool budget.
    pub evictions: u64,
}

impl PagerStats {
    /// Component-wise difference (`self` must be the later snapshot).
    pub fn diff(&self, earlier: &PagerStats) -> PagerStats {
        PagerStats {
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
            pool_hits: self.pool_hits - earlier.pool_hits,
            pool_misses: self.pool_misses - earlier.pool_misses,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

#[derive(Debug)]
struct Frame {
    data: Arc<Vec<u8>>,
    dirty: bool,
    last_use: u64,
}

/// The page cache. Owned by the pager behind its lock; all methods are
/// plain `&mut self`.
#[derive(Debug)]
pub struct BufferPool {
    frames: HashMap<PageId, Frame>,
    /// Maximum resident pages; `0` = unbounded. Dirty pages are exempt
    /// (no-steal), so the pool may transiently exceed the budget when
    /// more than `budget` pages are dirty between checkpoints.
    budget: usize,
    tick: u64,
    /// Shared counters (the pager also bumps `pages_read`/`pages_written`
    /// here so one snapshot covers the whole storage engine).
    pub stats: PagerStats,
}

impl BufferPool {
    /// A pool holding at most `budget` pages (`0` = unbounded).
    pub fn new(budget: usize) -> BufferPool {
        BufferPool {
            frames: HashMap::new(),
            budget,
            tick: 0,
            stats: PagerStats::default(),
        }
    }

    /// The configured budget (`0` = unbounded).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Look up a resident page, counting a hit or miss.
    pub fn get(&mut self, id: PageId) -> Option<Arc<Vec<u8>>> {
        self.tick += 1;
        match self.frames.get_mut(&id) {
            Some(f) => {
                f.last_use = self.tick;
                self.stats.pool_hits += 1;
                Some(Arc::clone(&f.data))
            }
            None => {
                self.stats.pool_misses += 1;
                None
            }
        }
    }

    /// Install a page just fetched from the backend (clean), evicting if
    /// over budget.
    pub fn install_clean(&mut self, id: PageId, data: Arc<Vec<u8>>) {
        self.tick += 1;
        self.frames.insert(
            id,
            Frame {
                data,
                dirty: false,
                last_use: self.tick,
            },
        );
        self.evict_over_budget();
    }

    /// Install or overwrite a page with fresh contents. `dirty` marks it
    /// pending a checkpoint flush (file-backed pagers); write-through
    /// backends pass `false` because the backend was updated in place.
    pub fn put(&mut self, id: PageId, data: Arc<Vec<u8>>, dirty: bool) {
        self.tick += 1;
        self.frames.insert(
            id,
            Frame {
                data,
                dirty,
                last_use: self.tick,
            },
        );
        self.evict_over_budget();
    }

    /// Drop a page from the cache entirely (page freed).
    pub fn remove(&mut self, id: PageId) {
        self.frames.remove(&id);
    }

    /// All dirty pages, sorted by page id (deterministic flush order).
    pub fn dirty_pages(&self) -> Vec<(PageId, Arc<Vec<u8>>)> {
        let mut out: Vec<(PageId, Arc<Vec<u8>>)> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, f)| (*id, Arc::clone(&f.data)))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Number of dirty pages currently resident.
    pub fn dirty_count(&self) -> usize {
        self.frames.values().filter(|f| f.dirty).count()
    }

    /// Number of resident pages (clean + dirty).
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// Mark every dirty page clean (checkpoint flush completed), making
    /// them evictable again, then shrink back under budget.
    pub fn mark_all_clean(&mut self) {
        for f in self.frames.values_mut() {
            f.dirty = false;
        }
        self.evict_over_budget();
    }

    /// Evict least-recently-used *clean* pages while over budget.
    fn evict_over_budget(&mut self) {
        if self.budget == 0 {
            return;
        }
        while self.frames.len() > self.budget {
            let victim = self
                .frames
                .iter()
                .filter(|(_, f)| !f.dirty)
                .min_by_key(|(id, f)| (f.last_use, **id))
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    self.frames.remove(&id);
                    self.stats.evictions += 1;
                }
                // Everything resident is dirty: no-steal forbids eviction.
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 16])
    }

    #[test]
    fn hit_miss_counting() {
        let mut p = BufferPool::new(0);
        assert!(p.get(1).is_none());
        p.install_clean(1, page(1));
        assert!(p.get(1).is_some());
        assert_eq!(p.stats.pool_hits, 1);
        assert_eq!(p.stats.pool_misses, 1);
    }

    #[test]
    fn lru_eviction_of_clean_pages() {
        let mut p = BufferPool::new(2);
        p.install_clean(1, page(1));
        p.install_clean(2, page(2));
        p.get(1); // 2 is now least-recently-used
        p.install_clean(3, page(3));
        assert_eq!(p.resident(), 2);
        assert!(p.get(2).is_none(), "LRU clean page evicted");
        assert!(p.get(1).is_some());
        assert_eq!(p.stats.evictions, 1);
    }

    #[test]
    fn dirty_pages_are_never_evicted() {
        let mut p = BufferPool::new(1);
        p.put(1, page(1), true);
        p.put(2, page(2), true);
        p.install_clean(3, page(3));
        // Clean page 3 is the only candidate; dirty 1 and 2 stay.
        assert_eq!(p.dirty_count(), 2);
        assert!(p.get(1).is_some());
        assert!(p.get(2).is_some());
    }

    #[test]
    fn mark_all_clean_enables_eviction() {
        let mut p = BufferPool::new(1);
        p.put(1, page(1), true);
        p.put(2, page(2), true);
        assert_eq!(p.resident(), 2);
        p.mark_all_clean();
        assert_eq!(p.resident(), 1);
        assert_eq!(p.dirty_count(), 0);
    }

    #[test]
    fn dirty_pages_sorted_by_id() {
        let mut p = BufferPool::new(0);
        p.put(5, page(5), true);
        p.put(1, page(1), true);
        p.put(3, page(3), false);
        let ids: Vec<PageId> = p.dirty_pages().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, vec![1, 5]);
    }

    #[test]
    fn unbounded_pool_never_evicts() {
        let mut p = BufferPool::new(0);
        for i in 0..100 {
            p.install_clean(i, page(i as u8));
        }
        assert_eq!(p.resident(), 100);
        assert_eq!(p.stats.evictions, 0);
    }
}
