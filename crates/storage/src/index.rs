//! Secondary indexes over the paged B-tree.
//!
//! An index entry is a B-tree key of the codec-encoded index-column
//! values followed by the owning tuple's id as 8 big-endian bytes (the
//! value payload is empty). Non-unique indexes therefore need no bucket
//! lists — duplicates are adjacent entries differing only in tid — and
//! every lookup is a bounded range scan from the seek target
//! `(values, tid 0)`.
//!
//! Both [`IndexKind`]s share this representation; `Hash` merely declines
//! ordered range scans at the API level (it models the paper's
//! equality-only access path). Missing values (`NULL`/`CNULL`) sort
//! before every present value, so the entries whose indexed column the
//! crowd has not yet filled form a contiguous prefix of the tree —
//! [`Index::missing_key_tids`] — which index access paths must union
//! with their probe results to preserve CNULL probe semantics.

use std::cmp::Ordering;

use bytes::{Bytes, BytesMut};

use crowddb_common::{CrowdError, Result, TupleId, Value};

use crate::btree::{BTree, KeyCmp};
use crate::codec;
use crate::page::PageId;
use crate::pager::Pager;

/// The physical kind of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: point lookups only, no range scans.
    Hash,
    /// B-tree index: ordered, supports range scans.
    BTree,
}

/// Wrapper giving composite keys a total order based on
/// [`Value::sort_cmp`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey(pub Vec<Value>);

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let ord = a.sort_cmp(b);
            if ord != Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

impl IndexKey {
    /// Whether any component is `NULL`/`CNULL`. Such keys never
    /// participate in uniqueness conflicts and never match an equality
    /// probe until the crowd fills them.
    pub fn has_missing(&self) -> bool {
        self.0.iter().any(Value::is_missing)
    }
}

/// Encode an index entry key: codec-encoded values ‖ tid (8 bytes BE).
pub fn encode_index_entry(values: &[Value], tid: TupleId) -> Vec<u8> {
    let mut buf = BytesMut::new();
    for v in values {
        codec::encode_value(&mut buf, v);
    }
    let mut key = buf.to_vec();
    key.extend_from_slice(&tid.0.to_be_bytes());
    key
}

/// Decode an index entry key back into `(values, tid)`.
pub fn decode_index_entry(key: &[u8]) -> Result<(IndexKey, TupleId)> {
    if key.len() < 8 {
        return Err(CrowdError::Internal(
            "index: entry key shorter than a tid".into(),
        ));
    }
    let (vals, tid) = key.split_at(key.len() - 8);
    let mut bytes = Bytes::copy_from_slice(vals);
    let mut values = Vec::new();
    while !bytes.is_empty() {
        values.push(codec::decode_value(&mut bytes)?);
    }
    Ok((
        IndexKey(values),
        TupleId(u64::from_be_bytes(tid.try_into().unwrap())),
    ))
}

/// A secondary index over one or more columns of a table: metadata plus
/// a paged entry tree.
///
/// Indexes are non-unique at this layer; uniqueness (primary keys,
/// unique indexes) is enforced by the table before insertion by
/// consulting [`Index::get`].
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name (unique within the database).
    pub name: String,
    /// Ordinals of the indexed columns.
    pub columns: Vec<usize>,
    /// Enforce key uniqueness?
    pub unique: bool,
    kind: IndexKind,
    tree: BTree,
}

impl Index {
    /// Create an empty index (allocates its entry tree).
    pub fn new(
        pager: &Pager,
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    ) -> Result<Index> {
        Ok(Index {
            name: name.into(),
            columns,
            unique,
            kind,
            tree: BTree::create(pager, KeyCmp::IndexEntry)?,
        })
    }

    /// Re-attach to an existing entry tree (metadata restore).
    pub fn open(
        name: String,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
        root: PageId,
    ) -> Index {
        Index {
            name,
            columns,
            unique,
            kind,
            tree: BTree::open(root, KeyCmp::IndexEntry),
        }
    }

    /// The declared kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Whether this index supports ordered range scans.
    pub fn ordered(&self) -> bool {
        self.kind == IndexKind::BTree
    }

    /// Root page of the entry tree (persisted in table metadata).
    pub fn root(&self) -> PageId {
        self.tree.root()
    }

    /// Project a row onto this index's key columns.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        IndexKey(self.columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Add an entry.
    pub fn insert(&mut self, pager: &Pager, key: &IndexKey, tid: TupleId) -> Result<()> {
        self.tree
            .insert(pager, &encode_index_entry(&key.0, tid), &[])
    }

    /// Remove an entry; returns whether it existed.
    pub fn remove(&mut self, pager: &Pager, key: &IndexKey, tid: TupleId) -> Result<bool> {
        self.tree.remove(pager, &encode_index_entry(&key.0, tid))
    }

    /// Tuple ids whose key equals `key` exactly, in tid order.
    pub fn get(&self, pager: &Pager, key: &IndexKey) -> Result<Vec<TupleId>> {
        let target = encode_index_entry(&key.0, TupleId(0));
        let mut cur = self.tree.cursor_seek(pager, &target)?;
        let mut out = Vec::new();
        while let Some((entry, _)) = cur.next(pager)? {
            let (k, tid) = decode_index_entry(&entry)?;
            if k != *key {
                break;
            }
            out.push(tid);
        }
        Ok(out)
    }

    /// Tuple ids for keys in `[low, high]` (inclusive; missing-valued
    /// keys excluded), ordered by key then tid. `None` bound = unbounded
    /// on that side. Returns `None` for unordered (`Hash`) indexes.
    pub fn range(
        &self,
        pager: &Pager,
        low: Option<&IndexKey>,
        high: Option<&IndexKey>,
    ) -> Result<Option<Vec<TupleId>>> {
        if self.kind != IndexKind::BTree {
            return Ok(None);
        }
        let mut cur = match low {
            Some(lo) => self
                .tree
                .cursor_seek(pager, &encode_index_entry(&lo.0, TupleId(0)))?,
            None => self.tree.cursor_first(pager)?,
        };
        let mut out = Vec::new();
        while let Some((entry, _)) = cur.next(pager)? {
            let (k, tid) = decode_index_entry(&entry)?;
            if k.has_missing() {
                // With no lower bound the cursor starts inside the
                // missing-key prefix; open-world semantics exclude those
                // rows from range predicates.
                continue;
            }
            if let Some(hi) = high {
                if k > *hi {
                    break;
                }
            }
            out.push(tid);
        }
        Ok(Some(out))
    }

    /// Tuple ids whose key has a `NULL`/`CNULL` component. Index access
    /// paths union these with probe results so crowd-fillable rows still
    /// generate probes. Keys with a missing *leading* component form a
    /// contiguous prefix; for multi-column keys the scan continues until
    /// the leading component is present.
    pub fn missing_key_tids(&self, pager: &Pager) -> Result<Vec<TupleId>> {
        let mut cur = self.tree.cursor_first(pager)?;
        let mut out = Vec::new();
        while let Some((entry, _)) = cur.next(pager)? {
            let (k, tid) = decode_index_entry(&entry)?;
            if k.has_missing() {
                out.push(tid);
            } else if !k.0.first().is_some_and(Value::is_missing) {
                break;
            }
        }
        Ok(out)
    }

    /// Number of distinct keys (full scan).
    pub fn distinct_keys(&self, pager: &Pager) -> Result<usize> {
        let mut cur = self.tree.cursor_first(pager)?;
        let mut n = 0usize;
        let mut last: Option<IndexKey> = None;
        while let Some((entry, _)) = cur.next(pager)? {
            let (k, _) = decode_index_entry(&entry)?;
            if last.as_ref() != Some(&k) {
                n += 1;
                last = Some(k);
            }
        }
        Ok(n)
    }

    /// Drop every entry, keeping the index (re-backfill follows).
    pub fn clear(&mut self, pager: &Pager) -> Result<()> {
        self.tree.clear(pager)
    }

    /// Free the entry tree (index or table dropped).
    pub fn free(self, pager: &Pager) -> Result<()> {
        self.tree.free(pager)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::PagerConfig;

    fn pager() -> Pager {
        Pager::new_mem(PagerConfig {
            page_size: 256,
            pool_pages: 0,
        })
        .unwrap()
    }

    fn key(vs: Vec<Value>) -> IndexKey {
        IndexKey(vs)
    }

    #[test]
    fn insert_get_remove() {
        let p = pager();
        let mut idx = Index::new(&p, "i", vec![0], IndexKind::Hash, false).unwrap();
        idx.insert(&p, &key(vec![Value::Int(1)]), TupleId(10))
            .unwrap();
        idx.insert(&p, &key(vec![Value::Int(1)]), TupleId(11))
            .unwrap();
        idx.insert(&p, &key(vec![Value::Int(2)]), TupleId(12))
            .unwrap();
        assert_eq!(
            idx.get(&p, &key(vec![Value::Int(1)])).unwrap(),
            vec![TupleId(10), TupleId(11)]
        );
        assert_eq!(idx.distinct_keys(&p).unwrap(), 2);
        assert!(
            idx.range(&p, None, None).unwrap().is_none(),
            "hash: no range"
        );
        assert!(idx
            .remove(&p, &key(vec![Value::Int(1)]), TupleId(10))
            .unwrap());
        assert!(!idx
            .remove(&p, &key(vec![Value::Int(1)]), TupleId(10))
            .unwrap());
        assert_eq!(
            idx.get(&p, &key(vec![Value::Int(1)])).unwrap(),
            vec![TupleId(11)]
        );
    }

    #[test]
    fn btree_range_scan_inclusive() {
        let p = pager();
        let mut idx = Index::new(&p, "i", vec![0], IndexKind::BTree, false).unwrap();
        for i in 0..10i64 {
            idx.insert(&p, &key(vec![Value::Int(i)]), TupleId(i as u64))
                .unwrap();
        }
        let mid = idx
            .range(
                &p,
                Some(&key(vec![Value::Int(3)])),
                Some(&key(vec![Value::Int(6)])),
            )
            .unwrap()
            .unwrap();
        assert_eq!(mid, vec![TupleId(3), TupleId(4), TupleId(5), TupleId(6)]);
        let all = idx.range(&p, None, None).unwrap().unwrap();
        assert_eq!(all.len(), 10);
        let upper = idx
            .range(&p, Some(&key(vec![Value::Int(8)])), None)
            .unwrap()
            .unwrap();
        assert_eq!(upper, vec![TupleId(8), TupleId(9)]);
    }

    #[test]
    fn missing_values_sort_into_the_missing_prefix() {
        let p = pager();
        let mut idx = Index::new(&p, "i", vec![0], IndexKind::BTree, false).unwrap();
        idx.insert(&p, &key(vec![Value::Int(5)]), TupleId(0))
            .unwrap();
        idx.insert(&p, &key(vec![Value::CNull]), TupleId(1))
            .unwrap();
        idx.insert(&p, &key(vec![Value::Null]), TupleId(2)).unwrap();
        idx.insert(&p, &key(vec![Value::Int(1)]), TupleId(3))
            .unwrap();
        let missing = idx.missing_key_tids(&p).unwrap();
        assert_eq!(missing.len(), 2);
        assert!(missing.contains(&TupleId(1)) && missing.contains(&TupleId(2)));
        // Range scans exclude missing keys even with no lower bound.
        let all = idx.range(&p, None, None).unwrap().unwrap();
        assert_eq!(all, vec![TupleId(3), TupleId(0)]);
        // Equality probes on a present key see only that key.
        assert_eq!(
            idx.get(&p, &key(vec![Value::Int(5)])).unwrap(),
            vec![TupleId(0)]
        );
        // A probe for CNULL finds the CNULL entries (used by maintenance,
        // not by query access paths).
        assert_eq!(
            idx.get(&p, &key(vec![Value::CNull])).unwrap(),
            vec![TupleId(1)]
        );
    }

    #[test]
    fn key_of_projects_columns_in_order() {
        let p = pager();
        let idx = Index::new(&p, "i", vec![2, 0], IndexKind::Hash, false).unwrap();
        let row = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        assert_eq!(idx.key_of(&row), key(vec![Value::Int(3), Value::Int(1)]));
    }

    #[test]
    fn clear_empties_all_entries() {
        let p = pager();
        let mut idx = Index::new(&p, "i", vec![0], IndexKind::BTree, false).unwrap();
        for i in 0..50i64 {
            idx.insert(&p, &key(vec![Value::Int(i)]), TupleId(i as u64))
                .unwrap();
        }
        idx.clear(&p).unwrap();
        assert_eq!(idx.distinct_keys(&p).unwrap(), 0);
        assert_eq!(idx.range(&p, None, None).unwrap().unwrap(), vec![]);
    }

    #[test]
    fn entry_round_trip() {
        let vals = vec![Value::Str("abc".into()), Value::Int(-7)];
        let enc = encode_index_entry(&vals, TupleId(99));
        let (k, tid) = decode_index_entry(&enc).unwrap();
        assert_eq!(k.0, vals);
        assert_eq!(tid, TupleId(99));
    }
}
