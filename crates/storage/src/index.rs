//! Secondary indexes: hash (point lookups) and B-tree (range scans).

use std::collections::{BTreeMap, HashMap};

use crowddb_common::{TupleId, Value};

/// The physical kind of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Hash index: O(1) point lookups, no range scans.
    Hash,
    /// B-tree index: ordered, supports range scans.
    BTree,
}

/// Wrapper giving composite keys a total order based on
/// [`Value::sort_cmp`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexKey(pub Vec<Value>);

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            let ord = a.sort_cmp(b);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// A secondary index over one or more columns of a table.
///
/// Indexes are non-unique at this layer; uniqueness (primary keys, unique
/// indexes) is enforced by the table before insertion by consulting
/// [`Index::get`].
#[derive(Debug, Clone)]
pub struct Index {
    /// Index name (unique within the database).
    pub name: String,
    /// Ordinals of the indexed columns.
    pub columns: Vec<usize>,
    /// Enforce key uniqueness?
    pub unique: bool,
    kind: IndexKind,
    hash: HashMap<IndexKey, Vec<TupleId>>,
    btree: BTreeMap<IndexKey, Vec<TupleId>>,
}

impl Index {
    /// Create an empty index.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<usize>,
        kind: IndexKind,
        unique: bool,
    ) -> Index {
        Index {
            name: name.into(),
            columns,
            unique,
            kind,
            hash: HashMap::new(),
            btree: BTreeMap::new(),
        }
    }

    /// The physical kind.
    pub fn kind(&self) -> IndexKind {
        self.kind
    }

    /// Extract this index's key from a full table row.
    pub fn key_of(&self, row: &[Value]) -> IndexKey {
        IndexKey(self.columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Insert a (key, tuple) pair.
    pub fn insert(&mut self, key: IndexKey, tid: TupleId) {
        match self.kind {
            IndexKind::Hash => self.hash.entry(key).or_default().push(tid),
            IndexKind::BTree => self.btree.entry(key).or_default().push(tid),
        }
    }

    /// Remove a (key, tuple) pair; returns whether it was present.
    pub fn remove(&mut self, key: &IndexKey, tid: TupleId) -> bool {
        let bucket = match self.kind {
            IndexKind::Hash => self.hash.get_mut(key),
            IndexKind::BTree => self.btree.get_mut(key),
        };
        let Some(bucket) = bucket else { return false };
        let before = bucket.len();
        bucket.retain(|t| *t != tid);
        let removed = bucket.len() < before;
        if bucket.is_empty() {
            match self.kind {
                IndexKind::Hash => {
                    self.hash.remove(key);
                }
                IndexKind::BTree => {
                    self.btree.remove(key);
                }
            }
        }
        removed
    }

    /// Point lookup.
    pub fn get(&self, key: &IndexKey) -> &[TupleId] {
        match self.kind {
            IndexKind::Hash => self.hash.get(key).map(Vec::as_slice).unwrap_or(&[]),
            IndexKind::BTree => self.btree.get(key).map(Vec::as_slice).unwrap_or(&[]),
        }
    }

    /// Range scan (B-tree only): all tuples with `low <= key <= high`;
    /// either bound may be `None` for an open end. Returns `None` for hash
    /// indexes.
    pub fn range(&self, low: Option<&IndexKey>, high: Option<&IndexKey>) -> Option<Vec<TupleId>> {
        if self.kind != IndexKind::BTree {
            return None;
        }
        use std::ops::Bound;
        let lo = match low {
            Some(k) => Bound::Included(k.clone()),
            None => Bound::Unbounded,
        };
        let hi = match high {
            Some(k) => Bound::Included(k.clone()),
            None => Bound::Unbounded,
        };
        Some(
            self.btree
                .range((lo, hi))
                .flat_map(|(_, tids)| tids.iter().copied())
                .collect(),
        )
    }

    /// Number of distinct keys in the index.
    pub fn distinct_keys(&self) -> usize {
        match self.kind {
            IndexKind::Hash => self.hash.len(),
            IndexKind::BTree => self.btree.len(),
        }
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.hash.clear();
        self.btree.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vs: Vec<Value>) -> IndexKey {
        IndexKey(vs)
    }

    #[test]
    fn hash_point_lookup() {
        let mut idx = Index::new("i", vec![0], IndexKind::Hash, false);
        idx.insert(key(vec![Value::str("a")]), TupleId(1));
        idx.insert(key(vec![Value::str("a")]), TupleId(2));
        idx.insert(key(vec![Value::str("b")]), TupleId(3));
        assert_eq!(
            idx.get(&key(vec![Value::str("a")])),
            &[TupleId(1), TupleId(2)]
        );
        assert_eq!(idx.get(&key(vec![Value::str("c")])), &[] as &[TupleId]);
        assert_eq!(idx.distinct_keys(), 2);
        assert!(idx.range(None, None).is_none());
    }

    #[test]
    fn remove_cleans_empty_buckets() {
        let mut idx = Index::new("i", vec![0], IndexKind::Hash, false);
        let k = key(vec![Value::Int(7)]);
        idx.insert(k.clone(), TupleId(1));
        assert!(idx.remove(&k, TupleId(1)));
        assert!(!idx.remove(&k, TupleId(1)));
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn btree_range_scan() {
        let mut idx = Index::new("i", vec![0], IndexKind::BTree, false);
        for i in 0..10 {
            idx.insert(key(vec![Value::Int(i)]), TupleId(i as u64));
        }
        let hits = idx
            .range(
                Some(&key(vec![Value::Int(3)])),
                Some(&key(vec![Value::Int(6)])),
            )
            .unwrap();
        assert_eq!(hits, vec![TupleId(3), TupleId(4), TupleId(5), TupleId(6)]);
        let all = idx.range(None, None).unwrap();
        assert_eq!(all.len(), 10);
        let upper = idx.range(Some(&key(vec![Value::Int(8)])), None).unwrap();
        assert_eq!(upper, vec![TupleId(8), TupleId(9)]);
    }

    #[test]
    fn composite_keys_order_lexicographically() {
        let a = key(vec![Value::str("a"), Value::Int(2)]);
        let b = key(vec![Value::str("a"), Value::Int(10)]);
        let c = key(vec![Value::str("b"), Value::Int(0)]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn prefix_key_sorts_before_extension() {
        let short = key(vec![Value::str("a")]);
        let long = key(vec![Value::str("a"), Value::Int(1)]);
        assert!(short < long);
    }

    #[test]
    fn missing_values_in_keys() {
        // NULL and CNULL participate in index order (sorted first).
        let mut idx = Index::new("i", vec![0], IndexKind::BTree, false);
        idx.insert(key(vec![Value::Null]), TupleId(0));
        idx.insert(key(vec![Value::CNull]), TupleId(1));
        idx.insert(key(vec![Value::Int(1)]), TupleId(2));
        let all = idx.range(None, None).unwrap();
        assert_eq!(all, vec![TupleId(0), TupleId(1), TupleId(2)]);
    }

    #[test]
    fn key_of_extracts_columns() {
        let idx = Index::new("i", vec![2, 0], IndexKind::Hash, false);
        let row = vec![Value::Int(1), Value::str("x"), Value::Bool(true)];
        assert_eq!(
            idx.key_of(&row),
            key(vec![Value::Bool(true), Value::Int(1)])
        );
    }
}
