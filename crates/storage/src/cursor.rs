//! Cursors: streaming row access over a table's primary B-tree,
//! replacing the old materialize-everything `scan_rows()` contract.
//!
//! A cursor borrows the table (and through it the pager), so it lives
//! inside a `Database::with_table` closure; callers that need rows past
//! the closure materialize exactly the prefix they consume.

use bytes::Bytes;

use crowddb_common::{CrowdError, Result, Row, TupleId};

use crate::btree::BTreeCursor;
use crate::codec;
use crate::pager::Pager;

/// Forward scan over a table's live rows in tuple-id (insertion) order.
#[derive(Debug)]
pub struct TableCursor<'a> {
    pager: &'a Pager,
    inner: BTreeCursor,
}

impl<'a> TableCursor<'a> {
    pub(crate) fn new(pager: &'a Pager, inner: BTreeCursor) -> TableCursor<'a> {
        TableCursor { pager, inner }
    }

    /// The next live row, or `None` at the end of the table. Not an
    /// `Iterator`: page reads can fail, and `Result<Option<_>>` keeps
    /// that explicit at every call site.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<(TupleId, Row)>> {
        match self.inner.next(self.pager)? {
            None => Ok(None),
            Some((key, val)) => {
                let tid = decode_tid_key(&key)?;
                let row = codec::decode_row(&mut Bytes::from(val))?;
                Ok(Some((tid, row)))
            }
        }
    }

    /// Drain the cursor into a vector (the compatibility path for
    /// callers that still want full materialization).
    pub fn collect_rows(mut self) -> Result<Vec<(TupleId, Row)>> {
        let mut out = Vec::new();
        while let Some(pair) = self.next()? {
            out.push(pair);
        }
        Ok(out)
    }
}

/// Encode a tuple id as a primary-tree key (big-endian: byte order is
/// numeric order, so `KeyCmp::Bytes` scans in insertion order).
pub(crate) fn encode_tid_key(tid: TupleId) -> [u8; 8] {
    tid.0.to_be_bytes()
}

pub(crate) fn decode_tid_key(key: &[u8]) -> Result<TupleId> {
    let bytes: [u8; 8] = key
        .try_into()
        .map_err(|_| CrowdError::Internal("table: primary key is not 8 bytes".into()))?;
    Ok(TupleId(u64::from_be_bytes(bytes)))
}
