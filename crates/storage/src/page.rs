//! Fixed-size pages: identifiers, kinds, and the on-page byte layout
//! constants shared by the pager and the B-tree.
//!
//! Every page starts with a one-byte kind tag. Page 0 of a page file is
//! reserved for the file header (magic + page size) so a reopened file
//! can be validated before any tree is walked; in-memory page stores keep
//! the same layout so code paths stay uniform.

use crowddb_common::{CrowdError, Result};

/// Identifier of one fixed-size page. Page ids are dense: they double as
/// offsets into the page file (`offset = id * page_size`).
pub type PageId = u64;

/// The reserved header page of a page file.
pub const HEADER_PAGE: PageId = 0;

/// Magic prefix of the header page (page 0) of a page file.
pub const PAGE_FILE_MAGIC: &[u8; 8] = b"CDBPAGE1";

/// Default page size in bytes.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Smallest supported page size. Below this a B-tree node cannot hold
/// enough entries to make progress (splits would not terminate).
pub const MIN_PAGE_SIZE: usize = 256;

/// Page kind tags (byte 0 of every page).
pub mod kind {
    /// Unallocated / zeroed page.
    pub const FREE: u8 = 0;
    /// B-tree leaf node.
    pub const LEAF: u8 = 1;
    /// B-tree internal node.
    pub const INTERNAL: u8 = 2;
    /// Overflow chunk of a large value.
    pub const OVERFLOW: u8 = 3;
    /// The file header page (page 0).
    pub const HEADER: u8 = 4;
}

/// Validate a requested page size.
pub fn check_page_size(page_size: usize) -> Result<()> {
    if page_size < MIN_PAGE_SIZE {
        return Err(CrowdError::Internal(format!(
            "page size {page_size} below minimum {MIN_PAGE_SIZE}"
        )));
    }
    if page_size > u32::MAX as usize {
        return Err(CrowdError::Internal(format!(
            "page size {page_size} exceeds u32 range"
        )));
    }
    Ok(())
}

/// Build the header page contents for a page file of `page_size`.
pub fn header_page(page_size: usize) -> Vec<u8> {
    let mut p = vec![0u8; page_size];
    p[0] = kind::HEADER;
    p[1..9].copy_from_slice(PAGE_FILE_MAGIC);
    p[9..13].copy_from_slice(&(page_size as u32).to_le_bytes());
    p
}

/// Validate a header page read back from disk, returning the recorded
/// page size.
pub fn parse_header_page(data: &[u8]) -> Result<usize> {
    if data.len() < 13 || data[0] != kind::HEADER || &data[1..9] != PAGE_FILE_MAGIC {
        return Err(CrowdError::Internal(
            "page file: bad header page (not a CrowdDB page file)".into(),
        ));
    }
    let ps = u32::from_le_bytes([data[9], data[10], data[11], data[12]]) as usize;
    check_page_size(ps)?;
    Ok(ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let p = header_page(512);
        assert_eq!(parse_header_page(&p).unwrap(), 512);
    }

    #[test]
    fn bad_header_rejected() {
        assert!(parse_header_page(&[0u8; 64]).is_err());
        let mut p = header_page(512);
        p[3] ^= 0xff;
        assert!(parse_header_page(&p).is_err());
    }

    #[test]
    fn page_size_bounds() {
        assert!(check_page_size(MIN_PAGE_SIZE).is_ok());
        assert!(check_page_size(MIN_PAGE_SIZE - 1).is_err());
        assert!(check_page_size(DEFAULT_PAGE_SIZE).is_ok());
    }
}
