//! # crowddb-storage
//!
//! The CrowdDB storage engine: a paged row store with a catalog, a
//! buffer pool, B-tree primary and secondary access paths, and a compact
//! binary row codec used for snapshots.
//!
//! The paper's prototype reused the H2 storage engine; this crate is the
//! equivalent substrate built from scratch. Layers, bottom up:
//!
//! - [`page`] — fixed-size page layout and the page-file header.
//! - [`pool`] — the buffer pool: pinned-while-dirty frames, LRU eviction
//!   of clean frames, hit/miss/eviction counters.
//! - [`pager`] — page allocation, the in-memory and file backends, and
//!   the dirty-page checkpoint journal (crash-safe flushes).
//! - [`btree`] — a paged B-tree with overflow chains; both the primary
//!   store (rows keyed by tuple id) and every secondary index are
//!   instances of it.
//! - [`table`] / [`index`] / [`cursor`] — heap tables with constraint
//!   enforcement (primary keys, NOT NULL, types), index maintenance on
//!   every mutation, and streaming cursors.
//! - [`db`] — the [`Database`] facade: catalog + tables behind one lock,
//!   snapshots, and checkpoint orchestration.
//!
//! Everything sourced from the crowd is written back through
//! [`Database`], which is how CrowdDB "memorizes the results sourced from
//! the crowd" (paper §3).

pub mod btree;
pub mod catalog;
pub mod codec;
pub mod cursor;
pub mod db;
pub mod index;
pub mod logrec;
pub mod page;
pub mod pager;
pub mod pool;
pub mod table;

pub use catalog::Catalog;
pub use cursor::TableCursor;
pub use db::Database;
pub use index::{decode_index_entry, encode_index_entry, Index, IndexKey, IndexKind};
pub use logrec::LogRecord;
pub use pager::{CheckpointPrep, Pager, PagerConfig};
pub use pool::PagerStats;
pub use table::{HeapTable, TableStats};
