//! # crowddb-storage
//!
//! The CrowdDB storage engine: an in-memory row store with a catalog,
//! heap tables, hash and B-tree secondary indexes, and a compact binary
//! row codec used for snapshots.
//!
//! The paper's prototype reused the H2 storage engine; this crate is the
//! equivalent substrate built from scratch. It is deliberately simple —
//! CrowdDB's contribution is *above* the storage layer — but complete
//! enough to be a real engine: constraint enforcement (primary keys, NOT
//! NULL, types), tombstoned deletes with stable tuple ids, index
//! maintenance on every mutation, and table statistics that feed the
//! optimizer's cardinality estimates.
//!
//! Everything sourced from the crowd is written back through
//! [`Database`], which is how CrowdDB "memorizes the results sourced from
//! the crowd" (paper §3).

pub mod catalog;
pub mod codec;
pub mod db;
pub mod index;
pub mod logrec;
pub mod table;

pub use catalog::Catalog;
pub use db::Database;
pub use index::{Index, IndexKind};
pub use logrec::LogRecord;
pub use table::{HeapTable, TableStats};
