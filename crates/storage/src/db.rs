//! The database: catalog + heap tables behind a single lock, plus
//! snapshots.
//!
//! CrowdDB executes queries in rounds: run the plan, collect crowd task
//! requests, post them, ingest answers (write-back), re-run. Within one
//! run only reads happen; write-back happens between runs. A single
//! `RwLock` therefore gives us all the concurrency the engine needs while
//! keeping the invariants trivially safe (many concurrent readers, one
//! writer between rounds).

use std::collections::BTreeMap;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::RwLock;

use crowddb_common::{CrowdError, Result, Row, TableSchema, TupleId, Value};

use crate::catalog::Catalog;
use crate::codec;
use crate::index::{Index, IndexKind};
use crate::logrec::LogRecord;
use crate::table::{HeapTable, TableStats};

/// Magic + version prefix of a [`Database::snapshot`] buffer. Version 2
/// preserves tuple ids (slot indexes) so that write-ahead-log records
/// addressing tuples by id replay correctly against a restored snapshot.
const SNAPSHOT_MAGIC: &[u8; 5] = b"CDBS\x02";

#[derive(Debug, Default)]
struct Inner {
    catalog: Catalog,
    tables: BTreeMap<String, HeapTable>,
}

/// A CrowdDB database instance: the storage-facing API used by the
/// executor, the task manager (write-back), and DDL.
#[derive(Debug, Default)]
pub struct Database {
    inner: RwLock<Inner>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create a table from a schema.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let mut inner = self.inner.write();
        let name = schema.name.clone();
        inner.catalog.register(schema.clone())?;
        inner.tables.insert(name, HeapTable::new(schema));
        Ok(())
    }

    /// Drop a table.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let mut inner = self.inner.write();
        let lname = name.to_ascii_lowercase();
        if inner.catalog.remove(&lname).is_none() {
            if if_exists {
                return Ok(());
            }
            return Err(CrowdError::Catalog(format!(
                "table '{lname}' does not exist"
            )));
        }
        inner.tables.remove(&lname);
        Ok(())
    }

    /// Fetch a table's schema.
    pub fn schema(&self, name: &str) -> Result<TableSchema> {
        self.inner
            .read()
            .catalog
            .get(name)
            .cloned()
            .ok_or_else(|| CrowdError::Catalog(format!("table '{name}' does not exist")))
    }

    /// Run `f` against the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.inner.read().catalog)
    }

    /// Run `f` with read access to a table.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&HeapTable) -> R) -> Result<R> {
        let inner = self.inner.read();
        let t = inner
            .tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| CrowdError::Catalog(format!("table '{name}' does not exist")))?;
        Ok(f(t))
    }

    /// Run `f` with write access to a table.
    pub fn with_table_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut HeapTable) -> Result<R>,
    ) -> Result<R> {
        let mut inner = self.inner.write();
        let t = inner
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| CrowdError::Catalog(format!("table '{name}' does not exist")))?;
        f(t)
    }

    /// Insert a row.
    pub fn insert(&self, table: &str, row: Row) -> Result<TupleId> {
        self.with_table_mut(table, |t| t.insert(row))
    }

    /// Write back a crowdsourced value into a specific column of a tuple.
    pub fn write_back_value(
        &self,
        table: &str,
        tid: TupleId,
        col: usize,
        value: Value,
    ) -> Result<()> {
        self.with_table_mut(table, |t| t.update_value(tid, col, value))
    }

    /// Insert a crowdsourced tuple into a CROWD table, ignoring
    /// primary-key conflicts (two workers may contribute the same entity —
    /// the first one wins, which is the paper's dedup-by-key behaviour).
    ///
    /// Returns `Ok(Some(tid))` when inserted, `Ok(None)` on a duplicate.
    pub fn write_back_tuple(&self, table: &str, row: Row) -> Result<Option<TupleId>> {
        self.with_table_mut(table, |t| match t.insert(row) {
            Ok(tid) => Ok(Some(tid)),
            Err(CrowdError::Constraint(msg)) if msg.contains("unique constraint") => Ok(None),
            Err(e) => Err(e),
        })
    }

    /// Create a secondary index.
    pub fn create_index(
        &self,
        name: &str,
        table: &str,
        columns: &[String],
        unique: bool,
        kind: IndexKind,
    ) -> Result<()> {
        self.with_table_mut(table, |t| {
            let mut ords = Vec::with_capacity(columns.len());
            for c in columns {
                ords.push(t.schema().column_index(c).ok_or_else(|| {
                    CrowdError::Catalog(format!("column '{c}' not found in table '{table}'"))
                })?);
            }
            t.add_index(Index::new(name, ords, kind, unique))
        })
    }

    /// Statistics for one table.
    pub fn stats(&self, table: &str) -> Result<TableStats> {
        self.with_table(table, |t| t.stats())
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().tables.keys().cloned().collect()
    }

    /// Apply one write-ahead-log record to this database.
    ///
    /// Returns `Ok(true)` when the record was a storage-level record
    /// (DDL, crowd-answer write-back, crowd-table tuple insertion) and was
    /// applied, `Ok(false)` when the record requires engine-level replay
    /// (logical DML, comparison-cache verdicts) and was left untouched.
    /// Recovery must apply records in log order.
    pub fn apply(&self, rec: &LogRecord) -> Result<bool> {
        match rec {
            LogRecord::Ddl { sql } => {
                let stmt = crowddb_sql::parse_statement(sql)
                    .map_err(|e| CrowdError::Io(format!("wal: bad DDL record '{sql}': {e}")))?;
                match stmt {
                    crowddb_sql::Statement::CreateTable(ct) => {
                        let schema = self.with_catalog(|c| c.schema_from_ast(&ct))?;
                        self.create_table(schema)?;
                    }
                    crowddb_sql::Statement::CreateIndex(ci) => {
                        self.create_index(
                            &ci.name,
                            &ci.table,
                            &ci.columns,
                            ci.unique,
                            IndexKind::BTree,
                        )?;
                    }
                    crowddb_sql::Statement::DropTable { name, if_exists } => {
                        self.drop_table(&name, if_exists)?;
                    }
                    other => {
                        return Err(CrowdError::Io(format!(
                            "wal: DDL record holds non-DDL statement '{other}'"
                        )))
                    }
                }
                Ok(true)
            }
            LogRecord::WriteBackValue {
                table,
                tid,
                col,
                value,
            } => {
                self.write_back_value(table, *tid, *col, value.clone())?;
                Ok(true)
            }
            LogRecord::WriteBackTuple { table, row } => {
                self.write_back_tuple(table, row.clone())?;
                Ok(true)
            }
            LogRecord::Dml { .. } | LogRecord::PutEqual { .. } | LogRecord::PutOrder { .. } => {
                Ok(false)
            }
        }
    }

    /// Serialize the whole database (schemas as DDL text + rows in the
    /// binary codec) into one buffer. Used by the durability subsystem
    /// (checkpoints) and session persistence.
    ///
    /// Tuple ids and the slot high-water mark are preserved, so a
    /// restored database is *identical* to the source — including the ids
    /// that future write-ahead-log records will address — not merely
    /// equivalent row-content-wise.
    pub fn snapshot(&self) -> Bytes {
        let inner = self.inner.read();
        let mut buf = BytesMut::new();
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(inner.tables.len() as u32);
        for (name, table) in &inner.tables {
            let ddl = table.schema().to_ddl();
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            buf.put_u32_le(ddl.len() as u32);
            buf.put_slice(ddl.as_bytes());
            buf.put_u64_le(table.stats().total_slots as u64);
            let live: Vec<(TupleId, &Row)> = table.scan().collect();
            let mut rows_buf = BytesMut::new();
            rows_buf.put_u64_le(live.len() as u64);
            for (tid, row) in live {
                rows_buf.put_u64_le(tid.0);
                codec::encode_row(&mut rows_buf, row);
            }
            buf.put_u64_le(rows_buf.len() as u64);
            buf.put_slice(rows_buf.chunk());
        }
        buf.freeze()
    }

    /// Restore a database from a [`Database::snapshot`] buffer.
    pub fn restore(snapshot: Bytes) -> Result<Database> {
        let mut buf = snapshot;
        let db = Database::new();
        if buf.remaining() < SNAPSHOT_MAGIC.len() + 4 {
            return Err(CrowdError::Internal("snapshot: truncated header".into()));
        }
        let magic = buf.copy_to_bytes(SNAPSHOT_MAGIC.len());
        if &magic[..] != SNAPSHOT_MAGIC {
            return Err(CrowdError::Internal(
                "snapshot: bad magic (not a CrowdDB v2 snapshot)".into(),
            ));
        }
        let n_tables = buf.get_u32_le();
        // Sanity: every entry needs at least 24 bytes of headers; a count
        // that can't fit in the buffer is corruption, not a large DB.
        if (n_tables as usize).saturating_mul(24) > buf.remaining() {
            return Err(CrowdError::Internal(format!(
                "snapshot: implausible table count {n_tables}"
            )));
        }
        // First pass: decode every table entry.
        let mut entries = Vec::with_capacity(n_tables as usize);
        for _ in 0..n_tables {
            let name = read_string(&mut buf)?;
            let ddl = read_string(&mut buf)?;
            if buf.remaining() < 16 {
                return Err(CrowdError::Internal(
                    "snapshot: truncated table header".into(),
                ));
            }
            let total_slots = buf.get_u64_le() as usize;
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(CrowdError::Internal("snapshot: truncated rows".into()));
            }
            let rows_buf = buf.copy_to_bytes(len);
            entries.push((name, ddl, total_slots, rows_buf));
        }
        // Second pass: create tables, deferring any whose foreign-key
        // targets have not been registered yet (snapshot order is
        // alphabetical, not topological).
        let mut pending = entries;
        while !pending.is_empty() {
            let mut next_round = Vec::new();
            let mut progressed = false;
            for (name, ddl, total_slots, rows_buf) in pending {
                let stmt = crowddb_sql::parse_statement(&ddl).map_err(|e| {
                    CrowdError::Internal(format!("snapshot: bad DDL for '{name}': {e}"))
                })?;
                let crowddb_sql::Statement::CreateTable(ct) = stmt else {
                    return Err(CrowdError::Internal(format!(
                        "snapshot: DDL for '{name}' is not CREATE TABLE"
                    )));
                };
                match db.with_catalog(|c| c.schema_from_ast(&ct)) {
                    Ok(schema) => {
                        db.create_table(schema)?;
                        let mut rows = rows_buf.clone();
                        if rows.remaining() < 8 {
                            return Err(CrowdError::Internal(
                                "snapshot: truncated row count".into(),
                            ));
                        }
                        let n_rows = rows.get_u64_le();
                        db.with_table_mut(&name, |t| {
                            for _ in 0..n_rows {
                                if rows.remaining() < 8 {
                                    return Err(CrowdError::Internal(
                                        "snapshot: truncated tuple id".into(),
                                    ));
                                }
                                let tid = TupleId(rows.get_u64_le());
                                let row = codec::decode_row(&mut rows)?;
                                t.restore_at(tid, row)?;
                            }
                            t.pad_slots(total_slots);
                            Ok(())
                        })?;
                        progressed = true;
                    }
                    Err(CrowdError::Catalog(msg)) if msg.contains("unknown table") => {
                        next_round.push((name, ddl, total_slots, rows_buf));
                    }
                    Err(e) => return Err(e),
                }
            }
            if !progressed && !next_round.is_empty() {
                return Err(CrowdError::Internal(
                    "snapshot: circular or dangling foreign keys".into(),
                ));
            }
            pending = next_round;
        }
        Ok(db)
    }
}

fn read_string(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(CrowdError::Internal(
            "snapshot: truncated string len".into(),
        ));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(CrowdError::Internal("snapshot: truncated string".into()));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|e| CrowdError::Internal(format!("snapshot: invalid utf8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::{row, ColumnDef, DataType};

    fn talk_db() -> Database {
        let db = Database::new();
        let schema = TableSchema::new(
            "talk",
            vec![
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("abstract", DataType::Str).crowd(),
                ColumnDef::new("nb_attendees", DataType::Int).crowd(),
            ],
        )
        .unwrap()
        .with_primary_key(&["title"])
        .unwrap();
        db.create_table(schema).unwrap();
        db
    }

    #[test]
    fn create_insert_query() {
        let db = talk_db();
        db.insert("talk", row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        let n = db.with_table("talk", |t| t.scan().count()).unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.stats("talk").unwrap().cnull_values, 2);
    }

    #[test]
    fn drop_table_semantics() {
        let db = talk_db();
        db.drop_table("TALK", false).unwrap();
        assert!(db.drop_table("talk", false).is_err());
        db.drop_table("talk", true).unwrap(); // IF EXISTS
        assert!(db.schema("talk").is_err());
    }

    #[test]
    fn write_back_value_clears_cnull() {
        let db = talk_db();
        let tid = db
            .insert("talk", row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        db.write_back_value("talk", tid, 1, Value::str("the abstract"))
            .unwrap();
        assert_eq!(db.stats("talk").unwrap().cnull_values, 1);
    }

    #[test]
    fn write_back_tuple_dedupes_by_pk() {
        let db = talk_db();
        let t1 = db
            .write_back_tuple("talk", row!["CrowdDB", "a", 1i64])
            .unwrap();
        assert!(t1.is_some());
        // A second worker contributes the same key: silently deduped.
        let t2 = db
            .write_back_tuple("talk", row!["CrowdDB", "b", 2i64])
            .unwrap();
        assert!(t2.is_none());
        // First answer wins.
        let v = db
            .with_table("talk", |t| t.get(t1.unwrap()).unwrap()[1].clone())
            .unwrap();
        assert_eq!(v, Value::str("a"));
    }

    #[test]
    fn write_back_tuple_propagates_other_errors() {
        let db = talk_db();
        let err = db
            .write_back_tuple("talk", row!["x", "a", "not an int"])
            .unwrap_err();
        assert_eq!(err.category(), "constraint");
    }

    #[test]
    fn create_index_by_name() {
        let db = talk_db();
        db.insert("talk", row!["a", "x", 10i64]).unwrap();
        db.create_index(
            "talk_att",
            "talk",
            &["nb_attendees".into()],
            false,
            IndexKind::BTree,
        )
        .unwrap();
        let found = db
            .with_table("talk", |t| t.index_on(&[2]).is_some())
            .unwrap();
        assert!(found);
        assert!(db
            .create_index("bad", "talk", &["nope".into()], false, IndexKind::Hash)
            .is_err());
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new();
        assert!(db.insert("ghost", row![1i64]).is_err());
        assert!(db.stats("ghost").is_err());
        assert!(db.schema("ghost").is_err());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let db = talk_db();
        db.insert("talk", row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        db.insert("talk", row!["Qurk", "demo abstract", 75i64])
            .unwrap();
        let snap = db.snapshot();

        let restored = Database::restore(snap).unwrap();
        assert_eq!(restored.table_names(), vec!["talk".to_string()]);
        let schema = restored.schema("talk").unwrap();
        assert_eq!(schema.crowd_columns(), vec![1, 2]);
        assert_eq!(schema.primary_key, vec![0]);
        let rows = restored.with_table("talk", |t| t.scan_rows()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1[0], Value::str("CrowdDB"));
        assert!(rows[0].1[1].is_cnull());
        // PK index restored too.
        let hits = restored
            .with_table("talk", |t| t.lookup_pk(&[Value::str("Qurk")]))
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn snapshot_of_empty_db() {
        let db = Database::new();
        let restored = Database::restore(db.snapshot()).unwrap();
        assert!(restored.table_names().is_empty());
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(Database::restore(Bytes::from_static(b"nonsense")).is_err());
        assert!(Database::restore(Bytes::new()).is_err());
    }

    #[test]
    fn concurrent_readers() {
        use std::sync::Arc;
        let db = Arc::new(talk_db());
        for i in 0..64 {
            db.insert("talk", row![format!("t{i}"), Value::CNull, Value::CNull])
                .unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..8 {
            let db = Arc::clone(&db);
            handles.push(std::thread::spawn(move || {
                db.with_table("talk", |t| t.scan().count()).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 64);
        }
    }
}
