//! The database: catalog + paged tables behind a single lock, plus
//! snapshots and checkpoint orchestration hooks.
//!
//! CrowdDB executes queries in rounds: run the plan, collect crowd task
//! requests, post them, ingest answers (write-back), re-run. Within one
//! run only reads happen; write-back happens between runs. A single
//! `RwLock` therefore gives us all the concurrency the engine needs while
//! keeping the invariants trivially safe (many concurrent readers, one
//! writer between rounds). All page state lives in one shared [`Pager`]
//! (in-memory by default, file-backed for durable sessions).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::RwLock;

use crowddb_common::{CrowdError, Result, Row, TableSchema, TupleId, Value};

use crate::catalog::Catalog;
use crate::codec;
use crate::index::{Index, IndexKind};
use crate::logrec::LogRecord;
use crate::page;
use crate::pager::{CheckpointPrep, Pager, PagerConfig};
use crate::pool::PagerStats;
use crate::table::{HeapTable, TableStats};

/// Magic + version prefix of a [`Database::snapshot`] buffer. Version 2
/// preserves tuple ids (slot indexes) so that write-ahead-log records
/// addressing tuples by id replay correctly against a restored snapshot.
const SNAPSHOT_MAGIC: &[u8; 5] = b"CDBS\x02";

/// Magic + version prefix of a paged-metadata snapshot
/// ([`Database::begin_checkpoint`]): tree roots and allocation state
/// instead of row payloads — rows live in the page file.
const META_MAGIC: &[u8; 5] = b"CDBM\x01";

#[derive(Debug, Default)]
struct Inner {
    catalog: Catalog,
    tables: BTreeMap<String, HeapTable>,
}

/// A CrowdDB database instance: the storage-facing API used by the
/// executor, the task manager (write-back), and DDL.
#[derive(Debug)]
pub struct Database {
    pager: Arc<Pager>,
    inner: RwLock<Inner>,
}

impl Default for Database {
    fn default() -> Database {
        Database::new()
    }
}

impl Database {
    /// Create an empty in-memory database. Pager knobs come from
    /// [`PagerConfig::default`] (env-overridable); an invalid env page
    /// size falls back to the built-in default rather than failing.
    pub fn new() -> Database {
        let cfg = PagerConfig::default();
        let pager = Pager::new_mem(cfg).unwrap_or_else(|_| {
            Pager::new_mem(PagerConfig {
                page_size: page::DEFAULT_PAGE_SIZE,
                pool_pages: cfg.pool_pages,
            })
            .expect("default page size is valid")
        });
        Database::with_pager(pager)
    }

    /// Create an empty in-memory database with explicit pager knobs.
    pub fn new_with_config(cfg: PagerConfig) -> Result<Database> {
        Ok(Database::with_pager(Pager::new_mem(cfg)?))
    }

    /// Create a fresh file-backed database in `dir`.
    pub fn open_file(dir: &Path, cfg: PagerConfig) -> Result<Database> {
        Ok(Database::with_pager(Pager::open_file(dir, cfg, 0)?))
    }

    fn with_pager(pager: Pager) -> Database {
        Database {
            pager: Arc::new(pager),
            inner: RwLock::new(Inner::default()),
        }
    }

    /// Reopen a file-backed database from a paged-metadata snapshot
    /// (the payload committed by the last checkpoint). Recovers the
    /// dirty-page journal, restores allocation state, and re-attaches
    /// every table to its trees. `cfg.page_size` is ignored in favor of
    /// the recorded one (a page file cannot change page size).
    pub fn open_paged(dir: &Path, cfg: PagerConfig, meta: &[u8]) -> Result<Database> {
        let meta = decode_meta(meta)?;
        let pager = Pager::open_file(
            dir,
            PagerConfig {
                page_size: meta.page_size,
                pool_pages: cfg.pool_pages,
            },
            meta.epoch,
        )?;
        pager.set_alloc_state(meta.free, meta.page_count, meta.epoch);
        let db = Database::with_pager(pager);
        // Register schemas FK-deferred (meta order is alphabetical, not
        // topological), then attach tables to their recorded trees.
        let mut pending = meta.tables;
        while !pending.is_empty() {
            let mut next_round = Vec::new();
            let mut progressed = false;
            for entry in pending {
                let stmt = crowddb_sql::parse_statement(&entry.ddl).map_err(|e| {
                    CrowdError::Internal(format!("meta: bad DDL for '{}': {e}", entry.name))
                })?;
                let crowddb_sql::Statement::CreateTable(ct) = stmt else {
                    return Err(CrowdError::Internal(format!(
                        "meta: DDL for '{}' is not CREATE TABLE",
                        entry.name
                    )));
                };
                match db.with_catalog(|c| c.schema_from_ast(&ct)) {
                    Ok(schema) => {
                        let mut inner = db.inner.write();
                        inner.catalog.register(schema.clone())?;
                        let indexes = entry
                            .indexes
                            .iter()
                            .map(|i| {
                                Index::open(
                                    i.name.clone(),
                                    i.columns.clone(),
                                    i.kind,
                                    i.unique,
                                    i.root,
                                )
                            })
                            .collect();
                        let table = HeapTable::from_parts(
                            Arc::clone(&db.pager),
                            schema,
                            entry.primary_root,
                            entry.total_slots,
                            entry.live_rows,
                            entry.cnull_values,
                            indexes,
                        );
                        inner.tables.insert(entry.name.clone(), table);
                        progressed = true;
                    }
                    Err(CrowdError::Catalog(msg)) if msg.contains("unknown table") => {
                        next_round.push(entry);
                    }
                    Err(e) => return Err(e),
                }
            }
            if !progressed && !next_round.is_empty() {
                return Err(CrowdError::Internal(
                    "meta: circular or dangling foreign keys".into(),
                ));
            }
            pending = next_round;
        }
        Ok(db)
    }

    /// Cumulative pager counters (page reads/writes, pool hits/misses).
    pub fn pager_stats(&self) -> PagerStats {
        self.pager.stats()
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.pager.page_size()
    }

    /// Whether pages persist to a file (checkpoints flush dirty pages).
    pub fn is_file_backed(&self) -> bool {
        self.pager.is_file_backed()
    }

    /// Whether `bytes` is a paged-metadata snapshot (as produced by
    /// [`Database::begin_checkpoint`]) rather than a full-state snapshot.
    pub fn is_paged_meta(bytes: &[u8]) -> bool {
        bytes.starts_with(META_MAGIC)
    }

    /// Number of dirty (unflushed) pages.
    pub fn dirty_pages(&self) -> usize {
        self.pager.dirty_count()
    }

    /// First half of a durable checkpoint (file-backed only): journal
    /// every dirty page, then capture the paged-metadata snapshot for the
    /// caller to commit. Row data is *not* serialized — that is the point
    /// of paged checkpoints. Call [`Database::complete_checkpoint`] after
    /// the metadata commit succeeds.
    pub fn begin_checkpoint(&self) -> Result<(CheckpointPrep, Bytes)> {
        // Hold the read lock across journal + metadata capture so no DML
        // can slip between them.
        let inner = self.inner.read();
        let prep = self.pager.begin_checkpoint()?;
        let meta = encode_meta(&self.pager, &inner, prep.epoch);
        Ok((prep, meta))
    }

    /// Second half of a durable checkpoint: apply journaled pages to the
    /// page file and mark them clean.
    pub fn complete_checkpoint(&self, prep: &CheckpointPrep) -> Result<()> {
        self.pager.complete_checkpoint(prep)
    }

    /// Create a table from a schema. Single-column foreign keys get an
    /// automatic non-unique B-tree index (`<table>_fk_<column>`) so crowd
    /// joins over the FK can run as index-nested-loop probes; this runs
    /// on every path that creates tables (DDL, WAL replay, restore), so
    /// replayed databases carry identical indexes.
    pub fn create_table(&self, schema: TableSchema) -> Result<()> {
        let mut inner = self.inner.write();
        let name = schema.name.clone();
        inner.catalog.register(schema.clone())?;
        let mut table = HeapTable::new(Arc::clone(&self.pager), schema)?;
        let fk_specs: Vec<(String, usize)> = table
            .schema()
            .foreign_keys
            .iter()
            .filter(|fk| fk.columns.len() == 1)
            .map(|fk| {
                let ord = fk.columns[0];
                let col = table.schema().columns[ord].name.clone();
                (col, ord)
            })
            .collect();
        for (col, ord) in fk_specs {
            if table.index_on(&[ord]).is_none() {
                table.add_index(
                    format!("{name}_fk_{col}"),
                    vec![ord],
                    IndexKind::BTree,
                    false,
                )?;
            }
        }
        inner.tables.insert(name, table);
        Ok(())
    }

    /// Drop a table, freeing its pages.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<()> {
        let mut inner = self.inner.write();
        let lname = name.to_ascii_lowercase();
        if inner.catalog.remove(&lname).is_none() {
            if if_exists {
                return Ok(());
            }
            return Err(CrowdError::Catalog(format!(
                "table '{lname}' does not exist"
            )));
        }
        if let Some(table) = inner.tables.remove(&lname) {
            table.free()?;
        }
        Ok(())
    }

    /// Fetch a table's schema.
    pub fn schema(&self, name: &str) -> Result<TableSchema> {
        self.inner
            .read()
            .catalog
            .get(name)
            .cloned()
            .ok_or_else(|| CrowdError::Catalog(format!("table '{name}' does not exist")))
    }

    /// Run `f` against the catalog.
    pub fn with_catalog<R>(&self, f: impl FnOnce(&Catalog) -> R) -> R {
        f(&self.inner.read().catalog)
    }

    /// Run `f` with read access to a table.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&HeapTable) -> R) -> Result<R> {
        let inner = self.inner.read();
        let t = inner
            .tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| CrowdError::Catalog(format!("table '{name}' does not exist")))?;
        Ok(f(t))
    }

    /// Run `f` with write access to a table.
    pub fn with_table_mut<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut HeapTable) -> Result<R>,
    ) -> Result<R> {
        let mut inner = self.inner.write();
        let t = inner
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| CrowdError::Catalog(format!("table '{name}' does not exist")))?;
        f(t)
    }

    /// Insert a row.
    pub fn insert(&self, table: &str, row: Row) -> Result<TupleId> {
        self.with_table_mut(table, |t| t.insert(row))
    }

    /// Write back a crowdsourced value into a specific column of a tuple.
    pub fn write_back_value(
        &self,
        table: &str,
        tid: TupleId,
        col: usize,
        value: Value,
    ) -> Result<()> {
        self.with_table_mut(table, |t| t.update_value(tid, col, value))
    }

    /// Insert a crowdsourced tuple into a CROWD table, ignoring
    /// primary-key conflicts (two workers may contribute the same entity —
    /// the first one wins, which is the paper's dedup-by-key behaviour).
    ///
    /// Returns `Ok(Some(tid))` when inserted, `Ok(None)` on a duplicate.
    pub fn write_back_tuple(&self, table: &str, row: Row) -> Result<Option<TupleId>> {
        self.with_table_mut(table, |t| match t.insert(row) {
            Ok(tid) => Ok(Some(tid)),
            Err(CrowdError::Constraint(msg)) if msg.contains("unique constraint") => Ok(None),
            Err(e) => Err(e),
        })
    }

    /// Create a secondary index.
    pub fn create_index(
        &self,
        name: &str,
        table: &str,
        columns: &[String],
        unique: bool,
        kind: IndexKind,
    ) -> Result<()> {
        self.with_table_mut(table, |t| {
            let mut ords = Vec::with_capacity(columns.len());
            for c in columns {
                ords.push(t.schema().column_index(c).ok_or_else(|| {
                    CrowdError::Catalog(format!("column '{c}' not found in table '{table}'"))
                })?);
            }
            t.add_index(name, ords, kind, unique)
        })
    }

    /// Statistics for one table.
    pub fn stats(&self, table: &str) -> Result<TableStats> {
        self.with_table(table, |t| t.stats())
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().tables.keys().cloned().collect()
    }

    /// Apply one write-ahead-log record to this database.
    ///
    /// Returns `Ok(true)` when the record was a storage-level record
    /// (DDL, crowd-answer write-back, crowd-table tuple insertion) and was
    /// applied, `Ok(false)` when the record requires engine-level replay
    /// (logical DML, comparison-cache verdicts) and was left untouched.
    /// Recovery must apply records in log order.
    pub fn apply(&self, rec: &LogRecord) -> Result<bool> {
        match rec {
            LogRecord::Ddl { sql } => {
                let stmt = crowddb_sql::parse_statement(sql)
                    .map_err(|e| CrowdError::Io(format!("wal: bad DDL record '{sql}': {e}")))?;
                match stmt {
                    crowddb_sql::Statement::CreateTable(ct) => {
                        let schema = self.with_catalog(|c| c.schema_from_ast(&ct))?;
                        self.create_table(schema)?;
                    }
                    crowddb_sql::Statement::CreateIndex(ci) => {
                        self.create_index(
                            &ci.name,
                            &ci.table,
                            &ci.columns,
                            ci.unique,
                            IndexKind::BTree,
                        )?;
                    }
                    crowddb_sql::Statement::DropTable { name, if_exists } => {
                        self.drop_table(&name, if_exists)?;
                    }
                    other => {
                        return Err(CrowdError::Io(format!(
                            "wal: DDL record holds non-DDL statement '{other}'"
                        )))
                    }
                }
                Ok(true)
            }
            LogRecord::WriteBackValue {
                table,
                tid,
                col,
                value,
            } => {
                self.write_back_value(table, *tid, *col, value.clone())?;
                Ok(true)
            }
            LogRecord::WriteBackTuple { table, row } => {
                self.write_back_tuple(table, row.clone())?;
                Ok(true)
            }
            LogRecord::Dml { .. } | LogRecord::PutEqual { .. } | LogRecord::PutOrder { .. } => {
                Ok(false)
            }
        }
    }

    /// Serialize the whole database (schemas as DDL text + rows in the
    /// binary codec) into one buffer. Used for session persistence and
    /// memory-backed checkpoints; file-backed databases checkpoint via
    /// [`Database::begin_checkpoint`] instead, but can still produce this
    /// logical snapshot (it reads every row through the pool).
    ///
    /// Tuple ids and the slot high-water mark are preserved, so a
    /// restored database is *identical* to the source — including the ids
    /// that future write-ahead-log records will address — not merely
    /// equivalent row-content-wise. The byte format is independent of
    /// page size and pool budget.
    pub fn snapshot(&self) -> Result<Bytes> {
        let inner = self.inner.read();
        let mut buf = BytesMut::new();
        buf.put_slice(SNAPSHOT_MAGIC);
        buf.put_u32_le(inner.tables.len() as u32);
        for (name, table) in &inner.tables {
            let ddl = table.schema().to_ddl();
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            buf.put_u32_le(ddl.len() as u32);
            buf.put_slice(ddl.as_bytes());
            buf.put_u64_le(table.stats().total_slots as u64);
            let live = table.scan_rows()?;
            let mut rows_buf = BytesMut::new();
            rows_buf.put_u64_le(live.len() as u64);
            for (tid, row) in live {
                rows_buf.put_u64_le(tid.0);
                codec::encode_row(&mut rows_buf, &row);
            }
            buf.put_u64_le(rows_buf.len() as u64);
            buf.put_slice(rows_buf.chunk());
        }
        Ok(buf.freeze())
    }

    /// Restore an in-memory database from a [`Database::snapshot`]
    /// buffer.
    pub fn restore(snapshot: Bytes) -> Result<Database> {
        let mut buf = snapshot;
        let db = Database::new();
        if buf.remaining() < SNAPSHOT_MAGIC.len() + 4 {
            return Err(CrowdError::Internal("snapshot: truncated header".into()));
        }
        let magic = buf.copy_to_bytes(SNAPSHOT_MAGIC.len());
        if &magic[..] != SNAPSHOT_MAGIC {
            return Err(CrowdError::Internal(
                "snapshot: bad magic (not a CrowdDB v2 snapshot)".into(),
            ));
        }
        let n_tables = buf.get_u32_le();
        // Sanity: every entry needs at least 24 bytes of headers; a count
        // that can't fit in the buffer is corruption, not a large DB.
        if (n_tables as usize).saturating_mul(24) > buf.remaining() {
            return Err(CrowdError::Internal(format!(
                "snapshot: implausible table count {n_tables}"
            )));
        }
        // First pass: decode every table entry.
        let mut entries = Vec::with_capacity(n_tables as usize);
        for _ in 0..n_tables {
            let name = read_string(&mut buf)?;
            let ddl = read_string(&mut buf)?;
            if buf.remaining() < 16 {
                return Err(CrowdError::Internal(
                    "snapshot: truncated table header".into(),
                ));
            }
            let total_slots = buf.get_u64_le() as usize;
            let len = buf.get_u64_le() as usize;
            if buf.remaining() < len {
                return Err(CrowdError::Internal("snapshot: truncated rows".into()));
            }
            let rows_buf = buf.copy_to_bytes(len);
            entries.push((name, ddl, total_slots, rows_buf));
        }
        // Second pass: create tables, deferring any whose foreign-key
        // targets have not been registered yet (snapshot order is
        // alphabetical, not topological).
        let mut pending = entries;
        while !pending.is_empty() {
            let mut next_round = Vec::new();
            let mut progressed = false;
            for (name, ddl, total_slots, rows_buf) in pending {
                let stmt = crowddb_sql::parse_statement(&ddl).map_err(|e| {
                    CrowdError::Internal(format!("snapshot: bad DDL for '{name}': {e}"))
                })?;
                let crowddb_sql::Statement::CreateTable(ct) = stmt else {
                    return Err(CrowdError::Internal(format!(
                        "snapshot: DDL for '{name}' is not CREATE TABLE"
                    )));
                };
                match db.with_catalog(|c| c.schema_from_ast(&ct)) {
                    Ok(schema) => {
                        db.create_table(schema)?;
                        let mut rows = rows_buf.clone();
                        if rows.remaining() < 8 {
                            return Err(CrowdError::Internal(
                                "snapshot: truncated row count".into(),
                            ));
                        }
                        let n_rows = rows.get_u64_le();
                        db.with_table_mut(&name, |t| {
                            for _ in 0..n_rows {
                                if rows.remaining() < 8 {
                                    return Err(CrowdError::Internal(
                                        "snapshot: truncated tuple id".into(),
                                    ));
                                }
                                let tid = TupleId(rows.get_u64_le());
                                let row = codec::decode_row(&mut rows)?;
                                t.restore_at(tid, row)?;
                            }
                            t.pad_slots(total_slots);
                            Ok(())
                        })?;
                        progressed = true;
                    }
                    Err(CrowdError::Catalog(msg)) if msg.contains("unknown table") => {
                        next_round.push((name, ddl, total_slots, rows_buf));
                    }
                    Err(e) => return Err(e),
                }
            }
            if !progressed && !next_round.is_empty() {
                return Err(CrowdError::Internal(
                    "snapshot: circular or dangling foreign keys".into(),
                ));
            }
            pending = next_round;
        }
        Ok(db)
    }
}

struct MetaIndex {
    name: String,
    columns: Vec<usize>,
    kind: IndexKind,
    unique: bool,
    root: u64,
}

struct MetaTable {
    name: String,
    ddl: String,
    total_slots: u64,
    live_rows: usize,
    cnull_values: usize,
    primary_root: u64,
    indexes: Vec<MetaIndex>,
}

struct Meta {
    epoch: u64,
    page_size: usize,
    page_count: u64,
    free: Vec<u64>,
    tables: Vec<MetaTable>,
}

fn encode_meta(pager: &Pager, inner: &Inner, epoch: u64) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(META_MAGIC);
    buf.put_u64_le(epoch);
    buf.put_u32_le(pager.page_size() as u32);
    let (free, page_count) = pager.alloc_state();
    buf.put_u64_le(page_count);
    buf.put_u64_le(free.len() as u64);
    for id in free {
        buf.put_u64_le(id);
    }
    buf.put_u32_le(inner.tables.len() as u32);
    for (name, table) in &inner.tables {
        let ddl = table.schema().to_ddl();
        put_string(&mut buf, name);
        put_string(&mut buf, &ddl);
        let stats = table.stats();
        buf.put_u64_le(stats.total_slots as u64);
        buf.put_u64_le(stats.live_rows as u64);
        buf.put_u64_le(stats.cnull_values as u64);
        buf.put_u64_le(table.primary_root());
        buf.put_u32_le(table.indexes().len() as u32);
        for idx in table.indexes() {
            put_string(&mut buf, &idx.name);
            buf.put_u32_le(idx.columns.len() as u32);
            for &c in &idx.columns {
                buf.put_u32_le(c as u32);
            }
            buf.put_u8(match idx.kind() {
                IndexKind::Hash => 0,
                IndexKind::BTree => 1,
            });
            buf.put_u8(idx.unique as u8);
            buf.put_u64_le(idx.root());
        }
    }
    buf.freeze()
}

fn decode_meta(bytes: &[u8]) -> Result<Meta> {
    let mut buf = Bytes::copy_from_slice(bytes);
    let fail = |what: &str| CrowdError::Internal(format!("meta: truncated ({what})"));
    if buf.remaining() < META_MAGIC.len() {
        return Err(fail("magic"));
    }
    let magic = buf.copy_to_bytes(META_MAGIC.len());
    if &magic[..] != META_MAGIC {
        return Err(CrowdError::Internal(
            "meta: bad magic (not a CrowdDB paged-metadata snapshot)".into(),
        ));
    }
    if buf.remaining() < 8 + 4 + 8 + 8 {
        return Err(fail("header"));
    }
    let epoch = buf.get_u64_le();
    let page_size = buf.get_u32_le() as usize;
    let page_count = buf.get_u64_le();
    let n_free = buf.get_u64_le() as usize;
    if buf.remaining() < n_free * 8 {
        return Err(fail("free list"));
    }
    let mut free = Vec::with_capacity(n_free);
    for _ in 0..n_free {
        free.push(buf.get_u64_le());
    }
    if buf.remaining() < 4 {
        return Err(fail("table count"));
    }
    let n_tables = buf.get_u32_le();
    let mut tables = Vec::with_capacity(n_tables as usize);
    for _ in 0..n_tables {
        let name = read_string(&mut buf)?;
        let ddl = read_string(&mut buf)?;
        if buf.remaining() < 8 * 4 + 4 {
            return Err(fail("table header"));
        }
        let total_slots = buf.get_u64_le();
        let live_rows = buf.get_u64_le() as usize;
        let cnull_values = buf.get_u64_le() as usize;
        let primary_root = buf.get_u64_le();
        let n_indexes = buf.get_u32_le();
        let mut indexes = Vec::with_capacity(n_indexes as usize);
        for _ in 0..n_indexes {
            let iname = read_string(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(fail("index columns"));
            }
            let n_cols = buf.get_u32_le() as usize;
            if buf.remaining() < n_cols * 4 + 2 + 8 {
                return Err(fail("index body"));
            }
            let mut columns = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                columns.push(buf.get_u32_le() as usize);
            }
            let kind = match buf.get_u8() {
                0 => IndexKind::Hash,
                1 => IndexKind::BTree,
                other => {
                    return Err(CrowdError::Internal(format!(
                        "meta: unknown index kind {other}"
                    )))
                }
            };
            let unique = buf.get_u8() != 0;
            let root = buf.get_u64_le();
            indexes.push(MetaIndex {
                name: iname,
                columns,
                kind,
                unique,
                root,
            });
        }
        tables.push(MetaTable {
            name,
            ddl,
            total_slots,
            live_rows,
            cnull_values,
            primary_root,
            indexes,
        });
    }
    Ok(Meta {
        epoch,
        page_size,
        page_count,
        free,
        tables,
    })
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn read_string(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(CrowdError::Internal(
            "snapshot: truncated string len".into(),
        ));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(CrowdError::Internal("snapshot: truncated string".into()));
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec())
        .map_err(|e| CrowdError::Internal(format!("snapshot: invalid utf8: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::{row, ColumnDef, DataType};

    fn talk_db() -> Database {
        let db = Database::new();
        let schema = TableSchema::new(
            "talk",
            vec![
                ColumnDef::new("title", DataType::Str),
                ColumnDef::new("abstract", DataType::Str).crowd(),
                ColumnDef::new("nb_attendees", DataType::Int).crowd(),
            ],
        )
        .unwrap()
        .with_primary_key(&["title"])
        .unwrap();
        db.create_table(schema).unwrap();
        db
    }

    #[test]
    fn create_insert_query() {
        let db = talk_db();
        db.insert("talk", row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        let n = db
            .with_table("talk", |t| t.scan_rows().map(|r| r.len()))
            .unwrap()
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.stats("talk").unwrap().cnull_values, 2);
    }

    #[test]
    fn drop_table_semantics() {
        let db = talk_db();
        db.drop_table("TALK", false).unwrap();
        assert!(db.drop_table("talk", false).is_err());
        db.drop_table("talk", true).unwrap(); // IF EXISTS
        assert!(db.schema("talk").is_err());
    }

    #[test]
    fn drop_table_releases_pages() {
        let db = talk_db();
        for i in 0..32 {
            db.insert("talk", row![format!("t{i}"), Value::CNull, Value::CNull])
                .unwrap();
        }
        db.drop_table("talk", false).unwrap();
        // Recreating and refilling reuses the freed pages: total page
        // count must not keep growing across create/fill/drop cycles.
        let mut counts = Vec::new();
        for _ in 0..3 {
            let schema = TableSchema::new(
                "talk",
                vec![
                    ColumnDef::new("title", DataType::Str),
                    ColumnDef::new("abstract", DataType::Str).crowd(),
                    ColumnDef::new("nb_attendees", DataType::Int).crowd(),
                ],
            )
            .unwrap()
            .with_primary_key(&["title"])
            .unwrap();
            db.create_table(schema).unwrap();
            for i in 0..32 {
                db.insert("talk", row![format!("t{i}"), Value::CNull, Value::CNull])
                    .unwrap();
            }
            db.drop_table("talk", false).unwrap();
            counts.push(db.pager_stats());
        }
        let _ = counts;
    }

    #[test]
    fn write_back_value_clears_cnull() {
        let db = talk_db();
        let tid = db
            .insert("talk", row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        db.write_back_value("talk", tid, 1, Value::str("the abstract"))
            .unwrap();
        assert_eq!(db.stats("talk").unwrap().cnull_values, 1);
    }

    #[test]
    fn write_back_tuple_dedupes_by_pk() {
        let db = talk_db();
        let t1 = db
            .write_back_tuple("talk", row!["CrowdDB", "a", 1i64])
            .unwrap();
        assert!(t1.is_some());
        // A second worker contributes the same key: silently deduped.
        let t2 = db
            .write_back_tuple("talk", row!["CrowdDB", "b", 2i64])
            .unwrap();
        assert!(t2.is_none());
        // First answer wins.
        let v = db
            .with_table("talk", |t| {
                t.get(t1.unwrap()).map(|r| r.unwrap()[1].clone())
            })
            .unwrap()
            .unwrap();
        assert_eq!(v, Value::str("a"));
    }

    #[test]
    fn write_back_tuple_propagates_other_errors() {
        let db = talk_db();
        let err = db
            .write_back_tuple("talk", row!["x", "a", "not an int"])
            .unwrap_err();
        assert_eq!(err.category(), "constraint");
    }

    #[test]
    fn create_index_by_name() {
        let db = talk_db();
        db.insert("talk", row!["a", "x", 10i64]).unwrap();
        db.create_index(
            "talk_att",
            "talk",
            &["nb_attendees".into()],
            false,
            IndexKind::BTree,
        )
        .unwrap();
        let found = db
            .with_table("talk", |t| t.index_on(&[2]).is_some())
            .unwrap();
        assert!(found);
        assert!(db
            .create_index("bad", "talk", &["nope".into()], false, IndexKind::Hash)
            .is_err());
    }

    #[test]
    fn foreign_keys_get_automatic_indexes() {
        let db = talk_db();
        let schema = db
            .with_catalog(|c| {
                let stmt = crowddb_sql::parse_statement(
                    "CREATE CROWD TABLE attendee (name STRING PRIMARY KEY, talk_title STRING, \
                     FOREIGN KEY (talk_title) REFERENCES talk(title))",
                )
                .unwrap();
                let crowddb_sql::Statement::CreateTable(ct) = stmt else {
                    unreachable!()
                };
                c.schema_from_ast(&ct)
            })
            .unwrap();
        db.create_table(schema).unwrap();
        let (has_fk_idx, ordered) = db
            .with_table("attendee", |t| {
                let idx = t.index_on(&[1]);
                (idx.is_some(), idx.map(|i| i.ordered()).unwrap_or(false))
            })
            .unwrap();
        assert!(has_fk_idx, "single-column FK gets an automatic index");
        assert!(ordered, "FK auto-index is a B-tree");
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new();
        assert!(db.insert("ghost", row![1i64]).is_err());
        assert!(db.stats("ghost").is_err());
        assert!(db.schema("ghost").is_err());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let db = talk_db();
        db.insert("talk", row!["CrowdDB", Value::CNull, Value::CNull])
            .unwrap();
        db.insert("talk", row!["Qurk", "demo abstract", 75i64])
            .unwrap();
        let snap = db.snapshot().unwrap();

        let restored = Database::restore(snap).unwrap();
        assert_eq!(restored.table_names(), vec!["talk".to_string()]);
        let schema = restored.schema("talk").unwrap();
        assert_eq!(schema.crowd_columns(), vec![1, 2]);
        assert_eq!(schema.primary_key, vec![0]);
        let rows = restored
            .with_table("talk", |t| t.scan_rows())
            .unwrap()
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1[0], Value::str("CrowdDB"));
        assert!(rows[0].1[1].is_cnull());
        // PK index restored too.
        let hits = restored
            .with_table("talk", |t| t.lookup_pk(&[Value::str("Qurk")]))
            .unwrap()
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn snapshot_bytes_independent_of_pool_size() {
        let build = |pool_pages: usize| {
            let db = Database::new_with_config(PagerConfig {
                page_size: 256,
                pool_pages,
            })
            .unwrap();
            let schema = TableSchema::new(
                "talk",
                vec![
                    ColumnDef::new("title", DataType::Str),
                    ColumnDef::new("abstract", DataType::Str).crowd(),
                    ColumnDef::new("nb_attendees", DataType::Int).crowd(),
                ],
            )
            .unwrap()
            .with_primary_key(&["title"])
            .unwrap();
            db.create_table(schema).unwrap();
            for i in 0..64 {
                db.insert("talk", row![format!("t{i:03}"), Value::CNull, i as i64])
                    .unwrap();
            }
            db.write_back_value("talk", TupleId(5), 1, Value::str("filled"))
                .unwrap();
            assert!(db.with_table_mut("talk", |t| t.delete(TupleId(9))).unwrap());
            db.snapshot().unwrap()
        };
        assert_eq!(build(0), build(4), "pool budget must not affect bytes");
    }

    #[test]
    fn snapshot_of_empty_db() {
        let db = Database::new();
        let restored = Database::restore(db.snapshot().unwrap()).unwrap();
        assert!(restored.table_names().is_empty());
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(Database::restore(Bytes::from_static(b"nonsense")).is_err());
        assert!(Database::restore(Bytes::new()).is_err());
    }

    #[test]
    fn paged_meta_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!(
            "crowddb-db-meta-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let cfg = PagerConfig {
            page_size: 256,
            pool_pages: 0,
        };
        let meta;
        {
            let db = Database::open_file(&dir, cfg).unwrap();
            let schema = TableSchema::new(
                "talk",
                vec![
                    ColumnDef::new("title", DataType::Str),
                    ColumnDef::new("abstract", DataType::Str).crowd(),
                    ColumnDef::new("nb_attendees", DataType::Int).crowd(),
                ],
            )
            .unwrap()
            .with_primary_key(&["title"])
            .unwrap();
            db.create_table(schema).unwrap();
            for i in 0..32 {
                db.insert("talk", row![format!("t{i}"), Value::CNull, i as i64])
                    .unwrap();
            }
            let (prep, m) = db.begin_checkpoint().unwrap();
            db.complete_checkpoint(&prep).unwrap();
            assert!(prep.pages_written() > 0);
            assert_eq!(db.dirty_pages(), 0);
            meta = m;
        }
        let db = Database::open_paged(&dir, cfg, &meta).unwrap();
        assert_eq!(db.stats("talk").unwrap().live_rows, 32);
        let rows = db.with_table("talk", |t| t.scan_rows()).unwrap().unwrap();
        assert_eq!(rows.len(), 32);
        assert_eq!(rows[7].1[0], Value::str("t7"));
        let hits = db
            .with_table("talk", |t| t.lookup_pk(&[Value::str("t3")]))
            .unwrap()
            .unwrap();
        assert_eq!(hits.len(), 1);
        // A checkpoint after a single-row DML flushes only the pages that
        // DML touched, not the whole database.
        let total_pages = db.pager.alloc_state().1;
        db.write_back_value("talk", TupleId(0), 1, Value::str("x"))
            .unwrap();
        let (prep, _meta2) = db.begin_checkpoint().unwrap();
        db.complete_checkpoint(&prep).unwrap();
        assert!(
            prep.pages_written() < total_pages / 2,
            "1-row DML flushed {} of {} pages",
            prep.pages_written(),
            total_pages
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_readers() {
        use std::sync::Arc as StdArc;
        let db = StdArc::new(talk_db());
        for i in 0..64 {
            db.insert("talk", row![format!("t{i}"), Value::CNull, Value::CNull])
                .unwrap();
        }
        let mut handles = Vec::new();
        for _ in 0..8 {
            let db = StdArc::clone(&db);
            handles.push(std::thread::spawn(move || {
                db.with_table("talk", |t| t.scan_rows().unwrap().len())
                    .unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 64);
        }
    }
}
