//! The catalog: name → schema mapping and DDL translation.

use std::collections::BTreeMap;

use crowddb_common::{ColumnDef, CrowdError, ForeignKey, Result, TableId, TableSchema};
use crowddb_sql::{CreateTable, TableConstraint};

/// Catalog of table schemas.
///
/// The catalog is the compile-time view of the database: the binder and
/// optimizer consult it for name resolution, CROWD annotations, and key
/// information. Tables are kept in a `BTreeMap` so enumeration order is
/// deterministic.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, (TableId, TableSchema)>,
    next_id: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a schema, assigning a fresh table id.
    pub fn register(&mut self, schema: TableSchema) -> Result<TableId> {
        if self.tables.contains_key(&schema.name) {
            return Err(CrowdError::Catalog(format!(
                "table '{}' already exists",
                schema.name
            )));
        }
        let id = TableId(self.next_id);
        self.next_id += 1;
        self.tables.insert(schema.name.clone(), (id, schema));
        Ok(id)
    }

    /// Remove a table. Returns its schema if it existed.
    pub fn remove(&mut self, name: &str) -> Option<TableSchema> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .map(|(_, s)| s)
    }

    /// Look up a schema by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(&name.to_ascii_lowercase()).map(|(_, s)| s)
    }

    /// Look up a table id by name.
    pub fn id_of(&self, name: &str) -> Option<TableId> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|(id, _)| *id)
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Iterate over all schemas in name order.
    pub fn schemas(&self) -> impl Iterator<Item = &TableSchema> {
        self.tables.values().map(|(_, s)| s)
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Translate a parsed `CREATE [CROWD] TABLE` statement into a
    /// [`TableSchema`], validating constraints against the catalog
    /// (foreign keys must reference existing tables and columns).
    pub fn schema_from_ast(&self, ct: &CreateTable) -> Result<TableSchema> {
        let mut columns = Vec::with_capacity(ct.columns.len());
        let mut inline_pk: Option<String> = None;
        for c in &ct.columns {
            let mut def = ColumnDef::new(&c.name, c.data_type);
            if c.crowd {
                def = def.crowd();
            }
            if c.not_null {
                def = def.not_null();
            }
            if c.primary_key {
                if inline_pk.is_some() {
                    return Err(CrowdError::Catalog(format!(
                        "table '{}' declares multiple inline primary keys",
                        ct.name
                    )));
                }
                inline_pk = Some(c.name.clone());
            }
            columns.push(def);
        }
        let mut schema = TableSchema::new(&ct.name, columns)?;
        if ct.crowd {
            schema = schema.crowd();
        }
        let mut pk_names: Vec<String> = inline_pk.into_iter().collect();
        for cons in &ct.constraints {
            match cons {
                TableConstraint::PrimaryKey(cols) => {
                    if !pk_names.is_empty() {
                        return Err(CrowdError::Catalog(format!(
                            "table '{}' declares multiple primary keys",
                            ct.name
                        )));
                    }
                    pk_names = cols.clone();
                }
                TableConstraint::ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                } => {
                    let referenced = self.get(ref_table).ok_or_else(|| {
                        CrowdError::Catalog(format!(
                            "foreign key in '{}' references unknown table '{ref_table}'",
                            ct.name
                        ))
                    })?;
                    for rc in ref_columns {
                        if referenced.column_index(rc).is_none() {
                            return Err(CrowdError::Catalog(format!(
                                "foreign key in '{}' references unknown column '{ref_table}.{rc}'",
                                ct.name
                            )));
                        }
                    }
                    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
                    let ref_refs: Vec<&str> = ref_columns.iter().map(String::as_str).collect();
                    schema = schema.with_foreign_key(&col_refs, ref_table, &ref_refs)?;
                }
            }
        }
        if !pk_names.is_empty() {
            let refs: Vec<&str> = pk_names.iter().map(String::as_str).collect();
            schema = schema.with_primary_key(&refs)?;
        }
        // A CROWD table must have a primary key: the paper's quality
        // control dedupes crowdsourced tuples by key, and without one the
        // open-world semantics cannot detect duplicate answers.
        if schema.crowd_table && schema.primary_key.is_empty() {
            return Err(CrowdError::Catalog(format!(
                "CROWD table '{}' must declare a PRIMARY KEY (used to deduplicate \
                 crowdsourced tuples)",
                schema.name
            )));
        }
        Ok(schema)
    }

    /// Foreign keys of `from_table` that reference `to_table`.
    pub fn fks_between(&self, from_table: &str, to_table: &str) -> Vec<&ForeignKey> {
        match self.get(from_table) {
            Some(s) => s
                .foreign_keys
                .iter()
                .filter(|fk| fk.ref_table == to_table.to_ascii_lowercase())
                .collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::DataType;
    use crowddb_sql::parse_statement;

    fn create(catalog: &mut Catalog, sql: &str) -> Result<TableId> {
        let stmt = parse_statement(sql).unwrap();
        let crowddb_sql::Statement::CreateTable(ct) = stmt else {
            panic!("not a create table")
        };
        let schema = catalog.schema_from_ast(&ct)?;
        catalog.register(schema)
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        create(
            &mut c,
            "CREATE TABLE Talk (title STRING PRIMARY KEY, abstract CROWD STRING)",
        )
        .unwrap();
        assert!(c.contains("TALK"));
        let s = c.get("talk").unwrap();
        assert_eq!(s.crowd_columns(), vec![1]);
        assert_eq!(s.primary_key, vec![0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::new();
        create(&mut c, "CREATE TABLE t (a INTEGER)").unwrap();
        let err = create(&mut c, "CREATE TABLE T (b STRING)").unwrap_err();
        assert_eq!(err.category(), "catalog");
    }

    #[test]
    fn fk_requires_existing_table_and_column() {
        let mut c = Catalog::new();
        let err = create(
            &mut c,
            "CREATE CROWD TABLE n (name STRING PRIMARY KEY, title STRING, \
             FOREIGN KEY (title) REF talk(title))",
        )
        .unwrap_err();
        assert!(err.message().contains("unknown table"), "{err}");

        create(&mut c, "CREATE TABLE talk (title STRING PRIMARY KEY)").unwrap();
        let err = create(
            &mut c,
            "CREATE CROWD TABLE n (name STRING PRIMARY KEY, title STRING, \
             FOREIGN KEY (title) REF talk(nope))",
        )
        .unwrap_err();
        assert!(err.message().contains("unknown column"), "{err}");

        create(
            &mut c,
            "CREATE CROWD TABLE n (name STRING PRIMARY KEY, title STRING, \
             FOREIGN KEY (title) REF talk(title))",
        )
        .unwrap();
        assert_eq!(c.fks_between("n", "talk").len(), 1);
        assert!(c.fks_between("talk", "n").is_empty());
    }

    #[test]
    fn crowd_table_requires_pk() {
        let mut c = Catalog::new();
        let err = create(&mut c, "CREATE CROWD TABLE n (name STRING)").unwrap_err();
        assert!(err.message().contains("PRIMARY KEY"), "{err}");
    }

    #[test]
    fn table_level_pk() {
        let mut c = Catalog::new();
        create(
            &mut c,
            "CREATE TABLE t (a INTEGER, b STRING, PRIMARY KEY (a, b))",
        )
        .unwrap();
        assert_eq!(c.get("t").unwrap().primary_key, vec![0, 1]);
    }

    #[test]
    fn double_pk_rejected() {
        let mut c = Catalog::new();
        let err = create(
            &mut c,
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b STRING, PRIMARY KEY (b))",
        )
        .unwrap_err();
        assert!(err.message().contains("multiple primary keys"), "{err}");
    }

    #[test]
    fn remove_table() {
        let mut c = Catalog::new();
        create(&mut c, "CREATE TABLE t (a INTEGER)").unwrap();
        assert!(c.remove("T").is_some());
        assert!(c.remove("t").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn schemas_enumerated_in_name_order() {
        let mut c = Catalog::new();
        create(&mut c, "CREATE TABLE zeta (a INTEGER)").unwrap();
        create(&mut c, "CREATE TABLE alpha (a INTEGER)").unwrap();
        let names: Vec<&str> = c.schemas().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }

    #[test]
    fn data_types_translated() {
        let mut c = Catalog::new();
        create(
            &mut c,
            "CREATE TABLE t (a INTEGER, b STRING, c FLOAT, d BOOLEAN)",
        )
        .unwrap();
        let s = c.get("t").unwrap();
        assert_eq!(s.columns[0].data_type, DataType::Int);
        assert_eq!(s.columns[1].data_type, DataType::Str);
        assert_eq!(s.columns[2].data_type, DataType::Float);
        assert_eq!(s.columns[3].data_type, DataType::Bool);
    }
}
