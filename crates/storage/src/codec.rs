//! Compact binary row codec.
//!
//! Used by [`Database::snapshot`](crate::Database::snapshot) to serialize
//! table contents, and by tests as a stable wire format for rows. The
//! encoding is self-describing per value (1 type tag byte + payload), so a
//! row can be decoded without schema information.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crowddb_common::{CrowdError, Result, Row, Value};

const TAG_NULL: u8 = 0;
const TAG_CNULL: u8 = 1;
const TAG_BOOL_FALSE: u8 = 2;
const TAG_BOOL_TRUE: u8 = 3;
const TAG_INT: u8 = 4;
const TAG_FLOAT: u8 = 5;
const TAG_STR: u8 = 6;

/// Append one value to `buf`.
pub fn encode_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::CNull => buf.put_u8(TAG_CNULL),
        Value::Bool(false) => buf.put_u8(TAG_BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*i);
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        }
    }
}

/// Decode one value from `buf`, advancing it.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    if !buf.has_remaining() {
        return Err(CrowdError::Internal("codec: empty buffer".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_CNULL => Value::CNull,
        TAG_BOOL_FALSE => Value::Bool(false),
        TAG_BOOL_TRUE => Value::Bool(true),
        TAG_INT => {
            if buf.remaining() < 8 {
                return Err(CrowdError::Internal("codec: truncated int".into()));
            }
            Value::Int(buf.get_i64_le())
        }
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(CrowdError::Internal("codec: truncated float".into()));
            }
            Value::Float(buf.get_f64_le())
        }
        TAG_STR => {
            if buf.remaining() < 4 {
                return Err(CrowdError::Internal(
                    "codec: truncated string length".into(),
                ));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(CrowdError::Internal("codec: truncated string body".into()));
            }
            let bytes = buf.copy_to_bytes(len);
            let s = std::str::from_utf8(&bytes)
                .map_err(|e| CrowdError::Internal(format!("codec: invalid utf8: {e}")))?;
            Value::Str(s.to_string())
        }
        other => {
            return Err(CrowdError::Internal(format!(
                "codec: unknown value tag {other}"
            )))
        }
    })
}

/// Encode a row: u32 arity followed by each value.
pub fn encode_row(buf: &mut BytesMut, row: &Row) {
    buf.put_u32_le(row.arity() as u32);
    for v in row.values() {
        encode_value(buf, v);
    }
}

/// Decode a row previously written by [`encode_row`].
pub fn decode_row(buf: &mut Bytes) -> Result<Row> {
    if buf.remaining() < 4 {
        return Err(CrowdError::Internal("codec: truncated row arity".into()));
    }
    let arity = buf.get_u32_le() as usize;
    // Cap the pre-allocation: a corrupted arity must fail in decode, not
    // in the allocator.
    let mut values = Vec::with_capacity(arity.min(1 << 16));
    for _ in 0..arity {
        values.push(decode_value(buf)?);
    }
    Ok(Row::new(values))
}

/// Encode many rows into a standalone buffer.
pub fn encode_rows(rows: &[Row]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(rows.len() as u64);
    for r in rows {
        encode_row(&mut buf, r);
    }
    buf.freeze()
}

/// Decode a buffer written by [`encode_rows`].
pub fn decode_rows(mut buf: Bytes) -> Result<Vec<Row>> {
    if buf.remaining() < 8 {
        return Err(CrowdError::Internal("codec: truncated row count".into()));
    }
    let n = buf.get_u64_le() as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        rows.push(decode_row(&mut buf)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::row;

    fn round_trip(v: Value) {
        let mut buf = BytesMut::new();
        encode_value(&mut buf, &v);
        let mut bytes = buf.freeze();
        let back = decode_value(&mut bytes).unwrap();
        assert_eq!(v, back);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn value_round_trips() {
        round_trip(Value::Null);
        round_trip(Value::CNull);
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::Int(i64::MIN));
        round_trip(Value::Int(i64::MAX));
        round_trip(Value::Float(-0.0));
        round_trip(Value::Float(1.5e300));
        round_trip(Value::str(""));
        round_trip(Value::str("héllo wörld 🦀"));
    }

    #[test]
    fn row_round_trips() {
        let r = row![1i64, "abc", Value::CNull, true, 2.5f64, Value::Null];
        let bytes = encode_rows(std::slice::from_ref(&r));
        let rows = decode_rows(bytes).unwrap();
        assert_eq!(rows, vec![r]);
    }

    #[test]
    fn many_rows_round_trip() {
        let rows: Vec<Row> = (0..100)
            .map(|i| row![i as i64, format!("row-{i}"), i % 2 == 0])
            .collect();
        let bytes = encode_rows(&rows);
        assert_eq!(decode_rows(bytes).unwrap(), rows);
    }

    #[test]
    fn truncated_buffers_error_not_panic() {
        let r = row![123i64, "some string value"];
        let full = {
            let mut b = BytesMut::new();
            encode_row(&mut b, &r);
            b.freeze()
        };
        for cut in 0..full.len() {
            let mut trunc = full.slice(..cut);
            // Every prefix must either fail cleanly or decode a shorter row,
            // never panic.
            let _ = decode_row(&mut trunc);
        }
    }

    #[test]
    fn short_reads_error_for_every_value_kind() {
        for v in [Value::Int(42), Value::Float(2.5), Value::str("abcdef")] {
            let mut b = BytesMut::new();
            encode_value(&mut b, &v);
            let full = b.freeze();
            for cut in 1..full.len() {
                let mut trunc = full.slice(..cut);
                assert!(
                    decode_value(&mut trunc).is_err(),
                    "cut {cut} of {v:?} must be a clean error"
                );
            }
        }
    }

    #[test]
    fn invalid_utf8_string_is_error() {
        let mut b = BytesMut::new();
        b.put_u8(TAG_STR);
        b.put_u32_le(2);
        b.put_slice(&[0xff, 0xfe]);
        let mut bytes = b.freeze();
        assert!(decode_value(&mut bytes).is_err());
    }

    #[test]
    fn declared_length_beyond_buffer_is_error() {
        let mut b = BytesMut::new();
        b.put_u8(TAG_STR);
        b.put_u32_le(1000); // body is absent
        let mut bytes = b.freeze();
        assert!(decode_value(&mut bytes).is_err());
    }

    #[test]
    fn unknown_tag_is_error() {
        let mut b = Bytes::from_static(&[99u8]);
        assert!(decode_value(&mut b).is_err());
    }

    #[test]
    fn empty_rows_buffer() {
        let bytes = encode_rows(&[]);
        assert_eq!(decode_rows(bytes).unwrap(), Vec::<Row>::new());
    }
}
