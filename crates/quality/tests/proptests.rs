//! Property tests for the quality-control primitives, driven by a small
//! hand-rolled splitmix64 generator so they run with zero external
//! dependencies and are reproducible by seed.
//!
//! Properties:
//!
//! * majority voting is **permutation-invariant**: the outcome does not
//!   depend on the order ballots arrive in;
//! * a decided vote never returns a value **outside the candidate set**;
//! * normalization is **idempotent** for every normalizer preset;
//! * Borda rank aggregation is **total** (a permutation of `0..n`);
//! * pairwise majorities and Kendall tau are **antisymmetric**;
//! * EM truth inference is **permutation-invariant** in both ballot and
//!   task order, **reduces to majority vote** at zero iterations,
//!   always yields **normalized, finite posteriors**, and is a
//!   **fixed point** of its own refinement.

use std::collections::HashMap;

use crowddb_common::Value;
use crowddb_quality::infer::{infer, refine, TaskBallots};
use crowddb_quality::rank::{kendall_tau, PairwiseVotes};
use crowddb_quality::{EmConfig, MajorityVote, Normalizer, VoteConfig, VoteOutcome};

/// splitmix64 — tiny, seedable, and plenty random for test-case
/// generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

/// A random ballot multiset over a small key alphabet. The stored value
/// is derived from the key, mirroring how the normalizer feeds the vote
/// (one canonical key → one stored value).
fn random_ballots(rng: &mut Rng) -> Vec<(String, Value)> {
    let n = 1 + rng.below(12);
    (0..n)
        .map(|_| {
            let key = format!("key-{}", rng.below(5));
            let stored = Value::str(key.to_uppercase());
            (key, stored)
        })
        .collect()
}

fn random_vote_config(rng: &mut Rng) -> VoteConfig {
    VoteConfig {
        replication: 1 + rng.below(5),
        max_escalations: rng.below(4),
    }
}

fn tally(ballots: &[(String, Value)]) -> MajorityVote {
    let mut vote = MajorityVote::new();
    for (key, stored) in ballots {
        vote.add(key.clone(), stored.clone());
    }
    vote
}

#[test]
fn vote_outcome_is_permutation_invariant() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..300 {
        let ballots = random_ballots(&mut rng);
        let config = random_vote_config(&mut rng);
        let baseline = tally(&ballots).outcome(&config);
        let mut shuffled = ballots.clone();
        rng.shuffle(&mut shuffled);
        let outcome = tally(&shuffled).outcome(&config);
        assert_eq!(
            outcome, baseline,
            "ballot order changed the outcome: {ballots:?} vs {shuffled:?}"
        );
    }
}

#[test]
fn decided_vote_never_leaves_the_candidate_set() {
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..300 {
        let ballots = random_ballots(&mut rng);
        let config = random_vote_config(&mut rng);
        if let VoteOutcome::Decided {
            value,
            votes,
            total,
        } = tally(&ballots).outcome(&config)
        {
            assert!(
                ballots.iter().any(|(_, stored)| *stored == value),
                "winner {value:?} was never a ballot in {ballots:?}"
            );
            assert!(votes * 2 > total, "majority must be strict");
            assert_eq!(total, ballots.len());
        }
    }
}

#[test]
fn normalize_is_idempotent() {
    let mut rng = Rng::new(0xDECADE);
    let alphabet: Vec<char> = "aAbBzZ019 \t\n.,;:!?'\"()[]{}éÉßΣσ-_/#".chars().collect();
    let normalizers = [
        Normalizer::new(),
        Normalizer::for_entities(),
        Normalizer {
            case_fold: false,
            collapse_whitespace: true,
            strip_punctuation: true,
        },
    ];
    for _ in 0..300 {
        let len = rng.below(24);
        let raw: String = (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect();
        for n in &normalizers {
            let once = n.normalize(&raw);
            let twice = n.normalize(&once);
            assert_eq!(once, twice, "not idempotent on {raw:?}");
        }
    }
}

#[test]
fn borda_ranking_is_a_total_order() {
    let mut rng = Rng::new(0xFACADE);
    for _ in 0..200 {
        let n = 2 + rng.below(9);
        let mut pv = PairwiseVotes::new();
        for _ in 0..rng.below(40) {
            let a = rng.below(n);
            let b = rng.below(n);
            if a != b {
                pv.record(a, b);
            }
        }
        let ranking = pv.borda_ranking(n);
        assert_eq!(ranking.len(), n, "ranking must cover every item");
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..n).collect::<Vec<_>>(),
            "ranking must be a permutation of 0..{n}"
        );
    }
}

#[test]
fn pairwise_majorities_are_antisymmetric() {
    let mut rng = Rng::new(0xABBA);
    for _ in 0..200 {
        let n = 2 + rng.below(6);
        let mut pv = PairwiseVotes::new();
        let mut flipped = PairwiseVotes::new();
        let mut counts: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        for _ in 0..1 + rng.below(30) {
            let a = rng.below(n);
            let b = rng.below(n);
            if a == b {
                continue;
            }
            pv.record(a, b);
            flipped.record(b, a);
            let key = (a.min(b), a.max(b));
            let e = counts.entry(key).or_insert((0, 0));
            if a < b {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        for (&(a, b), &(wa, wb)) in &counts {
            // winner() is order-of-arguments symmetric...
            assert_eq!(pv.winner(a, b), pv.winner(b, a));
            if wa != wb {
                // ...and a strict majority flips when every ballot flips.
                let w = pv.winner(a, b).unwrap();
                let w_flipped = flipped.winner(a, b).unwrap();
                assert_ne!(w, w_flipped, "strict winner must flip: pair ({a},{b})");
                assert_eq!(w, if wa > wb { a } else { b });
            } else {
                // Exact ties break to the smaller index either way.
                assert_eq!(pv.winner(a, b), Some(a));
                assert_eq!(flipped.winner(a, b), Some(a));
            }
        }
    }
}

#[test]
fn kendall_tau_is_antisymmetric_under_reversal() {
    let mut rng = Rng::new(0x5EED);
    for _ in 0..200 {
        let n = 2 + rng.below(10);
        let mut a: Vec<usize> = (0..n).collect();
        let mut b: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut a);
        rng.shuffle(&mut b);
        let tau = kendall_tau(&a, &b);
        assert!((-1.0..=1.0).contains(&tau), "tau out of range: {tau}");
        assert!(
            (kendall_tau(&a, &a) - 1.0).abs() < 1e-12,
            "self-correlation must be 1"
        );
        // Reversing one ranking flips every pairwise order, so tau negates.
        let reversed: Vec<usize> = b.iter().rev().copied().collect();
        let tau_rev = kendall_tau(&a, &reversed);
        assert!(
            (tau + tau_rev).abs() < 1e-12,
            "tau({a:?}, {b:?}) = {tau} but reversed gives {tau_rev}"
        );
    }
}

/// A random round of EM tasks: 1–6 tasks, each with 1–7 ballots cast by
/// workers drawn from a pool of 6 over a 4-key alphabet. Worker identity
/// repeats across tasks, so reliability estimation has signal to chew on.
fn random_tasks(rng: &mut Rng) -> Vec<TaskBallots> {
    let n_tasks = 1 + rng.below(6);
    (0..n_tasks)
        .map(|_| {
            let n = 1 + rng.below(7);
            (0..n)
                .map(|_| (rng.below(6) as u64, format!("key-{}", rng.below(4))))
                .collect()
        })
        .collect()
}

#[test]
fn em_is_permutation_invariant() {
    // Shuffling ballot arrival order within tasks AND reordering whole
    // tasks must not change posterior mass or reliability beyond float
    // roundoff (summation order moves the last bits) — the model
    // conditions on the multiset of (worker, key) ballots.
    let mut rng = Rng::new(0xE31);
    let cfg = EmConfig::default();
    for _ in 0..150 {
        let tasks = random_tasks(&mut rng);
        let baseline = infer(&tasks, &cfg);
        let mut shuffled = tasks.clone();
        for ballots in &mut shuffled {
            rng.shuffle(ballots);
        }
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        rng.shuffle(&mut order);
        let permuted: Vec<TaskBallots> = order.iter().map(|&i| shuffled[i].clone()).collect();
        let sol = infer(&permuted, &cfg);
        for (w, r) in &baseline.reliability {
            assert!(
                (sol.reliability[w] - r).abs() < 1e-6,
                "worker {w}: reliability moved under permutation"
            );
        }
        for (new_t, &old_t) in order.iter().enumerate() {
            for ((ka, pa), (kb, pb)) in sol.posteriors[new_t]
                .iter()
                .zip(&baseline.posteriors[old_t])
            {
                assert_eq!(ka, kb, "task {old_t}: candidate sets diverged");
                assert!(
                    (pa - pb).abs() < 1e-6,
                    "task {old_t} key {ka}: posterior depends on order ({pa} vs {pb})"
                );
            }
        }
    }
}

#[test]
fn em_with_zero_iters_is_majority_vote() {
    // `max_iters == 0` must make the MAP answer coincide with
    // `MajorityVote::leader` — same winner, same tie-break to the
    // smaller key — on every input, not just crafted examples.
    let mut rng = Rng::new(0xE32);
    let cfg = EmConfig {
        max_iters: 0,
        tol: 1e-6,
    };
    for _ in 0..300 {
        let tasks = random_tasks(&mut rng);
        let sol = infer(&tasks, &cfg);
        assert_eq!(sol.iters, 0);
        for (t, ballots) in tasks.iter().enumerate() {
            let mut vote = MajorityVote::new();
            for (w, key) in ballots {
                vote.add_from(*w, key.clone(), Value::str(key.to_uppercase()));
            }
            let (leader_value, leader_votes) = vote.leader().expect("non-empty task");
            let (map_key, conf) = sol.map_answer(t).expect("non-empty task");
            assert_eq!(
                Value::str(map_key.to_uppercase()),
                *leader_value,
                "task {t}: EM@0 and majority disagree on {ballots:?}"
            );
            let frac = leader_votes as f64 / ballots.len() as f64;
            assert!(
                (conf - frac).abs() < 1e-12,
                "task {t}: posterior {conf} is not the vote fraction {frac}"
            );
        }
    }
}

#[test]
fn em_posteriors_are_normalized_and_finite() {
    // For every random input and iteration budget: each non-empty task's
    // posterior sums to 1 with no NaN/negative/infinite mass, and the
    // reliability estimates stay inside the documented clamp.
    let mut rng = Rng::new(0xE33);
    for _ in 0..200 {
        let tasks = random_tasks(&mut rng);
        let cfg = EmConfig {
            max_iters: rng.below(30) as u32,
            tol: 0.0, // never converge early: exercise the full budget
        };
        let sol = infer(&tasks, &cfg);
        for (t, dist) in sol.posteriors.iter().enumerate() {
            assert!(!dist.is_empty(), "task {t} had ballots");
            let sum: f64 = dist.iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "task {t}: sums to {sum}");
            assert!(
                dist.iter().all(|(_, p)| p.is_finite() && *p >= 0.0),
                "task {t}: non-finite or negative posterior in {dist:?}"
            );
        }
        for (w, r) in &sol.reliability {
            assert!(
                (0.05..=0.95).contains(r),
                "worker {w}: reliability {r} escaped the clamp"
            );
        }
    }
}

#[test]
fn em_fixed_point_is_stable_under_refinement() {
    // Run EM to convergence, then refine again from the converged
    // posteriors: nothing may move by more than the tolerance. A policy
    // whose output shifts when re-settled would break settle-time
    // determinism.
    let mut rng = Rng::new(0xE34);
    let cfg = EmConfig {
        max_iters: 200,
        tol: 1e-12,
    };
    for _ in 0..100 {
        let tasks = random_tasks(&mut rng);
        let sol = infer(&tasks, &cfg);
        if sol.iters >= cfg.max_iters {
            continue; // hit the cap without converging; not a fixed point
        }
        let again = refine(
            &tasks,
            sol.posteriors.clone(),
            &EmConfig {
                max_iters: 1,
                tol: 1e-12,
            },
        );
        for (t, (da, db)) in sol.posteriors.iter().zip(&again.posteriors).enumerate() {
            for ((ka, pa), (kb, pb)) in da.iter().zip(db) {
                assert_eq!(ka, kb);
                assert!(
                    (pa - pb).abs() < 1e-6,
                    "task {t} key {ka}: converged posterior moved {pa} -> {pb}"
                );
            }
        }
    }
}
