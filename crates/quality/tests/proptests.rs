//! Property tests for the quality-control primitives, driven by a small
//! hand-rolled splitmix64 generator so they run with zero external
//! dependencies and are reproducible by seed.
//!
//! Properties:
//!
//! * majority voting is **permutation-invariant**: the outcome does not
//!   depend on the order ballots arrive in;
//! * a decided vote never returns a value **outside the candidate set**;
//! * normalization is **idempotent** for every normalizer preset;
//! * Borda rank aggregation is **total** (a permutation of `0..n`);
//! * pairwise majorities and Kendall tau are **antisymmetric**.

use std::collections::HashMap;

use crowddb_common::Value;
use crowddb_quality::rank::{kendall_tau, PairwiseVotes};
use crowddb_quality::{MajorityVote, Normalizer, VoteConfig, VoteOutcome};

/// splitmix64 — tiny, seedable, and plenty random for test-case
/// generation.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i + 1));
        }
    }
}

/// A random ballot multiset over a small key alphabet. The stored value
/// is derived from the key, mirroring how the normalizer feeds the vote
/// (one canonical key → one stored value).
fn random_ballots(rng: &mut Rng) -> Vec<(String, Value)> {
    let n = 1 + rng.below(12);
    (0..n)
        .map(|_| {
            let key = format!("key-{}", rng.below(5));
            let stored = Value::str(key.to_uppercase());
            (key, stored)
        })
        .collect()
}

fn random_vote_config(rng: &mut Rng) -> VoteConfig {
    VoteConfig {
        replication: 1 + rng.below(5),
        max_escalations: rng.below(4),
    }
}

fn tally(ballots: &[(String, Value)]) -> MajorityVote {
    let mut vote = MajorityVote::new();
    for (key, stored) in ballots {
        vote.add(key.clone(), stored.clone());
    }
    vote
}

#[test]
fn vote_outcome_is_permutation_invariant() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..300 {
        let ballots = random_ballots(&mut rng);
        let config = random_vote_config(&mut rng);
        let baseline = tally(&ballots).outcome(&config);
        let mut shuffled = ballots.clone();
        rng.shuffle(&mut shuffled);
        let outcome = tally(&shuffled).outcome(&config);
        assert_eq!(
            outcome, baseline,
            "ballot order changed the outcome: {ballots:?} vs {shuffled:?}"
        );
    }
}

#[test]
fn decided_vote_never_leaves_the_candidate_set() {
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..300 {
        let ballots = random_ballots(&mut rng);
        let config = random_vote_config(&mut rng);
        if let VoteOutcome::Decided {
            value,
            votes,
            total,
        } = tally(&ballots).outcome(&config)
        {
            assert!(
                ballots.iter().any(|(_, stored)| *stored == value),
                "winner {value:?} was never a ballot in {ballots:?}"
            );
            assert!(votes * 2 > total, "majority must be strict");
            assert_eq!(total, ballots.len());
        }
    }
}

#[test]
fn normalize_is_idempotent() {
    let mut rng = Rng::new(0xDECADE);
    let alphabet: Vec<char> = "aAbBzZ019 \t\n.,;:!?'\"()[]{}éÉßΣσ-_/#".chars().collect();
    let normalizers = [
        Normalizer::new(),
        Normalizer::for_entities(),
        Normalizer {
            case_fold: false,
            collapse_whitespace: true,
            strip_punctuation: true,
        },
    ];
    for _ in 0..300 {
        let len = rng.below(24);
        let raw: String = (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect();
        for n in &normalizers {
            let once = n.normalize(&raw);
            let twice = n.normalize(&once);
            assert_eq!(once, twice, "not idempotent on {raw:?}");
        }
    }
}

#[test]
fn borda_ranking_is_a_total_order() {
    let mut rng = Rng::new(0xFACADE);
    for _ in 0..200 {
        let n = 2 + rng.below(9);
        let mut pv = PairwiseVotes::new();
        for _ in 0..rng.below(40) {
            let a = rng.below(n);
            let b = rng.below(n);
            if a != b {
                pv.record(a, b);
            }
        }
        let ranking = pv.borda_ranking(n);
        assert_eq!(ranking.len(), n, "ranking must cover every item");
        let mut sorted = ranking.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..n).collect::<Vec<_>>(),
            "ranking must be a permutation of 0..{n}"
        );
    }
}

#[test]
fn pairwise_majorities_are_antisymmetric() {
    let mut rng = Rng::new(0xABBA);
    for _ in 0..200 {
        let n = 2 + rng.below(6);
        let mut pv = PairwiseVotes::new();
        let mut flipped = PairwiseVotes::new();
        let mut counts: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
        for _ in 0..1 + rng.below(30) {
            let a = rng.below(n);
            let b = rng.below(n);
            if a == b {
                continue;
            }
            pv.record(a, b);
            flipped.record(b, a);
            let key = (a.min(b), a.max(b));
            let e = counts.entry(key).or_insert((0, 0));
            if a < b {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        for (&(a, b), &(wa, wb)) in &counts {
            // winner() is order-of-arguments symmetric...
            assert_eq!(pv.winner(a, b), pv.winner(b, a));
            if wa != wb {
                // ...and a strict majority flips when every ballot flips.
                let w = pv.winner(a, b).unwrap();
                let w_flipped = flipped.winner(a, b).unwrap();
                assert_ne!(w, w_flipped, "strict winner must flip: pair ({a},{b})");
                assert_eq!(w, if wa > wb { a } else { b });
            } else {
                // Exact ties break to the smaller index either way.
                assert_eq!(pv.winner(a, b), Some(a));
                assert_eq!(flipped.winner(a, b), Some(a));
            }
        }
    }
}

#[test]
fn kendall_tau_is_antisymmetric_under_reversal() {
    let mut rng = Rng::new(0x5EED);
    for _ in 0..200 {
        let n = 2 + rng.below(10);
        let mut a: Vec<usize> = (0..n).collect();
        let mut b: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut a);
        rng.shuffle(&mut b);
        let tau = kendall_tau(&a, &b);
        assert!((-1.0..=1.0).contains(&tau), "tau out of range: {tau}");
        assert!(
            (kendall_tau(&a, &a) - 1.0).abs() < 1e-12,
            "self-correlation must be 1"
        );
        // Reversing one ranking flips every pairwise order, so tau negates.
        let reversed: Vec<usize> = b.iter().rev().copied().collect();
        let tau_rev = kendall_tau(&a, &reversed);
        assert!(
            (tau + tau_rev).abs() < 1e-12,
            "tau({a:?}, {b:?}) = {tau} but reversed gives {tau_rev}"
        );
    }
}
