//! Pairwise-comparison aggregation and ranking-quality metrics for
//! `CROWDORDER`.
//!
//! The crowd answers binary "which is better?" questions; this module
//! turns those noisy pairwise verdicts into a total order (Borda-style
//! win counting) and measures ranking quality against a ground truth
//! (Kendall tau), which is how the SIGMOD evaluation scores the
//! picture-ordering experiment.

use std::cmp::Ordering;
use std::collections::HashMap;

/// Try to order two rendered sort keys *without* the crowd.
///
/// The hybrid `CROWDORDER` path ("Human-powered Sorts and Joins" calls
/// this the machine/crowd split): values a machine can compare —
/// identical strings, or strings that both parse as numbers — are
/// ordered locally; only genuinely incomparable pairs are escalated to
/// the crowd. Returns `None` when the pair needs human judgment.
///
/// Numeric comparison uses [`f64::total_cmp`] so the result is a total
/// order even for pathological inputs (`NaN` never parses from SQL
/// text, but `"inf"` does).
pub fn try_machine_order(a: &str, b: &str) -> Option<Ordering> {
    if a == b {
        return Some(Ordering::Equal);
    }
    let (ta, tb) = (a.trim(), b.trim());
    if ta == tb {
        return Some(Ordering::Equal);
    }
    if let (Ok(ia), Ok(ib)) = (ta.parse::<i64>(), tb.parse::<i64>()) {
        return Some(ia.cmp(&ib));
    }
    if let (Ok(fa), Ok(fb)) = (ta.parse::<f64>(), tb.parse::<f64>()) {
        return Some(fa.total_cmp(&fb));
    }
    None
}

/// Accumulates pairwise comparison votes between items identified by
/// `usize` keys.
#[derive(Debug, Clone, Default)]
pub struct PairwiseVotes {
    // (a, b) with a < b -> (votes for a, votes for b)
    votes: HashMap<(usize, usize), (usize, usize)>,
}

impl PairwiseVotes {
    /// Empty accumulator.
    pub fn new() -> PairwiseVotes {
        PairwiseVotes::default()
    }

    /// Record one verdict that `winner` beats `loser`.
    pub fn record(&mut self, winner: usize, loser: usize) {
        assert_ne!(winner, loser, "an item cannot be compared to itself");
        let (key, first_wins) = if winner < loser {
            ((winner, loser), true)
        } else {
            ((loser, winner), false)
        };
        let e = self.votes.entry(key).or_insert((0, 0));
        if first_wins {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }

    /// Majority winner of the pair, if any votes were cast. Ties go to the
    /// smaller index for determinism.
    pub fn winner(&self, a: usize, b: usize) -> Option<usize> {
        let key = if a < b { (a, b) } else { (b, a) };
        let (wa, wb) = *self.votes.get(&key)?;
        if wa >= wb {
            Some(key.0)
        } else {
            Some(key.1)
        }
    }

    /// Total number of verdicts recorded.
    pub fn total_votes(&self) -> usize {
        self.votes.values().map(|(a, b)| a + b).sum()
    }

    /// Number of distinct pairs with at least one vote.
    pub fn pairs_covered(&self) -> usize {
        self.votes.len()
    }

    /// Produce a full ranking of `n` items (best first) by Borda count:
    /// each item is scored by the number of pairwise majorities it wins;
    /// ties break by item index.
    pub fn borda_ranking(&self, n: usize) -> Vec<usize> {
        let mut wins = vec![0usize; n];
        for (&(a, b), &(wa, wb)) in &self.votes {
            if a < n && b < n {
                if wa >= wb {
                    wins[a] += 1;
                } else {
                    wins[b] += 1;
                }
            }
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&x, &y| wins[y].cmp(&wins[x]).then(x.cmp(&y)));
        order
    }
}

/// Kendall tau-a rank correlation between two rankings of the same items.
///
/// Both inputs list item ids best-first. Returns a value in `[-1, 1]`:
/// `1` for identical rankings, `-1` for exactly reversed ones.
///
/// # Panics
/// Panics if the rankings are not permutations of each other.
pub fn kendall_tau(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len(), "rankings must have equal length");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut pos_b = vec![usize::MAX; n.max(a.iter().max().map(|m| m + 1).unwrap_or(0))];
    for (i, &item) in b.iter().enumerate() {
        assert!(pos_b.get(item).is_some(), "item {item} out of range");
        pos_b[item] = i;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let (x, y) = (a[i], a[j]);
            assert!(
                pos_b[x] != usize::MAX && pos_b[y] != usize::MAX,
                "rankings differ in items"
            );
            if pos_b[x] < pos_b[y] {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Fraction of adjacent ground-truth pairs the ranking preserves — a
/// secondary, more forgiving quality metric reported by the benchmarks.
pub fn adjacent_accuracy(ranking: &[usize], truth: &[usize]) -> f64 {
    if truth.len() < 2 {
        return 1.0;
    }
    let mut pos = vec![
        usize::MAX;
        truth
            .len()
            .max(ranking.iter().max().map(|m| m + 1).unwrap_or(0))
    ];
    for (i, &item) in ranking.iter().enumerate() {
        pos[item] = i;
    }
    let mut ok = 0usize;
    for w in truth.windows(2) {
        if pos[w[0]] < pos[w[1]] {
            ok += 1;
        }
    }
    ok as f64 / (truth.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_order_handles_numbers_and_identity() {
        assert_eq!(try_machine_order("alpha", "alpha"), Some(Ordering::Equal));
        assert_eq!(try_machine_order(" 42", "42 "), Some(Ordering::Equal));
        assert_eq!(try_machine_order("3", "10"), Some(Ordering::Less));
        assert_eq!(try_machine_order("2.5", "2.25"), Some(Ordering::Greater));
        assert_eq!(try_machine_order("-1", "0.5"), Some(Ordering::Less));
    }

    #[test]
    fn machine_order_defers_text_to_crowd() {
        assert_eq!(try_machine_order("ibm", "apple"), None);
        assert_eq!(try_machine_order("10", "ten"), None);
        assert_eq!(try_machine_order("", "x"), None);
    }

    #[test]
    fn record_and_majority() {
        let mut pv = PairwiseVotes::new();
        pv.record(0, 1);
        pv.record(0, 1);
        pv.record(1, 0);
        assert_eq!(pv.winner(0, 1), Some(0));
        assert_eq!(pv.winner(1, 0), Some(0));
        assert_eq!(pv.total_votes(), 3);
        assert_eq!(pv.pairs_covered(), 1);
    }

    #[test]
    fn unvoted_pair_has_no_winner() {
        let pv = PairwiseVotes::new();
        assert_eq!(pv.winner(0, 1), None);
    }

    #[test]
    #[should_panic(expected = "cannot be compared to itself")]
    fn self_comparison_panics() {
        PairwiseVotes::new().record(3, 3);
    }

    #[test]
    fn borda_ranking_with_perfect_votes() {
        // Ground truth order 2 > 0 > 1 with all pairs voted perfectly.
        let mut pv = PairwiseVotes::new();
        pv.record(2, 0);
        pv.record(2, 1);
        pv.record(0, 1);
        assert_eq!(pv.borda_ranking(3), vec![2, 0, 1]);
    }

    #[test]
    fn borda_ranking_breaks_ties_by_index() {
        let pv = PairwiseVotes::new();
        assert_eq!(pv.borda_ranking(3), vec![0, 1, 2]);
    }

    #[test]
    fn kendall_tau_extremes() {
        assert!((kendall_tau(&[0, 1, 2, 3], &[0, 1, 2, 3]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&[0, 1, 2, 3], &[3, 2, 1, 0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_single_swap() {
        // One adjacent swap in 4 items: tau = (5 - 1) / 6 = 0.6667
        let t = kendall_tau(&[0, 1, 2, 3], &[1, 0, 2, 3]);
        assert!((t - 2.0 / 3.0).abs() < 1e-12, "{t}");
    }

    #[test]
    fn kendall_tau_trivial_cases() {
        assert_eq!(kendall_tau(&[], &[]), 1.0);
        assert_eq!(kendall_tau(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic]
    fn kendall_tau_length_mismatch_panics() {
        kendall_tau(&[0, 1], &[0]);
    }

    #[test]
    fn adjacent_accuracy_metric() {
        assert!((adjacent_accuracy(&[0, 1, 2], &[0, 1, 2]) - 1.0).abs() < 1e-12);
        assert!((adjacent_accuracy(&[2, 1, 0], &[0, 1, 2]) - 0.0).abs() < 1e-12);
        let half = adjacent_accuracy(&[1, 0, 2], &[0, 1, 2]);
        assert!((half - 0.5).abs() < 1e-12, "{half}");
    }

    #[test]
    fn noisy_votes_still_rank_clear_favorite_first() {
        // Item 0 beats everyone 3-0; others get mixed votes.
        let mut pv = PairwiseVotes::new();
        for other in 1..4 {
            for _ in 0..3 {
                pv.record(0, other);
            }
        }
        pv.record(1, 2);
        pv.record(2, 1);
        pv.record(1, 2); // 1 beats 2 by majority
        pv.record(3, 2);
        let ranking = pv.borda_ranking(4);
        assert_eq!(ranking[0], 0);
    }
}
