//! Entity-resolution helpers for `CROWDEQUAL`.
//!
//! The SIGMOD evaluation resolves company names ("I.B.M." vs "IBM",
//! "Microsoft Corp." vs "Microsoft"). The crowd does the judging; this
//! module provides (a) the canonicalization machinery used to cluster
//! crowd verdicts and (b) a machine baseline (`machine_equal`, Jaro-
//! Winkler similarity) that the benchmarks compare the crowd against.

use crate::normalize::Normalizer;

/// Legal-suffix tokens dropped during entity canonicalization.
const LEGAL_SUFFIXES: &[&str] = &[
    "inc",
    "incorporated",
    "corp",
    "corporation",
    "co",
    "company",
    "ltd",
    "limited",
    "llc",
    "plc",
    "gmbh",
    "ag",
    "sa",
    "holdings",
    "group",
];

/// Canonicalize an entity name: strip punctuation, case-fold, drop legal
/// suffixes, collapse whitespace.
///
/// `"I.B.M. Corp."` and `"IBM"` both canonicalize to `"ibm"`.
pub fn canonical_entity(name: &str) -> String {
    let n = Normalizer::for_entities();
    let folded = n.normalize(name);
    let tokens: Vec<&str> = folded
        .split_whitespace()
        .filter(|t| !LEGAL_SUFFIXES.contains(t))
        .collect();
    if tokens.is_empty() {
        // A name that is *only* legal suffixes keeps its folded form.
        folded
    } else {
        tokens.join(" ")
    }
}

/// Jaro similarity between two strings in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matches = Vec::with_capacity(a.len());
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        let mut matched = false;
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches += 1;
                matched = true;
                a_matches.push(j);
                break;
            }
        }
        if !matched {
            a_matches.push(usize::MAX);
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Transpositions: matched characters out of order.
    let mut transpositions = 0usize;
    let mut b_seq: Vec<usize> = a_matches.into_iter().filter(|&j| j != usize::MAX).collect();
    let sorted = {
        let mut s = b_seq.clone();
        s.sort_unstable();
        s
    };
    for (x, y) in b_seq.iter_mut().zip(sorted.iter()) {
        if x != y {
            transpositions += 1;
        }
    }
    let t = (transpositions / 2) as f64;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by common-prefix length.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Machine baseline for entity equality: canonical forms equal, or
/// Jaro-Winkler over canonical forms above `threshold`.
///
/// This is what a conventional DBMS could do *without* the crowd; the
/// CROWDEQUAL benchmarks report crowd accuracy against this baseline.
pub fn machine_equal(a: &str, b: &str, threshold: f64) -> bool {
    let ca = canonical_entity(a);
    let cb = canonical_entity(b);
    if ca == cb {
        return true;
    }
    jaro_winkler(&ca, &cb) >= threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_strips_suffixes_and_punctuation() {
        assert_eq!(canonical_entity("I.B.M. Corp."), "ibm");
        assert_eq!(canonical_entity("Microsoft Corporation"), "microsoft");
        assert_eq!(canonical_entity("Apple Inc"), "apple");
        assert_eq!(canonical_entity("  Twitter,  Inc. "), "twitter");
    }

    #[test]
    fn canonical_of_pure_suffix_name() {
        // Degenerate input stays non-empty.
        assert_eq!(canonical_entity("Inc."), "inc");
    }

    #[test]
    fn jaro_identity_and_disjoint() {
        assert!((jaro("crowddb", "crowddb") - 1.0).abs() < 1e-12);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn jaro_known_value() {
        // Classic example: MARTHA vs MARHTA = 0.944...
        let s = jaro("martha", "marhta");
        assert!((s - 0.9444444444).abs() < 1e-6, "{s}");
    }

    #[test]
    fn jaro_winkler_boosts_prefix() {
        let plain = jaro("crowddb", "crowdb");
        let jw = jaro_winkler("crowddb", "crowdb");
        assert!(jw > plain);
        assert!(jw <= 1.0);
    }

    #[test]
    fn jaro_winkler_symmetric() {
        let pairs = [
            ("dwayne", "duane"),
            ("dixon", "dicksonx"),
            ("crowddb", "crowdb"),
        ];
        for (a, b) in pairs {
            assert!((jaro_winkler(a, b) - jaro_winkler(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn machine_equal_handles_paper_examples() {
        // "CrowDB" vs "CrowdDB" — the paper's data-entry error example.
        assert!(machine_equal("CrowDB", "CrowdDB", 0.9));
        assert!(machine_equal("I.B.M.", "IBM", 0.9));
        assert!(machine_equal("Microsoft Corp.", "Microsoft", 0.9));
        assert!(!machine_equal("Microsoft", "Apple", 0.9));
    }

    #[test]
    fn machine_equal_respects_threshold() {
        // Similar but distinct entities must not merge at high thresholds.
        assert!(!machine_equal("Sun Microsystems", "Sun Chemicals", 0.97));
    }
}
