//! Majority voting with escalation.
//!
//! Each crowd task is replicated across several assignments; the answers
//! are normalized into keys and the key with a strict majority wins. When
//! no strict majority exists the vote **escalates**: the task manager
//! posts additional assignments until a majority emerges or the escalation
//! budget is exhausted.

use std::collections::HashMap;

use crowddb_common::Value;

/// Voting policy for one task type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteConfig {
    /// Initial number of assignments per task (the paper's experiments
    /// used 1, 3, and 5).
    pub replication: usize,
    /// Maximum number of *additional* assignments that may be posted when
    /// the vote ties.
    pub max_escalations: usize,
}

impl Default for VoteConfig {
    fn default() -> Self {
        VoteConfig {
            replication: 3,
            max_escalations: 2,
        }
    }
}

impl VoteConfig {
    /// A single-assignment config (no quality control; fastest/cheapest).
    pub fn single() -> VoteConfig {
        VoteConfig {
            replication: 1,
            max_escalations: 0,
        }
    }

    /// Classic `n`-way majority with up to `n` extra assignments.
    pub fn replicated(n: usize) -> VoteConfig {
        VoteConfig {
            replication: n.max(1),
            max_escalations: n,
        }
    }
}

/// The current state of a vote.
#[derive(Debug, Clone, PartialEq)]
pub enum VoteOutcome {
    /// A strict majority exists; carries the winning stored value and its
    /// vote count.
    Decided {
        /// The winning (stored) value.
        value: Value,
        /// Votes for the winner.
        votes: usize,
        /// Total valid votes cast.
        total: usize,
    },
    /// Not enough votes yet, or a tie: `needed` more assignments are
    /// required before a strict majority is possible.
    Pending {
        /// Additional assignments to post.
        needed: usize,
    },
    /// Escalation budget exhausted without a majority.
    Unresolved,
}

/// An in-progress majority vote over normalized answer keys.
///
/// Keys are produced by [`crate::Normalizer`]; each key remembers the
/// first stored [`Value`] seen for it (first-answer-wins within a key, the
/// usual convention since keys are canonical).
#[derive(Debug, Clone, Default)]
pub struct MajorityVote {
    tallies: HashMap<String, (Value, usize)>,
    /// `(worker, key)` per ballot, in arrival order. Only populated via
    /// [`add_from`](MajorityVote::add_from); the EM truth-inference
    /// policy consumes these to estimate per-worker reliability.
    ballots: Vec<(u64, String)>,
    total: usize,
    escalations_used: usize,
}

impl MajorityVote {
    /// Empty vote.
    pub fn new() -> MajorityVote {
        MajorityVote::default()
    }

    /// Record one worker's (normalized key, stored value) answer.
    pub fn add(&mut self, key: String, stored: Value) {
        let e = self.tallies.entry(key).or_insert((stored, 0));
        e.1 += 1;
        self.total += 1;
    }

    /// Like [`add`](MajorityVote::add) but remembers *which* worker cast
    /// the ballot, enabling joint worker-reliability inference
    /// ([`crate::infer`]) at settle time.
    pub fn add_from(&mut self, worker: u64, key: String, stored: Value) {
        self.ballots.push((worker, key.clone()));
        self.add(key, stored);
    }

    /// Ballots recorded through [`add_from`](MajorityVote::add_from),
    /// in arrival order.
    pub fn ballots(&self) -> &[(u64, String)] {
        &self.ballots
    }

    /// The stored value first seen for `key`, if any ballot used it.
    pub fn stored(&self, key: &str) -> Option<&Value> {
        self.tallies.get(key).map(|(v, _)| v)
    }

    /// Raw vote count for `key`.
    pub fn count(&self, key: &str) -> usize {
        self.tallies.get(key).map(|(_, c)| *c).unwrap_or(0)
    }

    /// Total valid votes cast so far.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct answers seen.
    pub fn distinct_answers(&self) -> usize {
        self.tallies.len()
    }

    /// Record that an escalation round was posted.
    pub fn note_escalation(&mut self) {
        self.escalations_used += 1;
    }

    /// Escalation rounds used so far.
    pub fn escalations_used(&self) -> usize {
        self.escalations_used
    }

    /// The current leader `(value, votes)`, breaking exact ties by key so
    /// the result is deterministic.
    pub fn leader(&self) -> Option<(&Value, usize)> {
        self.tallies
            .iter()
            .max_by(|(ka, (_, ca)), (kb, (_, cb))| ca.cmp(cb).then_with(|| kb.cmp(ka)))
            .map(|(_, (v, c))| (v, *c))
    }

    /// Evaluate the vote under `config`.
    ///
    /// A winner needs a *strict* majority of the votes cast so far, and at
    /// least `config.replication` votes must have been cast (so a 1-vote
    /// "majority" cannot short-circuit a 3-way replication).
    pub fn outcome(&self, config: &VoteConfig) -> VoteOutcome {
        if self.total < config.replication {
            // Too few *valid* votes (spam/blank answers are discarded
            // before they reach the tally). Keep escalating only while
            // the budget allows; otherwise the vote is unresolvable —
            // without this check a task whose answers never parse would
            // escalate forever.
            if self.escalations_used >= config.max_escalations {
                return VoteOutcome::Unresolved;
            }
            return VoteOutcome::Pending {
                needed: config.replication - self.total,
            };
        }
        if let Some((value, votes)) = self.leader() {
            if votes * 2 > self.total {
                return VoteOutcome::Decided {
                    value: value.clone(),
                    votes,
                    total: self.total,
                };
            }
        }
        if self.escalations_used < config.max_escalations {
            // Post enough extra assignments that a strict majority becomes
            // possible: one extra vote breaks a two-way tie.
            VoteOutcome::Pending { needed: 1 }
        } else {
            VoteOutcome::Unresolved
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_str(v: &mut MajorityVote, s: &str) {
        v.add(s.to_lowercase(), Value::str(s));
    }

    #[test]
    fn unanimous_wins() {
        let mut v = MajorityVote::new();
        for _ in 0..3 {
            add_str(&mut v, "IBM");
        }
        match v.outcome(&VoteConfig::default()) {
            VoteOutcome::Decided {
                value,
                votes,
                total,
            } => {
                assert_eq!(value, Value::str("IBM"));
                assert_eq!(votes, 3);
                assert_eq!(total, 3);
            }
            other => panic!("expected Decided, got {other:?}"),
        }
    }

    #[test]
    fn majority_wins_over_minority() {
        let mut v = MajorityVote::new();
        add_str(&mut v, "IBM");
        add_str(&mut v, "IBM");
        add_str(&mut v, "Apple");
        assert!(matches!(
            v.outcome(&VoteConfig::default()),
            VoteOutcome::Decided {
                votes: 2,
                total: 3,
                ..
            }
        ));
    }

    #[test]
    fn pending_until_replication_met() {
        let mut v = MajorityVote::new();
        add_str(&mut v, "IBM");
        let out = v.outcome(&VoteConfig::default());
        assert_eq!(out, VoteOutcome::Pending { needed: 2 });
    }

    #[test]
    fn no_early_decision_with_single_vote_under_replication() {
        // Even a unanimous single vote can't decide a 3-replicated task.
        let mut v = MajorityVote::new();
        add_str(&mut v, "IBM");
        assert!(matches!(
            v.outcome(&VoteConfig::replicated(3)),
            VoteOutcome::Pending { .. }
        ));
    }

    #[test]
    fn tie_escalates_then_resolves() {
        let cfg = VoteConfig {
            replication: 2,
            max_escalations: 1,
        };
        let mut v = MajorityVote::new();
        add_str(&mut v, "IBM");
        add_str(&mut v, "Apple");
        assert_eq!(v.outcome(&cfg), VoteOutcome::Pending { needed: 1 });
        v.note_escalation();
        add_str(&mut v, "IBM");
        assert!(matches!(
            v.outcome(&cfg),
            VoteOutcome::Decided {
                votes: 2,
                total: 3,
                ..
            }
        ));
    }

    #[test]
    fn tie_exhausts_escalation_budget() {
        let cfg = VoteConfig {
            replication: 2,
            max_escalations: 1,
        };
        let mut v = MajorityVote::new();
        add_str(&mut v, "IBM");
        add_str(&mut v, "Apple");
        v.note_escalation();
        add_str(&mut v, "Dell");
        // 1/1/1 with no escalations left.
        assert_eq!(v.outcome(&cfg), VoteOutcome::Unresolved);
    }

    #[test]
    fn single_config_decides_immediately() {
        let mut v = MajorityVote::new();
        add_str(&mut v, "whatever");
        assert!(matches!(
            v.outcome(&VoteConfig::single()),
            VoteOutcome::Decided {
                votes: 1,
                total: 1,
                ..
            }
        ));
    }

    #[test]
    fn leader_tie_break_is_deterministic() {
        let mut v = MajorityVote::new();
        v.add("a".into(), Value::str("A"));
        v.add("b".into(), Value::str("B"));
        // Smaller key wins the tie-break.
        assert_eq!(v.leader().unwrap().0, &Value::str("A"));
    }

    #[test]
    fn adding_agreeing_votes_never_flips_winner() {
        let mut v = MajorityVote::new();
        add_str(&mut v, "X");
        add_str(&mut v, "X");
        add_str(&mut v, "Y");
        let winner_before = v.leader().unwrap().0.clone();
        add_str(&mut v, "X");
        assert_eq!(v.leader().unwrap().0, &winner_before);
    }

    #[test]
    fn normalized_keys_vote_together() {
        let mut v = MajorityVote::new();
        // Same key, different stored values: first stored value retained.
        v.add("ibm".into(), Value::str("IBM"));
        v.add("ibm".into(), Value::str("ibm"));
        v.add("apple".into(), Value::str("Apple"));
        match v.outcome(&VoteConfig::default()) {
            VoteOutcome::Decided { value, votes, .. } => {
                assert_eq!(value, Value::str("IBM"));
                assert_eq!(votes, 2);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(v.distinct_answers(), 2);
    }
}
