//! Inter-rater agreement statistics.
//!
//! The Worker Relationship Manager tracks how often each worker agrees
//! with the accepted majority answer; chronically disagreeing workers are
//! flagged (the paper's WRM "reports and answers worker complaints" and
//! manages bonuses — agreement is the signal it acts on).

use std::collections::HashMap;

/// Simple percent agreement: fraction of (worker answer, accepted answer)
/// pairs that match.
pub fn percent_agreement(pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let ok = pairs.iter().filter(|(a, b)| a == b).count();
    ok as f64 / pairs.len() as f64
}

/// Cohen's kappa for two raters over categorical answers.
///
/// Measures agreement corrected for chance. Returns 1.0 for perfect
/// agreement, ~0 for chance-level, negative for systematic disagreement.
/// When either rater is constant and agreement is perfect, returns 1.0.
pub fn cohens_kappa(pairs: &[(String, String)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let n = pairs.len() as f64;
    let po = percent_agreement(pairs);
    let mut count_a: HashMap<&str, usize> = HashMap::new();
    let mut count_b: HashMap<&str, usize> = HashMap::new();
    for (a, b) in pairs {
        *count_a.entry(a.as_str()).or_default() += 1;
        *count_b.entry(b.as_str()).or_default() += 1;
    }
    let mut pe = 0.0;
    for (cat, ca) in &count_a {
        if let Some(cb) = count_b.get(cat) {
            pe += (*ca as f64 / n) * (*cb as f64 / n);
        }
    }
    if (1.0 - pe).abs() < 1e-12 {
        return if (po - 1.0).abs() < 1e-12 { 1.0 } else { 0.0 };
    }
    (po - pe) / (1.0 - pe)
}

/// Per-worker agreement tracker used by the WRM.
#[derive(Debug, Clone, Default)]
pub struct AgreementTracker {
    agreed: u64,
    total: u64,
}

impl AgreementTracker {
    /// Record one task outcome for this worker.
    pub fn record(&mut self, agreed_with_majority: bool) {
        self.total += 1;
        if agreed_with_majority {
            self.agreed += 1;
        }
    }

    /// Number of scored tasks.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Agreement rate with a Laplace prior (so a worker's first
    /// disagreement doesn't immediately zero their score).
    pub fn rate(&self) -> f64 {
        (self.agreed as f64 + 1.0) / (self.total as f64 + 2.0)
    }

    /// Whether this worker should be flagged for review: at least
    /// `min_tasks` scored tasks and an agreement rate strictly below
    /// `threshold`.
    ///
    /// [`rate`](AgreementTracker::rate) is always finite in `(0, 1)`,
    /// and the comparison uses [`f64::total_cmp`] so the decision is a
    /// total order: a non-finite `threshold` (a caller bug) flags no one
    /// instead of depending on IEEE `NaN < x` being silently false, and
    /// a rate exactly at the threshold never flags.
    pub fn flagged(&self, min_tasks: u64, threshold: f64) -> bool {
        threshold.is_finite()
            && self.total >= min_tasks
            && self.rate().total_cmp(&threshold) == std::cmp::Ordering::Less
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(v: &[(&str, &str)]) -> Vec<(String, String)> {
        v.iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn percent_agreement_basic() {
        let p = pairs(&[("a", "a"), ("b", "b"), ("a", "b"), ("b", "a")]);
        assert!((percent_agreement(&p) - 0.5).abs() < 1e-12);
        assert_eq!(percent_agreement(&[]), 1.0);
    }

    #[test]
    fn kappa_perfect_agreement() {
        let p = pairs(&[("a", "a"), ("b", "b"), ("a", "a")]);
        assert!((cohens_kappa(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kappa_chance_agreement_near_zero() {
        // Raters uncorrelated, 50/50 each: po = 0.5, pe = 0.5, kappa = 0.
        let p = pairs(&[("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")]);
        assert!(cohens_kappa(&p).abs() < 1e-12);
    }

    #[test]
    fn kappa_systematic_disagreement_negative() {
        let p = pairs(&[("a", "b"), ("b", "a"), ("a", "b"), ("b", "a")]);
        assert!(cohens_kappa(&p) < 0.0);
    }

    #[test]
    fn kappa_constant_rater_degenerate() {
        let p = pairs(&[("a", "a"), ("a", "a")]);
        assert_eq!(cohens_kappa(&p), 1.0);
    }

    #[test]
    fn tracker_laplace_smoothing() {
        let mut t = AgreementTracker::default();
        assert!((t.rate() - 0.5).abs() < 1e-12); // prior
        t.record(true);
        assert!(t.rate() > 0.5);
        t.record(false);
        assert!((t.rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tracker_flags_bad_workers_only_after_min_tasks() {
        let mut t = AgreementTracker::default();
        for _ in 0..3 {
            t.record(false);
        }
        assert!(!t.flagged(5, 0.5), "too few tasks to flag");
        for _ in 0..3 {
            t.record(false);
        }
        assert!(t.flagged(5, 0.5));
    }

    #[test]
    fn tracker_flagging_is_total_ordered() {
        let mut t = AgreementTracker::default();
        t.record(true);
        t.record(false); // rate() is exactly 0.5
        assert!(
            !t.flagged(1, 0.5),
            "rate exactly at the threshold must not flag"
        );
        assert!(t.flagged(1, 0.5 + 1e-9));
        assert!(!t.flagged(1, f64::NAN), "NaN threshold flags no one");
        assert!(
            !t.flagged(1, f64::INFINITY),
            "non-finite threshold flags no one"
        );
    }

    #[test]
    fn tracker_good_worker_not_flagged() {
        let mut t = AgreementTracker::default();
        for _ in 0..20 {
            t.record(true);
        }
        t.record(false);
        assert!(!t.flagged(5, 0.5));
        assert_eq!(t.total(), 21);
    }
}
