//! EM truth inference (Dawid–Skene style).
//!
//! Majority voting treats every worker as equally reliable; the paper's
//! quality-control layer (and follow-up work such as T-Crowd) shows that
//! jointly estimating *per-worker reliability* and *posterior answer
//! distributions* over all open tasks in a round dominates per-task
//! majority vote — reliable workers' ballots count for more, careless
//! workers' for less.
//!
//! The model is a symmetric-confusion simplification of Dawid–Skene:
//! worker `w` answers correctly with probability `r_w` and otherwise
//! picks uniformly among an open answer space of at least
//! [`SPREAD_FLOOR`] alternatives. The E-step computes
//! posterior answer distributions given reliabilities; the M-step
//! re-estimates reliabilities as the posterior-weighted agreement rate
//! (Laplace-smoothed, clamped away from 0 and 1 so no ballot is ever
//! infinitely trusted or distrusted).
//!
//! Everything here is deterministic: tasks are processed in input order,
//! candidate keys are kept sorted, workers live in `BTreeMap`s, ties in
//! the MAP answer break toward the lexicographically smaller key using
//! [`f64::total_cmp`] — the same tie-break as
//! [`MajorityVote::leader`](crate::MajorityVote::leader), so the two
//! policies agree whenever the posteriors carry no extra information.

use std::collections::BTreeMap;

/// Reliability clamp: estimates are kept inside `[MIN_R, 1 - MIN_R]` so
/// a worker can never be treated as an oracle (or an anti-oracle) on the
/// basis of finitely many ballots.
const MIN_R: f64 = 0.05;

/// Open-world floor on the error spread: a careless worker's wrong
/// answer is modeled as landing uniformly in a space of at least this
/// many alternatives, even when fewer candidates were *observed*.
///
/// Without the floor the model is unidentifiable on two-candidate
/// tasks: "two reliable workers agree" and "two careless workers missed
/// onto the same answer" have symmetric likelihoods, and a single
/// hyper-active worker (crowd marketplaces are zipf-skewed) can drag EM
/// into the inverted fixed point that trusts them against every
/// agreeing pair. Pricing a miss-collision at `(1-r)/SPREAD_FLOOR`
/// breaks the symmetry the way an open answer space actually does:
/// independent errors rarely collide, so observed agreement is evidence
/// of truth.
///
/// The floor's value is the effective size of the error space. CrowdDB
/// answers are open strings (typos, junk e-mails, misremembered names),
/// so the space is large: with a small floor, one high-reliability
/// worker's *unique* wrong answer can out-log-odds two low-reliability
/// workers who independently agree on the truth — an inversion observed
/// at floor 3 on replication-3 probe rounds. Sweeping the floor over
/// captured rounds (independent-error and 30%-channel-fault regimes)
/// showed every regime improves monotonically up to ~15 and is flat
/// after; 15 prices a two-worker miss-collision steeply enough that
/// agreement wins unless the agreeing workers are at the reliability
/// clamp and the dissenter is near-perfect.
const SPREAD_FLOOR: f64 = 15.0;

/// Iteration/tolerance knobs for [`infer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Maximum E/M iterations. `0` skips inference entirely: posteriors
    /// are the raw vote fractions, which makes the MAP answer identical
    /// to the majority-vote leader (the reduction property the property
    /// suite checks).
    pub max_iters: u32,
    /// Convergence tolerance: stop once no posterior probability moved
    /// by more than this between iterations.
    pub tol: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        EmConfig {
            max_iters: 20,
            tol: 1e-6,
        }
    }
}

/// One task's ballots: `(worker, normalized answer key)` in arrival
/// order.
pub type TaskBallots = Vec<(u64, String)>;

/// The result of EM inference over one round's open tasks.
#[derive(Debug, Clone)]
pub struct EmSolution {
    /// Per task (input order): `(candidate key, posterior probability)`
    /// sorted by key. Empty for tasks that had no ballots.
    pub posteriors: Vec<Vec<(String, f64)>>,
    /// Estimated reliability per worker, clamped to `[0.05, 0.95]`.
    pub reliability: BTreeMap<u64, f64>,
    /// E/M iterations actually run (≤ `max_iters`).
    pub iters: u32,
}

impl EmSolution {
    /// The MAP answer for task `t`: the key with the highest posterior,
    /// ties broken toward the lexicographically smaller key. Returns the
    /// key and its posterior confidence.
    pub fn map_answer(&self, t: usize) -> Option<(&str, f64)> {
        argmax(self.posteriors.get(t)?)
    }
}

/// Deterministic argmax over `(key, probability)` pairs: highest
/// probability wins under [`f64::total_cmp`]; exact ties go to the
/// smaller key. `NaN` never wins against a real probability because
/// `total_cmp` orders it below every positive value — but the E-step
/// cannot produce `NaN` in the first place (see `e_step`).
fn argmax(dist: &[(String, f64)]) -> Option<(&str, f64)> {
    dist.iter()
        .max_by(|(ka, pa), (kb, pb)| pa.total_cmp(pb).then_with(|| kb.cmp(ka)))
        .map(|(k, p)| (k.as_str(), *p))
}

/// Initial posteriors: per-task vote fractions over the sorted candidate
/// set. A task with `n` ballots of which `c` chose key `k` starts at
/// `q(k) = c/n`.
fn vote_fractions(tasks: &[TaskBallots]) -> Vec<Vec<(String, f64)>> {
    tasks
        .iter()
        .map(|ballots| {
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for (_, key) in ballots {
                *counts.entry(key.as_str()).or_default() += 1;
            }
            let n = ballots.len() as f64;
            counts
                .into_iter()
                .map(|(k, c)| (k.to_string(), c as f64 / n))
                .collect()
        })
        .collect()
}

/// M-step: reliability of each worker is their posterior-weighted
/// agreement rate across all ballots, Laplace-smoothed (`+1 / +2`) and
/// clamped to `[MIN_R, 1 - MIN_R]`.
fn m_step(tasks: &[TaskBallots], posteriors: &[Vec<(String, f64)>]) -> BTreeMap<u64, f64> {
    let mut agree: BTreeMap<u64, f64> = BTreeMap::new();
    let mut seen: BTreeMap<u64, f64> = BTreeMap::new();
    for (t, ballots) in tasks.iter().enumerate() {
        let dist = &posteriors[t];
        for (worker, key) in ballots {
            let q = dist
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, p)| *p)
                .unwrap_or(0.0);
            *agree.entry(*worker).or_default() += q;
            *seen.entry(*worker).or_default() += 1.0;
        }
    }
    agree
        .into_iter()
        .map(|(w, a)| {
            let n = seen[&w];
            let r = (a + 1.0) / (n + 2.0);
            (w, r.clamp(MIN_R, 1.0 - MIN_R))
        })
        .collect()
}

/// E-step: posterior over each task's candidates given per-worker
/// reliabilities. Uses log-space accumulation with max-subtraction so
/// the softmax can neither overflow nor produce `NaN`: every log weight
/// is finite (reliabilities are clamped away from 0 and 1), so the
/// normalizer is ≥ 1 (the max term contributes exactly `exp(0) = 1`).
///
/// `reliability_of` maps a worker to `r_w`; pass a constant closure for
/// the uniform-reliability reduction property.
pub fn e_step(
    tasks: &[TaskBallots],
    candidates: &[Vec<String>],
    reliability_of: impl Fn(u64) -> f64,
) -> Vec<Vec<(String, f64)>> {
    tasks
        .iter()
        .zip(candidates)
        .map(|(ballots, cands)| {
            if cands.is_empty() {
                return Vec::new();
            }
            // Symmetric confusion with an open-world floor: a wrong
            // worker spreads error mass uniformly over at least
            // `SPREAD_FLOOR` alternatives, not just the observed m-1
            // (see the constant's docs for why the floor is load-bearing).
            let spread = (cands.len() as f64 - 1.0).max(SPREAD_FLOOR);
            let mut logw: Vec<f64> = vec![0.0; cands.len()];
            for (worker, key) in ballots {
                let r = reliability_of(*worker).clamp(MIN_R, 1.0 - MIN_R);
                let ln_hit = r.ln();
                let ln_miss = ((1.0 - r) / spread).ln();
                for (i, cand) in cands.iter().enumerate() {
                    logw[i] += if cand == key { ln_hit } else { ln_miss };
                }
            }
            let max = logw.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let weights: Vec<f64> = logw.iter().map(|l| (l - max).exp()).collect();
            let norm: f64 = weights.iter().sum();
            cands
                .iter()
                .zip(&weights)
                .map(|(k, w)| (k.clone(), w / norm))
                .collect()
        })
        .collect()
}

/// Maximum absolute posterior movement between two E-steps.
fn max_delta(a: &[Vec<(String, f64)>], b: &[Vec<(String, f64)>]) -> f64 {
    let mut d: f64 = 0.0;
    for (da, db) in a.iter().zip(b) {
        for ((_, pa), (_, pb)) in da.iter().zip(db) {
            d = d.max((pa - pb).abs());
        }
    }
    d
}

/// Run EM truth inference over one round's tasks.
///
/// Posteriors start from per-task vote fractions (so `max_iters == 0`
/// is exactly majority vote), then alternate M-steps (reliability from
/// posteriors) and E-steps (posteriors from reliability) until either
/// the iteration cap is hit or no posterior moves by more than
/// `cfg.tol`.
pub fn infer(tasks: &[TaskBallots], cfg: &EmConfig) -> EmSolution {
    refine(tasks, vote_fractions(tasks), cfg)
}

/// Like [`infer`] but starting from the given posteriors instead of the
/// vote fractions. Running `refine` on a converged solution's own
/// posteriors moves nothing (fixed-point stability — checked by the
/// property suite).
pub fn refine(tasks: &[TaskBallots], init: Vec<Vec<(String, f64)>>, cfg: &EmConfig) -> EmSolution {
    let candidates: Vec<Vec<String>> = init
        .iter()
        .map(|dist| dist.iter().map(|(k, _)| k.clone()).collect())
        .collect();
    let mut posteriors = init;
    let mut reliability = BTreeMap::new();
    let mut iters = 0;
    for _ in 0..cfg.max_iters {
        reliability = m_step(tasks, &posteriors);
        let rel = &reliability;
        let next = e_step(tasks, &candidates, |w| rel[&w]);
        let delta = max_delta(&posteriors, &next);
        posteriors = next;
        iters += 1;
        if delta <= cfg.tol {
            break;
        }
    }
    if reliability.is_empty() {
        // max_iters == 0: report the smoothed agreement against the raw
        // vote fractions so callers still get a reliability readout.
        reliability = m_step(tasks, &posteriors);
    }
    EmSolution {
        posteriors,
        reliability,
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ballots: &[(u64, &str)]) -> TaskBallots {
        ballots.iter().map(|(w, k)| (*w, k.to_string())).collect()
    }

    #[test]
    fn unanimous_task_is_certain() {
        let tasks = vec![t(&[(1, "ibm"), (2, "ibm"), (3, "ibm")])];
        let sol = infer(&tasks, &EmConfig::default());
        let (key, conf) = sol.map_answer(0).unwrap();
        assert_eq!(key, "ibm");
        assert!((conf - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reliable_minority_can_outvote_careless_majority() {
        // Workers 1 and 2 agree with each other on nine tasks; workers
        // 3, 4, 5 answer randomly-looking junk that never agrees. On the
        // probe task, EM should trust the two consistent workers over
        // the three mutually-disagreeing ones, flipping the raw 3-vs-2
        // "majority" (three distinct junk answers never held a majority,
        // but make the consistent pair a minority of ballots).
        let mut tasks: Vec<TaskBallots> = Vec::new();
        for i in 0..9 {
            let good = format!("g{i}");
            tasks.push(t(&[
                (1, &good),
                (2, &good),
                (3, &format!("x{i}")),
                (4, &format!("y{i}")),
                (5, &format!("z{i}")),
            ]));
        }
        // Probe: 1,2 say "right"; 3,4 happen to collide on "wrong".
        tasks.push(t(&[
            (1, "right"),
            (2, "right"),
            (3, "wrong"),
            (4, "wrong"),
            (5, "other"),
        ]));
        let sol = infer(&tasks, &EmConfig::default());
        let (key, conf) = sol.map_answer(9).unwrap();
        assert_eq!(key, "right", "reliability should break the tie");
        assert!(conf > 0.5);
        assert!(sol.reliability[&1] > sol.reliability[&3]);
    }

    #[test]
    fn zero_iters_is_majority_vote() {
        let tasks = vec![t(&[(1, "a"), (2, "a"), (3, "b")])];
        let sol = infer(
            &tasks,
            &EmConfig {
                max_iters: 0,
                tol: 1e-6,
            },
        );
        assert_eq!(sol.iters, 0);
        let (key, conf) = sol.map_answer(0).unwrap();
        assert_eq!(key, "a");
        assert!((conf - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn equal_posterior_tie_breaks_to_smaller_key() {
        // Crafted equal-posterior candidates: symmetric 1-vs-1 ballots
        // give exactly equal posteriors at every iteration; the MAP
        // answer must deterministically pick the smaller key (the same
        // convention as MajorityVote::leader), not whichever hash order
        // or NaN artifact happens by.
        let tasks = vec![t(&[(1, "beta"), (2, "alpha")])];
        let sol = infer(&tasks, &EmConfig::default());
        let dist = &sol.posteriors[0];
        assert!((dist[0].1 - dist[1].1).abs() < 1e-12, "posteriors tie");
        assert_eq!(sol.map_answer(0).unwrap().0, "alpha");
    }

    #[test]
    fn hyperactive_wrong_worker_cannot_invert_the_round() {
        // Zipf-skewed marketplaces have hub workers answering most of a
        // round's HITs. Worker 0 is on every task, wrong on a third of
        // them with unique typos; pairs of occasional workers agree on
        // the truth. Without the open-world spread floor, EM converges
        // to the inverted fixed point that trusts worker 0 against every
        // agreeing pair (observed two-candidate tasks make "reliable
        // agreement" and "colliding misses" symmetric). With it, the
        // agreeing pairs must win every task they are right on.
        let mut tasks: Vec<TaskBallots> = Vec::new();
        for i in 0..12 {
            let truth = format!("t{i}");
            let pair = (10 + 2 * (i as u64 % 6), 11 + 2 * (i as u64 % 6));
            let hub = if i % 3 == 0 {
                format!("typo-{i}") // worker 0 wrong, uniquely
            } else {
                truth.clone()
            };
            tasks.push(t(&[(pair.0, &truth), (pair.1, &truth), (0, &hub)]));
        }
        let sol = infer(&tasks, &EmConfig::default());
        for (i, _) in tasks.iter().enumerate() {
            assert_eq!(
                sol.map_answer(i).unwrap().0,
                format!("t{i}"),
                "task {i}: the hub worker hijacked the round"
            );
        }
        let hub_r = sol.reliability[&0];
        let pair_r = sol.reliability[&10];
        assert!(
            hub_r < pair_r,
            "hub (r={hub_r}) must not outrank consistent pair workers (r={pair_r})"
        );
    }

    #[test]
    fn empty_tasks_are_harmless() {
        let tasks: Vec<TaskBallots> = vec![Vec::new(), t(&[(1, "a")])];
        let sol = infer(&tasks, &EmConfig::default());
        assert!(sol.map_answer(0).is_none());
        assert_eq!(sol.map_answer(1).unwrap().0, "a");
    }

    #[test]
    fn posteriors_are_normalized_and_finite() {
        let tasks = vec![
            t(&[(1, "a"), (2, "b"), (3, "c"), (4, "a"), (5, "a")]),
            t(&[(1, "x"), (2, "x"), (3, "y")]),
        ];
        let sol = infer(&tasks, &EmConfig::default());
        for dist in &sol.posteriors {
            let sum: f64 = dist.iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(dist.iter().all(|(_, p)| p.is_finite() && *p >= 0.0));
        }
    }
}
