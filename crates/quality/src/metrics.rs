//! Quality-control observability: votes-per-verdict counters and
//! agreement-score histograms, recorded into a
//! [`MetricsRegistry`].

use crowddb_obs::MetricsRegistry;

use crate::vote::VoteOutcome;

/// Agreement-score histogram buckets: fraction of ballots that voted
/// for the winning answer, so meaningful values live in `(0.5, 1.0]`
/// for decided votes.
pub const AGREEMENT_BUCKETS: &[f64] = &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Posterior-confidence histogram buckets for EM-settled answers. EM
/// posteriors can land anywhere in `(1/m, 1.0]`, so the buckets start
/// lower than the majority-agreement ones.
pub const POSTERIOR_BUCKETS: &[f64] = &[0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 0.99, 1.0];

/// Record one round of EM truth inference: the iteration count goes
/// into the `crowddb_quality_em_iters` counter and each settled task's
/// MAP posterior confidence into the
/// `crowddb_quality_posterior_confidence` histogram.
pub fn record_em_round(registry: &MetricsRegistry, iters: u32, confidences: &[f64]) {
    registry.counter_add("crowddb_quality_em_rounds_total", 1);
    registry.counter_add("crowddb_quality_em_iters", iters as u64);
    for c in confidences {
        registry.observe_with(
            "crowddb_quality_posterior_confidence",
            POSTERIOR_BUCKETS,
            *c,
        );
    }
}

/// Record one *final* vote outcome.
///
/// Counters: `crowddb_votes_total` plus one of
/// `crowddb_votes_{decided,pending,unresolved}_total`. Decided votes
/// also observe their agreement score (`votes / total`) into the
/// `crowddb_vote_agreement` histogram — the quality signal the paper's
/// majority-vote quality control is built on.
pub fn record_vote_outcome(registry: &MetricsRegistry, outcome: &VoteOutcome) {
    registry.counter_inc("crowddb_votes_total");
    match outcome {
        VoteOutcome::Decided { votes, total, .. } => {
            registry.counter_inc("crowddb_votes_decided_total");
            if *total > 0 {
                registry.observe_with(
                    "crowddb_vote_agreement",
                    AGREEMENT_BUCKETS,
                    *votes as f64 / *total as f64,
                );
            }
        }
        VoteOutcome::Pending { .. } => registry.counter_inc("crowddb_votes_pending_total"),
        VoteOutcome::Unresolved => registry.counter_inc("crowddb_votes_unresolved_total"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::Value;

    #[test]
    fn em_round_records_iters_and_confidences() {
        let r = MetricsRegistry::new();
        record_em_round(&r, 7, &[0.6, 0.97]);
        let snap = r.snapshot();
        assert_eq!(snap.counter("crowddb_quality_em_rounds_total"), 1);
        assert_eq!(snap.counter("crowddb_quality_em_iters"), 7);
        let h = snap
            .histogram("crowddb_quality_posterior_confidence")
            .unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 1.57).abs() < 1e-9);
    }

    #[test]
    fn outcomes_are_counted_by_verdict() {
        let r = MetricsRegistry::new();
        record_vote_outcome(
            &r,
            &VoteOutcome::Decided {
                value: Value::str("x"),
                votes: 2,
                total: 3,
            },
        );
        record_vote_outcome(&r, &VoteOutcome::Pending { needed: 1 });
        record_vote_outcome(&r, &VoteOutcome::Unresolved);
        let snap = r.snapshot();
        assert_eq!(snap.counter("crowddb_votes_total"), 3);
        assert_eq!(snap.counter("crowddb_votes_decided_total"), 1);
        assert_eq!(snap.counter("crowddb_votes_pending_total"), 1);
        assert_eq!(snap.counter("crowddb_votes_unresolved_total"), 1);
        let h = snap.histogram("crowddb_vote_agreement").unwrap();
        assert_eq!(h.count, 1);
        assert!((h.sum - 2.0 / 3.0).abs() < 1e-9);
    }
}
