//! Quality-control observability: votes-per-verdict counters and
//! agreement-score histograms, recorded into a
//! [`MetricsRegistry`].

use crowddb_obs::MetricsRegistry;

use crate::vote::VoteOutcome;

/// Agreement-score histogram buckets: fraction of ballots that voted
/// for the winning answer, so meaningful values live in `(0.5, 1.0]`
/// for decided votes.
pub const AGREEMENT_BUCKETS: &[f64] = &[0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Record one *final* vote outcome.
///
/// Counters: `crowddb_votes_total` plus one of
/// `crowddb_votes_{decided,pending,unresolved}_total`. Decided votes
/// also observe their agreement score (`votes / total`) into the
/// `crowddb_vote_agreement` histogram — the quality signal the paper's
/// majority-vote quality control is built on.
pub fn record_vote_outcome(registry: &MetricsRegistry, outcome: &VoteOutcome) {
    registry.counter_inc("crowddb_votes_total");
    match outcome {
        VoteOutcome::Decided { votes, total, .. } => {
            registry.counter_inc("crowddb_votes_decided_total");
            if *total > 0 {
                registry.observe_with(
                    "crowddb_vote_agreement",
                    AGREEMENT_BUCKETS,
                    *votes as f64 / *total as f64,
                );
            }
        }
        VoteOutcome::Pending { .. } => registry.counter_inc("crowddb_votes_pending_total"),
        VoteOutcome::Unresolved => registry.counter_inc("crowddb_votes_unresolved_total"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_common::Value;

    #[test]
    fn outcomes_are_counted_by_verdict() {
        let r = MetricsRegistry::new();
        record_vote_outcome(
            &r,
            &VoteOutcome::Decided {
                value: Value::str("x"),
                votes: 2,
                total: 3,
            },
        );
        record_vote_outcome(&r, &VoteOutcome::Pending { needed: 1 });
        record_vote_outcome(&r, &VoteOutcome::Unresolved);
        let snap = r.snapshot();
        assert_eq!(snap.counter("crowddb_votes_total"), 3);
        assert_eq!(snap.counter("crowddb_votes_decided_total"), 1);
        assert_eq!(snap.counter("crowddb_votes_pending_total"), 1);
        assert_eq!(snap.counter("crowddb_votes_unresolved_total"), 1);
        let h = snap.histogram("crowddb_vote_agreement").unwrap();
        assert_eq!(h.count, 1);
        assert!((h.sum - 2.0 / 3.0).abs() < 1e-9);
    }
}
