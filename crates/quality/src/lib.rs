//! # crowddb-quality
//!
//! Quality control for human answers.
//!
//! "Since human inputs are inherently error prone and diverse in formats,
//! answers from the crowd workers can never be assumed to be complete or
//! correct. The \[crowd\] operators also have majority-vote driven quality
//! control measures built-in." (paper §3.2.1)
//!
//! This crate provides the building blocks the crowd operators use:
//!
//! * [`normalize`] — canonicalize free-text answers before voting, so
//!   `" IBM "` and `"ibm"` count as the same answer;
//! * [`vote`] — majority voting with escalation on ties;
//! * [`entity`] — entity-resolution helpers used by `CROWDEQUAL`;
//! * [`rank`] — pairwise-comparison aggregation and rank-quality metrics
//!   (Kendall tau) used by `CROWDORDER`;
//! * [`agreement`] — inter-rater agreement statistics surfaced by the
//!   Worker Relationship Manager;
//! * [`infer`] — EM truth inference (Dawid–Skene style): joint
//!   estimation of per-worker reliability and posterior answer
//!   distributions, the engine behind `QualityPolicy::Em`;
//! * [`metrics`] — votes-per-verdict counters and agreement histograms
//!   recorded into the shared observability registry.

pub mod agreement;
pub mod entity;
pub mod infer;
pub mod metrics;
pub mod normalize;
pub mod rank;
pub mod vote;

pub use infer::{EmConfig, EmSolution};
pub use metrics::{record_em_round, record_vote_outcome};
pub use normalize::Normalizer;
pub use rank::try_machine_order;
pub use vote::{MajorityVote, VoteConfig, VoteOutcome};
