//! Answer normalization.
//!
//! Workers type free text into HTML forms, so the same semantic answer
//! arrives in many shapes: `"IBM"`, `" ibm "`, `"I.B.M."`. Normalization
//! maps answers into canonical keys *before* majority voting so that
//! agreeing workers actually agree. The typed-value path
//! ([`Normalizer::normalize_typed`]) additionally parses numerics and
//! booleans through [`Value::parse_answer`].

use crowddb_common::{DataType, Value};

/// Configurable answer normalizer.
#[derive(Debug, Clone)]
pub struct Normalizer {
    /// Lower-case answers.
    pub case_fold: bool,
    /// Trim leading/trailing whitespace and collapse internal runs.
    pub collapse_whitespace: bool,
    /// Strip punctuation characters (`.,;:!?'"()[]{}`).
    pub strip_punctuation: bool,
}

impl Default for Normalizer {
    fn default() -> Self {
        Normalizer {
            case_fold: true,
            collapse_whitespace: true,
            strip_punctuation: false,
        }
    }
}

impl Normalizer {
    /// The default normalizer (case fold + whitespace collapse).
    pub fn new() -> Normalizer {
        Normalizer::default()
    }

    /// An aggressive normalizer for entity names (also strips punctuation).
    pub fn for_entities() -> Normalizer {
        Normalizer {
            case_fold: true,
            collapse_whitespace: true,
            strip_punctuation: true,
        }
    }

    /// Canonicalize a free-text answer into a voting key.
    pub fn normalize(&self, raw: &str) -> String {
        let mut s: String = if self.strip_punctuation {
            raw.chars()
                .filter(|c| {
                    !matches!(
                        c,
                        '.' | ','
                            | ';'
                            | ':'
                            | '!'
                            | '?'
                            | '\''
                            | '"'
                            | '('
                            | ')'
                            | '['
                            | ']'
                            | '{'
                            | '}'
                    )
                })
                .collect()
        } else {
            raw.to_string()
        };
        if self.case_fold {
            s = s.to_lowercase();
        }
        if self.collapse_whitespace {
            s = s.split_whitespace().collect::<Vec<_>>().join(" ");
        }
        s
    }

    /// Parse and canonicalize an answer for a typed column.
    ///
    /// For numeric/boolean columns the canonical key is the parsed value's
    /// literal (so `"1,234"` and `"1234"` vote together); unparseable
    /// answers return `None` and are discarded before voting.
    pub fn normalize_typed(&self, raw: &str, ty: DataType) -> Option<(String, Value)> {
        match ty {
            DataType::Str => {
                let key = self.normalize(raw);
                if key.is_empty() {
                    return None;
                }
                // Store the trimmed original (not the case-folded key) so
                // the database keeps the worker's capitalization.
                let stored = Value::parse_answer(raw, ty)?;
                Some((key, stored))
            }
            _ => {
                let v = Value::parse_answer(raw, ty)?;
                Some((v.sql_literal(), v))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_folds_case_and_whitespace() {
        let n = Normalizer::new();
        assert_eq!(n.normalize("  IBM   Corp "), "ibm corp");
        assert_eq!(n.normalize("IBM\tCorp\n"), "ibm corp");
    }

    #[test]
    fn entity_normalizer_strips_punctuation() {
        let n = Normalizer::for_entities();
        assert_eq!(n.normalize("I.B.M."), "ibm");
        assert_eq!(n.normalize("Yahoo!"), "yahoo");
        assert_eq!(n.normalize("O'Reilly"), "oreilly");
    }

    #[test]
    fn typed_numeric_answers_vote_together() {
        let n = Normalizer::new();
        let (k1, v1) = n.normalize_typed("1,234", DataType::Int).unwrap();
        let (k2, v2) = n.normalize_typed(" 1234 ", DataType::Int).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(v1, v2);
        assert_eq!(v1, Value::Int(1234));
    }

    #[test]
    fn typed_bool_answers() {
        let n = Normalizer::new();
        let (k1, _) = n.normalize_typed("YES", DataType::Bool).unwrap();
        let (k2, _) = n.normalize_typed("true", DataType::Bool).unwrap();
        assert_eq!(k1, k2);
    }

    #[test]
    fn unparseable_answers_discarded() {
        let n = Normalizer::new();
        assert!(n.normalize_typed("dunno", DataType::Int).is_none());
        assert!(n.normalize_typed("   ", DataType::Str).is_none());
    }

    #[test]
    fn string_answers_keep_original_capitalization() {
        let n = Normalizer::new();
        let (key, stored) = n
            .normalize_typed("  The CrowdDB Paper ", DataType::Str)
            .unwrap();
        assert_eq!(key, "the crowddb paper");
        assert_eq!(stored, Value::str("The CrowdDB Paper"));
    }

    #[test]
    fn no_op_normalizer() {
        let n = Normalizer {
            case_fold: false,
            collapse_whitespace: false,
            strip_punctuation: false,
        };
        assert_eq!(n.normalize(" As Is "), " As Is ");
    }
}
