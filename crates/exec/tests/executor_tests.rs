//! End-to-end executor tests: SQL text → parse → bind → optimize →
//! execute against a real storage instance, including the crowd
//! round-trip semantics (needs produced, caches/write-back consumed).

use crowddb_common::{row, Row, Value};
use crowddb_exec::{execute, CompareCaches, ExecResult, TaskNeed};
use crowddb_plan::cardinality::FnStats;
use crowddb_plan::{optimize, Binder, LogicalPlan, OptimizerConfig};
use crowddb_sql::{parse_statement, Statement};
use crowddb_storage::Database;

fn setup() -> Database {
    let db = Database::new();
    for ddl in [
        "CREATE TABLE talk (title STRING PRIMARY KEY, abstract CROWD STRING, \
         nb_attendees CROWD INTEGER)",
        "CREATE CROWD TABLE notableattendee (name STRING PRIMARY KEY, title STRING, \
         FOREIGN KEY (title) REF talk(title))",
        "CREATE TABLE dept (dept STRING PRIMARY KEY, building INTEGER)",
    ] {
        let Statement::CreateTable(ct) = parse_statement(ddl).unwrap() else {
            panic!()
        };
        let schema = db.with_catalog(|c| c.schema_from_ast(&ct)).unwrap();
        db.create_table(schema).unwrap();
    }
    db
}

fn plan(db: &Database, sql: &str) -> LogicalPlan {
    let Statement::Select(q) = parse_statement(sql).unwrap() else {
        panic!("not a select: {sql}")
    };
    let bound = db.with_catalog(|c| Binder::new(c).bind_query(&q)).unwrap();
    // Flat estimate; tests are small and don't exercise the estimator.
    let stats = FnStats(|_t: &str| Some(100));
    optimize(bound, &stats, &OptimizerConfig::default())
}

fn run(db: &Database, sql: &str) -> ExecResult {
    let caches = CompareCaches::default();
    run_with(db, sql, &caches)
}

fn run_with(db: &Database, sql: &str, caches: &CompareCaches) -> ExecResult {
    let p = plan(db, sql);
    execute(db, caches, &p).unwrap()
}

fn seed_talks(db: &Database) {
    db.insert("talk", row!["CrowdDB", Value::CNull, Value::CNull])
        .unwrap();
    db.insert("talk", row!["Qurk", "qurk abstract", 80i64])
        .unwrap();
    db.insert("talk", row!["PIQL", "piql abstract", 60i64])
        .unwrap();
}

#[test]
fn simple_select_and_projection() {
    let db = setup();
    seed_talks(&db);
    let r = run(&db, "SELECT title FROM talk");
    assert_eq!(r.rows.len(), 3);
    assert!(r.is_final(), "no crowd columns referenced");
    assert_eq!(r.rows[0], row!["CrowdDB"]);
}

#[test]
fn paper_query_generates_probe_need() {
    let db = setup();
    seed_talks(&db);
    // The paper's motivating query: abstract is CNULL for CrowdDB.
    let r = run(&db, "SELECT abstract FROM talk WHERE title = 'CrowdDB'");
    assert_eq!(r.rows.len(), 1);
    assert!(r.rows[0][0].is_cnull(), "value still pending this round");
    assert_eq!(r.needs.len(), 1);
    match &r.needs[0] {
        TaskNeed::ProbeValues {
            table,
            context,
            columns,
            ..
        } => {
            assert_eq!(table, "talk");
            assert!(context.iter().any(|(k, v)| k == "title" && v == "CrowdDB"));
            assert_eq!(columns.len(), 1);
            assert_eq!(columns[0].1, "abstract");
        }
        other => panic!("expected probe, got {other:?}"),
    }
}

#[test]
fn probe_converges_after_write_back() {
    let db = setup();
    seed_talks(&db);
    let r = run(&db, "SELECT abstract FROM talk WHERE title = 'CrowdDB'");
    let TaskNeed::ProbeValues {
        table,
        tid,
        columns,
        ..
    } = &r.needs[0]
    else {
        panic!()
    };
    // Simulate the task manager writing the crowd's answer back.
    db.write_back_value(table, *tid, columns[0].0, Value::str("the crowd answer"))
        .unwrap();
    let r2 = run(&db, "SELECT abstract FROM talk WHERE title = 'CrowdDB'");
    assert!(r2.is_final());
    assert_eq!(r2.rows, vec![row!["the crowd answer"]]);
}

#[test]
fn unreferenced_crowd_columns_do_not_probe() {
    let db = setup();
    seed_talks(&db);
    // title only: CNULLs in abstract/nb_attendees are not needed.
    let r = run(&db, "SELECT title FROM talk WHERE title LIKE 'C%'");
    assert!(r.is_final());
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn predicate_on_cnull_is_unknown_and_probes() {
    let db = setup();
    seed_talks(&db);
    let r = run(&db, "SELECT title FROM talk WHERE nb_attendees > 70");
    // Only Qurk (80) qualifies now; CrowdDB's attendance is pending.
    assert_eq!(r.rows, vec![row!["Qurk"]]);
    assert_eq!(r.needs.len(), 1, "probe for CrowdDB's nb_attendees");
    // After write-back the row qualifies.
    let TaskNeed::ProbeValues { tid, columns, .. } = &r.needs[0] else {
        panic!()
    };
    db.write_back_value("talk", *tid, columns[0].0, Value::Int(200))
        .unwrap();
    let r2 = run(&db, "SELECT title FROM talk WHERE nb_attendees > 70");
    assert!(r2.is_final());
    assert_eq!(r2.rows.len(), 2);
}

#[test]
fn joins_inner_and_left() {
    let db = setup();
    seed_talks(&db);
    db.insert("notableattendee", row!["Mike", "CrowdDB"])
        .unwrap();
    db.insert("notableattendee", row!["Sam", "Qurk"]).unwrap();
    let r = run(
        &db,
        "SELECT t.title, n.name FROM talk t JOIN notableattendee n ON t.title = n.title",
    );
    assert_eq!(r.rows.len(), 2);

    let r = run(
        &db,
        "SELECT t.title, n.name FROM talk t LEFT JOIN notableattendee n ON t.title = n.title \
         WHERE t.title = 'PIQL'",
    );
    assert_eq!(r.rows.len(), 1);
    assert_eq!(r.rows[0][1], Value::Null);
}

#[test]
fn crowd_join_requests_new_tuples_for_missing_matches() {
    let db = setup();
    seed_talks(&db);
    db.insert("notableattendee", row!["Mike", "CrowdDB"])
        .unwrap();
    let r = run(
        &db,
        "SELECT t.title, n.name FROM talk t JOIN notableattendee n ON t.title = n.title",
    );
    // Qurk and PIQL have no attendees yet: two new-tuple needs with the
    // join key preset — the CrowdJoin pattern.
    let new_needs: Vec<_> = r
        .needs
        .iter()
        .filter_map(|n| match n {
            TaskNeed::NewTuples { table, preset, .. } => Some((table.clone(), preset.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(new_needs.len(), 2, "needs: {:?}", r.needs);
    assert!(new_needs
        .iter()
        .all(|(t, p)| t == "notableattendee" && p[0].0 == "title"));
    // And the write-back of a crowdsourced tuple completes the join.
    db.write_back_tuple("notableattendee", row!["Eugene", "Qurk"])
        .unwrap();
    let r2 = run(
        &db,
        "SELECT t.title, n.name FROM talk t JOIN notableattendee n ON t.title = n.title",
    );
    assert_eq!(r2.rows.len(), 2);
}

#[test]
fn bounded_crowd_scan_requests_tuples() {
    let db = setup();
    let r = run(&db, "SELECT name FROM notableattendee LIMIT 5");
    assert_eq!(r.rows.len(), 0);
    assert_eq!(r.needs.len(), 1);
    match &r.needs[0] {
        TaskNeed::NewTuples {
            table,
            preset,
            want,
        } => {
            assert_eq!(table, "notableattendee");
            assert!(preset.is_empty());
            assert_eq!(*want, 5);
        }
        other => panic!("{other:?}"),
    }
    // Two tuples arrive; the scan still wants three more.
    db.write_back_tuple("notableattendee", row!["A", "t1"])
        .unwrap();
    db.write_back_tuple("notableattendee", row!["B", "t2"])
        .unwrap();
    let r2 = run(&db, "SELECT name FROM notableattendee LIMIT 5");
    assert_eq!(r2.rows.len(), 2);
    match &r2.needs[0] {
        TaskNeed::NewTuples { want, .. } => assert_eq!(*want, 3),
        other => panic!("{other:?}"),
    }
}

#[test]
fn crowdequal_uses_cache_and_reports_needs() {
    let db = setup();
    db.insert("dept", row!["Math", 3i64]).unwrap();
    db.insert("dept", row!["CS", 7i64]).unwrap();
    let sql = "SELECT dept FROM dept WHERE dept ~= 'Mathematics'";
    let r = run(&db, sql);
    assert!(r.rows.is_empty(), "undecided comparisons exclude rows");
    assert_eq!(r.needs.len(), 2, "one CROWDEQUAL per row");

    let mut caches = CompareCaches::default();
    let instr = "Do these two values refer to the same entity?";
    caches.put_equal("Math", "Mathematics", instr, true);
    caches.put_equal("CS", "Mathematics", instr, false);
    let r2 = run_with(&db, sql, &caches);
    assert!(r2.is_final());
    assert_eq!(r2.rows, vec![row!["Math"]]);
    assert_eq!(r2.stats.compare_cache_hits, 2);
}

#[test]
fn crowdequal_fast_path_for_identical_values() {
    let db = setup();
    db.insert("dept", row!["Math", 3i64]).unwrap();
    let r = run(&db, "SELECT dept FROM dept WHERE dept ~= 'Math'");
    // Machine-equal values never go to the crowd.
    assert!(r.is_final());
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn crowdorder_sort_with_cache() {
    let db = setup();
    seed_talks(&db);
    let sql = "SELECT title FROM talk \
               ORDER BY CROWDORDER(title, 'Which talk did you like better') LIMIT 2";
    let r = run(&db, sql);
    // Round 1: needs for uncached comparisons, fallback order meanwhile.
    assert!(!r.needs.is_empty());
    assert!(r.rows.len() == 2);

    // The crowd prefers PIQL > Qurk > CrowdDB.
    let mut caches = CompareCaches::default();
    let q = "Which talk did you like better";
    caches.put_prefer("PIQL", "Qurk", q, true);
    caches.put_prefer("PIQL", "CrowdDB", q, true);
    caches.put_prefer("Qurk", "CrowdDB", q, true);
    let r2 = run_with(&db, sql, &caches);
    assert!(r2.is_final(), "needs: {:?}", r2.needs);
    assert_eq!(r2.rows, vec![row!["PIQL"], row!["Qurk"]]);
}

#[test]
fn machine_sort_and_limit_offset() {
    let db = setup();
    seed_talks(&db);
    let r = run(
        &db,
        "SELECT title FROM talk ORDER BY title DESC LIMIT 2 OFFSET 1",
    );
    assert_eq!(r.rows, vec![row!["PIQL"], row!["CrowdDB"]]);
}

#[test]
fn aggregation_group_by_having() {
    let db = setup();
    db.insert("notableattendee", row!["A", "CrowdDB"]).unwrap();
    db.insert("notableattendee", row!["B", "CrowdDB"]).unwrap();
    db.insert("notableattendee", row!["C", "Qurk"]).unwrap();
    let r = run(
        &db,
        "SELECT title, COUNT(*) FROM notableattendee GROUP BY title \
         HAVING COUNT(*) > 1 ORDER BY title",
    );
    assert_eq!(r.rows, vec![row!["CrowdDB", 2i64]]);
}

#[test]
fn aggregates_over_all_rows() {
    let db = setup();
    seed_talks(&db);
    let r = run(
        &db,
        "SELECT COUNT(*), COUNT(nb_attendees), SUM(nb_attendees), AVG(nb_attendees), \
         MIN(title), MAX(title) FROM talk",
    );
    // COUNT(*) counts rows; COUNT(col) skips missing (CrowdDB's CNULL).
    assert_eq!(r.rows[0][0], Value::Int(3));
    assert_eq!(r.rows[0][1], Value::Int(2));
    assert_eq!(r.rows[0][2], Value::Int(140));
    assert_eq!(r.rows[0][3], Value::Float(70.0));
    assert_eq!(r.rows[0][4], Value::str("CrowdDB"));
    assert_eq!(r.rows[0][5], Value::str("Qurk"));
}

#[test]
fn aggregate_on_empty_table() {
    let db = setup();
    let r = run(&db, "SELECT COUNT(*), MAX(nb_attendees) FROM talk");
    assert_eq!(r.rows, vec![Row::new(vec![Value::Int(0), Value::Null])]);
}

#[test]
fn count_distinct() {
    let db = setup();
    db.insert("notableattendee", row!["A", "CrowdDB"]).unwrap();
    db.insert("notableattendee", row!["B", "CrowdDB"]).unwrap();
    db.insert("notableattendee", row!["C", "Qurk"]).unwrap();
    let r = run(&db, "SELECT COUNT(DISTINCT title) FROM notableattendee");
    assert_eq!(r.rows, vec![row![2i64]]);
}

#[test]
fn distinct_rows() {
    let db = setup();
    db.insert("notableattendee", row!["A", "CrowdDB"]).unwrap();
    db.insert("notableattendee", row!["B", "CrowdDB"]).unwrap();
    let r = run(&db, "SELECT DISTINCT title FROM notableattendee");
    assert_eq!(r.rows, vec![row!["CrowdDB"]]);
}

#[test]
fn in_subquery_and_exists() {
    let db = setup();
    seed_talks(&db);
    db.insert("notableattendee", row!["Mike", "CrowdDB"])
        .unwrap();
    let r = run(
        &db,
        "SELECT title FROM talk WHERE title IN (SELECT title FROM notableattendee)",
    );
    assert_eq!(r.rows, vec![row!["CrowdDB"]]);
    let r = run(
        &db,
        "SELECT title FROM talk WHERE NOT EXISTS (SELECT name FROM notableattendee) \
         ORDER BY title",
    );
    assert!(r.rows.is_empty());
}

#[test]
fn scalar_subquery() {
    let db = setup();
    seed_talks(&db);
    let r = run(
        &db,
        "SELECT title FROM talk WHERE nb_attendees = (SELECT MAX(nb_attendees) FROM talk)",
    );
    assert_eq!(r.rows, vec![row!["Qurk"]]);
}

#[test]
fn select_without_from() {
    let db = setup();
    let r = run(&db, "SELECT 1 + 1, UPPER('ok'), 3 > 2");
    assert_eq!(r.rows, vec![row![2i64, "OK", true]]);
}

#[test]
fn case_expression_in_query() {
    let db = setup();
    seed_talks(&db);
    let r = run(
        &db,
        "SELECT title, CASE WHEN nb_attendees > 70 THEN 'big' ELSE 'small' END \
         FROM talk WHERE nb_attendees IS NOT CNULL ORDER BY title",
    );
    assert_eq!(r.rows, vec![row!["PIQL", "small"], row!["Qurk", "big"]]);
}

#[test]
fn is_cnull_predicates() {
    let db = setup();
    seed_talks(&db);
    let r = run(&db, "SELECT title FROM talk WHERE abstract IS CNULL");
    // NB: referencing `abstract` probes it too — but the row qualifies
    // this round because CNULL-ness is what's being asked.
    assert_eq!(r.rows, vec![row!["CrowdDB"]]);
    let r = run(
        &db,
        "SELECT title FROM talk WHERE abstract IS NOT CNULL ORDER BY title",
    );
    assert_eq!(r.rows, vec![row!["PIQL"], row!["Qurk"]]);
}

#[test]
fn derived_table_execution() {
    let db = setup();
    seed_talks(&db);
    let r = run(
        &db,
        "SELECT d.t FROM (SELECT title AS t, nb_attendees AS n FROM talk) AS d \
         WHERE d.n > 70",
    );
    assert_eq!(r.rows, vec![row!["Qurk"]]);
}

#[test]
fn cross_join_and_comma_join() {
    let db = setup();
    db.insert("dept", row!["Math", 1i64]).unwrap();
    db.insert("dept", row!["CS", 2i64]).unwrap();
    let r = run(&db, "SELECT a.dept, b.dept FROM dept a, dept b");
    assert_eq!(r.rows.len(), 4);
    let r = run(
        &db,
        "SELECT a.dept, b.dept FROM dept a, dept b WHERE a.building < b.building",
    );
    assert_eq!(r.rows, vec![row!["Math", "CS"]]);
}

#[test]
fn needs_are_deduplicated_across_operators() {
    let db = setup();
    seed_talks(&db);
    // abstract referenced twice: one probe need only.
    let r = run(
        &db,
        "SELECT abstract, LENGTH(abstract) FROM talk WHERE title = 'CrowdDB'",
    );
    assert_eq!(r.needs.len(), 1);
}

#[test]
fn stats_are_collected() {
    let db = setup();
    seed_talks(&db);
    let r = run(&db, "SELECT abstract FROM talk");
    assert_eq!(r.stats.rows_scanned, 3);
    assert_eq!(r.stats.cnulls_seen, 1);
}

#[test]
fn division_by_zero_is_runtime_error() {
    let db = setup();
    seed_talks(&db);
    let p = plan(
        &db,
        "SELECT nb_attendees / 0 FROM talk WHERE title = 'Qurk'",
    );
    let caches = CompareCaches::default();
    assert!(execute(&db, &caches, &p).is_err());
}

#[test]
fn pk_point_lookup_avoids_full_scan() {
    let db = setup();
    for i in 0..50 {
        db.insert("dept", row![format!("d{i}"), i as i64]).unwrap();
    }
    let r = run(&db, "SELECT building FROM dept WHERE dept = 'd7'");
    assert_eq!(r.rows, vec![row![7i64]]);
    assert_eq!(r.stats.index_probes, 1, "PK index should serve the scan");
    assert_eq!(r.stats.rows_scanned, 1, "only the matching row is read");
    // Non-key predicates still scan.
    let r = run(&db, "SELECT dept FROM dept WHERE building = 7");
    assert_eq!(r.stats.index_probes, 0);
    assert_eq!(r.stats.rows_scanned, 50);
}

#[test]
fn pk_lookup_respects_residual_predicate() {
    let db = setup();
    db.insert("dept", row!["math", 3i64]).unwrap();
    // The extra conjunct must still filter after the index lookup.
    let r = run(
        &db,
        "SELECT dept FROM dept WHERE dept = 'math' AND building > 5",
    );
    assert!(r.rows.is_empty());
    assert_eq!(r.stats.index_probes, 1);
}

#[test]
fn pk_lookup_miss_returns_empty() {
    let db = setup();
    db.insert("dept", row!["math", 3i64]).unwrap();
    let r = run(&db, "SELECT dept FROM dept WHERE dept = 'ghost'");
    assert!(r.rows.is_empty());
    assert_eq!(r.stats.index_probes, 1);
    assert_eq!(r.stats.rows_scanned, 0);
}

// Regression tests for the shared evaluation path (`crowddb_exec::eval`):
// query execution (operators) and DML planning evaluate predicates via
// the same `eval`/`eval_truth`, so crowd-compare needs must dedup
// identically on both sides.

#[test]
fn crowdequal_needs_dedup_identical_operand_pairs() {
    let db = setup();
    db.insert("talk", row!["A", "same abstract", 1i64]).unwrap();
    db.insert("talk", row!["B", "same abstract", 2i64]).unwrap();
    db.insert("talk", row!["C", "other abstract", 3i64])
        .unwrap();
    let r = run(
        &db,
        "SELECT title FROM talk WHERE abstract ~= 'same.abstract'",
    );
    let equals: Vec<_> = r
        .needs
        .iter()
        .filter(|n| matches!(n, TaskNeed::Equal { .. }))
        .collect();
    // Rows A and B carry the identical (left, right) operand pair: one
    // need for them, one for row C's distinct pair.
    assert_eq!(equals.len(), 2, "one need per distinct operand pair");
}

#[test]
fn crowdequal_needs_identical_for_query_and_dml_paths() {
    let db = setup();
    db.insert("talk", row!["A", "same abstract", 1i64]).unwrap();
    db.insert("talk", row!["B", "same abstract", 2i64]).unwrap();
    db.insert("talk", row!["C", "other abstract", 3i64])
        .unwrap();
    let query = run(
        &db,
        "SELECT title FROM talk WHERE abstract ~= 'same.abstract'",
    );
    let Statement::Update(upd) =
        parse_statement("UPDATE talk SET nb_attendees = 0 WHERE abstract ~= 'same.abstract'")
            .unwrap()
    else {
        panic!()
    };
    let dml = crowddb_exec::dml::plan_update(&db, &CompareCaches::default(), &upd).unwrap();
    assert_eq!(
        query.needs, dml.needs,
        "select and DML evaluate the predicate through the same path"
    );
}

#[test]
fn crowdorder_needs_dedup_identical_pairs() {
    let db = setup();
    // Two pairs of rows sharing a key value: the pivot comparison
    // (same, other) happens twice during sorting but equal rendered
    // values compare machine-side, so exactly one Order need survives.
    db.insert("talk", row!["A", "same", 1i64]).unwrap();
    db.insert("talk", row!["B", "same", 2i64]).unwrap();
    db.insert("talk", row!["C", "other", 3i64]).unwrap();
    db.insert("talk", row!["D", "other", 4i64]).unwrap();
    let r = run(
        &db,
        "SELECT title FROM talk ORDER BY CROWDORDER(abstract, 'Which is better')",
    );
    let orders: Vec<_> = r
        .needs
        .iter()
        .filter(|n| matches!(n, TaskNeed::Order { .. }))
        .collect();
    assert_eq!(orders.len(), 1, "duplicate comparisons dedup to one need");
}
