//! Task needs: what a query run wants from the crowd.
//!
//! Needs are produced during execution and deduplicated by a canonical
//! key (the same missing value referenced twice in one round yields one
//! task). The driver converts needs into platform `TaskSpec`s.

use crowddb_common::{DataType, TupleId, Value};

/// One unit of crowd work a query run discovered it needs.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskNeed {
    /// CrowdProbe, missing-value flavor: fill `columns` of the tuple
    /// `tid` of `table`; `context` carries known fields for the form.
    ProbeValues {
        /// Base table.
        table: String,
        /// Tuple to fill (write-back target).
        tid: TupleId,
        /// `(column name, rendered value)` context shown to workers.
        context: Vec<(String, String)>,
        /// `(ordinal, name, type)` of each missing CROWD column to ask.
        columns: Vec<(usize, String, DataType)>,
    },
    /// CrowdProbe/CrowdJoin, new-tuple flavor: contribute up to `want`
    /// new tuples of CROWD table `table`, with `preset` columns fixed
    /// (e.g. the join key).
    NewTuples {
        /// Target CROWD table.
        table: String,
        /// `(column name, value)` pairs fixed by the query.
        preset: Vec<(String, Value)>,
        /// How many tuples the plan still wants.
        want: u64,
    },
    /// CrowdCompare, equality flavor (`CROWDEQUAL`).
    Equal {
        /// Left value (rendered for the worker; also the cache key).
        left: String,
        /// Right value.
        right: String,
        /// Question text.
        instruction: String,
    },
    /// CrowdCompare, ordering flavor (`CROWDORDER`).
    Order {
        /// Left item.
        left: String,
        /// Right item.
        right: String,
        /// Question text.
        instruction: String,
    },
}

impl TaskNeed {
    /// Canonical deduplication key. Two needs with the same key are the
    /// same unit of crowd work.
    pub fn dedup_key(&self) -> String {
        match self {
            TaskNeed::ProbeValues {
                table,
                tid,
                columns,
                ..
            } => {
                let cols: Vec<&str> = columns.iter().map(|(_, n, _)| n.as_str()).collect();
                format!("probe:{table}:{tid}:{}", cols.join(","))
            }
            TaskNeed::NewTuples { table, preset, .. } => {
                let kv: Vec<String> = preset
                    .iter()
                    .map(|(k, v)| format!("{k}={}", v.sql_literal()))
                    .collect();
                format!("new:{table}:{}", kv.join(","))
            }
            TaskNeed::Equal {
                left,
                right,
                instruction,
            } => {
                // CROWDEQUAL is symmetric: canonicalize operand order.
                let (a, b) = if left <= right {
                    (left, right)
                } else {
                    (right, left)
                };
                format!("eq:{instruction}:{a}\u{1}{b}")
            }
            TaskNeed::Order {
                left,
                right,
                instruction,
            } => {
                // One task decides both (a,b) and (b,a).
                let (a, b) = if left <= right {
                    (left, right)
                } else {
                    (right, left)
                };
                format!("ord:{instruction}:{a}\u{1}{b}")
            }
        }
    }

    /// Short description for logs.
    pub fn describe(&self) -> String {
        match self {
            TaskNeed::ProbeValues {
                table,
                tid,
                columns,
                ..
            } => {
                format!("probe {table}/{tid} ({} cols)", columns.len())
            }
            TaskNeed::NewTuples { table, want, .. } => {
                format!("new tuples for {table} (want {want})")
            }
            TaskNeed::Equal { left, right, .. } => format!("equal? '{left}' ~ '{right}'"),
            TaskNeed::Order { left, right, .. } => format!("order? '{left}' vs '{right}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_dedup_is_symmetric() {
        let a = TaskNeed::Equal {
            left: "IBM".into(),
            right: "I.B.M.".into(),
            instruction: "same?".into(),
        };
        let b = TaskNeed::Equal {
            left: "I.B.M.".into(),
            right: "IBM".into(),
            instruction: "same?".into(),
        };
        assert_eq!(a.dedup_key(), b.dedup_key());
        let c = TaskNeed::Equal {
            left: "IBM".into(),
            right: "I.B.M.".into(),
            instruction: "different question".into(),
        };
        assert_ne!(a.dedup_key(), c.dedup_key());
    }

    #[test]
    fn probe_dedup_by_tuple_and_columns() {
        let mk = |tid: u64, cols: Vec<&str>| TaskNeed::ProbeValues {
            table: "talk".into(),
            tid: TupleId(tid),
            context: vec![],
            columns: cols
                .into_iter()
                .enumerate()
                .map(|(i, c)| (i, c.to_string(), DataType::Str))
                .collect(),
        };
        assert_eq!(mk(1, vec!["a"]).dedup_key(), mk(1, vec!["a"]).dedup_key());
        assert_ne!(mk(1, vec!["a"]).dedup_key(), mk(2, vec!["a"]).dedup_key());
        assert_ne!(
            mk(1, vec!["a"]).dedup_key(),
            mk(1, vec!["a", "b"]).dedup_key()
        );
    }

    #[test]
    fn new_tuples_dedup_by_preset() {
        let mk = |title: &str| TaskNeed::NewTuples {
            table: "notableattendee".into(),
            preset: vec![("title".into(), Value::str(title))],
            want: 5,
        };
        assert_eq!(mk("CrowdDB").dedup_key(), mk("CrowdDB").dedup_key());
        assert_ne!(mk("CrowdDB").dedup_key(), mk("Qurk").dedup_key());
    }

    #[test]
    fn describe_is_informative() {
        let n = TaskNeed::Order {
            left: "A".into(),
            right: "B".into(),
            instruction: "pick".into(),
        };
        assert!(n.describe().contains("'A' vs 'B'"));
    }
}
