//! The per-run execution context: crowd answer caches, collected
//! needs, and the cooperative-cancellation guard.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;

use crowddb_common::{CancelReason, CrowdError, Result, Row, TableSchema};
use crowddb_plan::LogicalPlan;
use crowddb_storage::Database;

use crate::need::TaskNeed;

/// Session-lived caches of crowd comparison verdicts.
///
/// Probe answers are written back into storage, so they need no cache;
/// comparisons (`CROWDEQUAL`, `CROWDORDER`) have nowhere to live in the
/// schema and are remembered here. Keys are the canonicalized rendered
/// operand pair plus the instruction (see [`CompareCaches::pair_key`]).
#[derive(Debug, Clone, Default)]
pub struct CompareCaches {
    /// `pair_key` → the two values are equal.
    pub equal: HashMap<String, bool>,
    /// `pair_key` → the *lexicographically smaller* operand is preferred.
    ///
    /// Storing the verdict relative to the canonical operand order makes
    /// the cache direction-independent.
    pub order: HashMap<String, bool>,
}

impl CompareCaches {
    /// Canonical cache key for an operand pair under an instruction.
    /// Returns `(key, swapped)` where `swapped` records whether the
    /// operands were reordered to canonicalize.
    pub fn pair_key(left: &str, right: &str, instruction: &str) -> (String, bool) {
        if left <= right {
            (format!("{instruction}\u{1}{left}\u{1}{right}"), false)
        } else {
            (format!("{instruction}\u{1}{right}\u{1}{left}"), true)
        }
    }

    /// Look up an equality verdict.
    pub fn get_equal(&self, left: &str, right: &str, instruction: &str) -> Option<bool> {
        let (key, _) = Self::pair_key(left, right, instruction);
        self.equal.get(&key).copied()
    }

    /// Record an equality verdict.
    pub fn put_equal(&mut self, left: &str, right: &str, instruction: &str, verdict: bool) {
        let (key, _) = Self::pair_key(left, right, instruction);
        self.equal.insert(key, verdict);
    }

    /// Look up an order verdict: `Some(true)` means `left` is preferred
    /// over `right`.
    pub fn get_prefer(&self, left: &str, right: &str, instruction: &str) -> Option<bool> {
        let (key, swapped) = Self::pair_key(left, right, instruction);
        self.order
            .get(&key)
            .map(|&small_wins| if swapped { !small_wins } else { small_wins })
    }

    /// Record an order verdict: `left_preferred` relative to the operands
    /// as given.
    pub fn put_prefer(&mut self, left: &str, right: &str, instruction: &str, left_preferred: bool) {
        let (key, swapped) = Self::pair_key(left, right, instruction);
        let small_wins = if swapped {
            !left_preferred
        } else {
            left_preferred
        };
        self.order.insert(key, small_wins);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.equal.len() + self.order.len()
    }

    /// Whether both caches are empty.
    pub fn is_empty(&self) -> bool {
        self.equal.is_empty() && self.order.is_empty()
    }
}

/// Shard count for [`SharedCaches`]. A power of two so the hash can be
/// masked; 16 shards keep contention negligible for any realistic
/// session count without bloating the empty-cache footprint.
const CACHE_SHARDS: usize = 16;

/// FNV-1a over the canonical pair key; stable across platforms so shard
/// routing (and therefore lock-acquisition patterns) is deterministic.
fn shard_for(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (CACHE_SHARDS - 1)
}

/// Sharded, thread-safe wrapper over [`CompareCaches`] so concurrent
/// sessions can read and settle comparison verdicts without funneling
/// through one lock.
///
/// Verdicts are routed to a shard by an FNV-1a hash of the canonical
/// pair key, so lookups and inserts for different comparisons usually
/// touch different locks. Reads during a round take a whole-cache
/// [`snapshot`](SharedCaches::snapshot) instead of locking per
/// comparison — a round sees one consistent cache state, matching the
/// single-threaded engine's semantics.
#[derive(Debug, Default)]
pub struct SharedCaches {
    shards: [parking_lot::RwLock<CompareCaches>; CACHE_SHARDS],
}

impl SharedCaches {
    /// An empty sharded cache.
    pub fn new() -> SharedCaches {
        SharedCaches::default()
    }

    /// Build from a flat cache (snapshot restore), routing every verdict
    /// to its shard.
    pub fn from_caches(flat: CompareCaches) -> SharedCaches {
        let shared = SharedCaches::new();
        shared.replace(flat);
        shared
    }

    /// Replace the entire contents with `flat`. Not atomic with respect
    /// to concurrent writers; callers serialize externally (restore and
    /// tests run single-threaded).
    pub fn replace(&self, flat: CompareCaches) {
        for shard in &self.shards {
            let mut guard = shard.write();
            guard.equal.clear();
            guard.order.clear();
        }
        for (key, v) in flat.equal {
            self.shards[shard_for(&key)].write().equal.insert(key, v);
        }
        for (key, v) in flat.order {
            self.shards[shard_for(&key)].write().order.insert(key, v);
        }
    }

    /// Merged copy of all shards, for round execution and snapshots.
    pub fn snapshot(&self) -> CompareCaches {
        let mut flat = CompareCaches::default();
        for shard in &self.shards {
            let guard = shard.read();
            flat.equal
                .extend(guard.equal.iter().map(|(k, v)| (k.clone(), *v)));
            flat.order
                .extend(guard.order.iter().map(|(k, v)| (k.clone(), *v)));
        }
        flat
    }

    /// Look up an equality verdict.
    pub fn get_equal(&self, left: &str, right: &str, instruction: &str) -> Option<bool> {
        let (key, _) = CompareCaches::pair_key(left, right, instruction);
        self.shards[shard_for(&key)].read().equal.get(&key).copied()
    }

    /// Record an equality verdict.
    pub fn put_equal(&self, left: &str, right: &str, instruction: &str, verdict: bool) {
        let (key, _) = CompareCaches::pair_key(left, right, instruction);
        self.shards[shard_for(&key)]
            .write()
            .equal
            .insert(key, verdict);
    }

    /// Look up an order verdict: `Some(true)` means `left` is preferred.
    pub fn get_prefer(&self, left: &str, right: &str, instruction: &str) -> Option<bool> {
        let (key, swapped) = CompareCaches::pair_key(left, right, instruction);
        self.shards[shard_for(&key)]
            .read()
            .order
            .get(&key)
            .map(|&small_wins| if swapped { !small_wins } else { small_wins })
    }

    /// Record an order verdict relative to the operands as given.
    pub fn put_prefer(&self, left: &str, right: &str, instruction: &str, left_preferred: bool) {
        let (key, swapped) = CompareCaches::pair_key(left, right, instruction);
        let small_wins = if swapped {
            !left_preferred
        } else {
            left_preferred
        };
        self.shards[shard_for(&key)]
            .write()
            .order
            .insert(key, small_wins);
    }

    /// Number of cached verdicts across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }
}

/// Needs emitted so far, broken down by kind. Snapshot-diffed around
/// each operator by `ops::run_op` to attribute needs per operator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeedCounts {
    /// Missing-value probe needs accepted (post-dedup).
    pub probe: u64,
    /// New-tuple enumeration needs accepted.
    pub new_tuples: u64,
    /// `CROWDEQUAL` comparison needs accepted.
    pub equal: u64,
    /// `CROWDORDER` comparison needs accepted.
    pub order: u64,
}

impl NeedCounts {
    /// Component-wise difference (`self` must be the later snapshot).
    pub fn diff(&self, earlier: &NeedCounts) -> NeedCounts {
        NeedCounts {
            probe: self.probe - earlier.probe,
            new_tuples: self.new_tuples - earlier.new_tuples,
            equal: self.equal - earlier.equal,
            order: self.order - earlier.order,
        }
    }

    /// Component-wise sum.
    pub fn add(&self, other: &NeedCounts) -> NeedCounts {
        NeedCounts {
            probe: self.probe + other.probe,
            new_tuples: self.new_tuples + other.new_tuples,
            equal: self.equal + other.equal,
            order: self.order + other.order,
        }
    }

    /// Total needs across all kinds.
    pub fn total(&self) -> u64 {
        self.probe + self.new_tuples + self.equal + self.order
    }
}

/// Counters reported per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rows scanned from base tables.
    pub rows_scanned: u64,
    /// CNULLs encountered in needed columns.
    pub cnulls_seen: u64,
    /// Crowd comparisons answered from cache.
    pub compare_cache_hits: u64,
    /// Crowd comparisons missing from cache.
    pub compare_cache_misses: u64,
    /// Comparisons resolved locally by the hybrid CROWDORDER machine
    /// path (identical/numeric operands) — no cache entry, no HIT.
    pub machine_ordered: u64,
    /// Scans answered via a primary-key index point lookup.
    pub index_lookups: u64,
    /// Secondary-index probes (point gets, range scans, and INL
    /// crowd-join probes).
    pub index_probes: u64,
}

/// Cooperative-cancellation guard threaded through the operator tree.
///
/// Operators call [`RunContext::check`] in their per-row loops and
/// [`super::ops::run_op`] charges each operator's output rows through
/// [`RunContext::charge_rows`]; both are cheap no-ops when no limit is
/// armed (`enabled` is precomputed so the hot path is one branch).
///
/// The guard is per-*round*: counters reset when a fresh `ExecCtx` is
/// built for the next round, so `max_intermediate_rows` bounds the rows
/// materialized within a single round (the unit of work the governor
/// terminates at). The chaos hooks `trip_cancel_after` / `panic_after`
/// fire at the Nth checkpoint and exist purely for fault-injection
/// tests.
#[derive(Debug, Clone, Default)]
pub struct ExecGuard {
    /// Session cancel flag; set by `CancelToken::cancel`.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Cap on rows materialized by operators within one round.
    pub max_intermediate_rows: Option<u64>,
    /// Cap on rows returned by the plan root (enforced by
    /// `execute_physical_guarded`, not by `check`).
    pub max_output_rows: Option<u64>,
    /// Chaos hook: behave as if the user cancelled at the Nth check.
    pub trip_cancel_after: Option<u64>,
    /// Chaos hook: panic at the Nth check (panic-containment tests).
    pub panic_after: Option<u64>,
    /// Hybrid CROWDORDER: resolve machine-comparable pairs (identical
    /// strings, numeric operands) locally and send only genuinely
    /// incomparable pairs to the crowd. Off by default — turning it on
    /// changes which HITs are posted, so runs are comparable only at
    /// equal settings.
    pub hybrid_order: bool,
}

impl ExecGuard {
    /// A guard with no limits armed — every check is a near-free branch.
    pub fn unlimited() -> ExecGuard {
        ExecGuard::default()
    }

    /// Whether any check-point work is needed at all.
    fn engaged(&self) -> bool {
        self.cancel.is_some()
            || self.max_intermediate_rows.is_some()
            || self.trip_cancel_after.is_some()
            || self.panic_after.is_some()
    }
}

/// Mutable state threaded through one execution round.
pub struct RunContext<'caches> {
    /// Session comparison caches (shared across rounds).
    pub caches: &'caches CompareCaches,
    /// Collected needs, deduplicated.
    needs: Vec<TaskNeed>,
    seen_needs: HashSet<String>,
    /// Materialized uncorrelated subquery results, keyed by plan text.
    pub subquery_results: HashMap<String, Vec<Row>>,
    /// Counters.
    pub stats: RunStats,
    /// Accepted needs by kind (for per-operator attribution).
    pub need_counts: NeedCounts,
    /// Cooperative-cancellation guard for this round.
    guard: ExecGuard,
    /// Fast path: false ⇒ `check()` is a single branch.
    guard_engaged: bool,
    /// Chaos hooks armed ⇒ route checks through the counting slow path.
    chaos_engaged: bool,
    /// Checkpoints passed this round (drives the chaos hooks).
    checks: u64,
    /// Rows charged by operators this round.
    intermediate_rows: u64,
}

impl<'caches> RunContext<'caches> {
    /// Fresh context for one round.
    pub fn new(caches: &'caches CompareCaches) -> RunContext<'caches> {
        RunContext::with_guard(caches, ExecGuard::unlimited())
    }

    /// Fresh context for one round with a cancellation guard armed.
    pub fn with_guard(caches: &'caches CompareCaches, guard: ExecGuard) -> RunContext<'caches> {
        let guard_engaged = guard.engaged();
        let chaos_engaged = guard.trip_cancel_after.is_some() || guard.panic_after.is_some();
        RunContext {
            caches,
            needs: Vec::new(),
            seen_needs: HashSet::new(),
            subquery_results: HashMap::new(),
            stats: RunStats::default(),
            need_counts: NeedCounts::default(),
            guard,
            guard_engaged,
            chaos_engaged,
            checks: 0,
            intermediate_rows: 0,
        }
    }

    /// Cooperative-cancellation checkpoint. Operators call this in
    /// per-row loops; it is a single branch when no guard is armed, and
    /// one relaxed atomic load in the common armed case (cancel flag
    /// without chaos hooks) — kept inline so a governed session's
    /// per-row cost stays in the noise (E13).
    #[inline]
    pub fn check(&mut self) -> Result<()> {
        if !self.guard_engaged {
            return Ok(());
        }
        if self.chaos_engaged {
            return self.check_chaos();
        }
        if let Some(flag) = &self.guard.cancel {
            if flag.load(AtomicOrdering::Relaxed) {
                return Err(CrowdError::Cancelled(CancelReason::UserRequested));
            }
        }
        Ok(())
    }

    #[cold]
    fn check_chaos(&mut self) -> Result<()> {
        self.checks += 1;
        if let Some(n) = self.guard.panic_after {
            if self.checks >= n {
                panic!("injected operator panic at check {n} (chaos hook)");
            }
        }
        if let Some(n) = self.guard.trip_cancel_after {
            if self.checks >= n {
                return Err(CrowdError::Cancelled(CancelReason::UserRequested));
            }
        }
        if let Some(flag) = &self.guard.cancel {
            if flag.load(AtomicOrdering::Relaxed) {
                return Err(CrowdError::Cancelled(CancelReason::UserRequested));
            }
        }
        Ok(())
    }

    /// Charge `n` operator-output rows against the intermediate-row cap
    /// (also a checkpoint). Called centrally by `ops::run_op`.
    pub fn charge_rows(&mut self, n: u64) -> Result<()> {
        self.check()?;
        self.intermediate_rows += n;
        if let Some(cap) = self.guard.max_intermediate_rows {
            if self.intermediate_rows > cap {
                return Err(CrowdError::Cancelled(CancelReason::IntermediateRowLimit));
            }
        }
        Ok(())
    }

    /// The guard's output-row cap (enforced at the plan root).
    pub fn max_output_rows(&self) -> Option<u64> {
        self.guard.max_output_rows
    }

    /// Checkpoints passed so far this round (test introspection).
    pub fn checks_passed(&self) -> u64 {
        self.checks
    }

    /// Record a need (deduplicated). Returns whether the need was
    /// accepted (`false` ⇒ an identical need was already recorded).
    pub fn push_need(&mut self, need: TaskNeed) -> bool {
        let key = need.dedup_key();
        if !self.seen_needs.insert(key) {
            return false;
        }
        match &need {
            TaskNeed::ProbeValues { .. } => self.need_counts.probe += 1,
            TaskNeed::NewTuples { .. } => self.need_counts.new_tuples += 1,
            TaskNeed::Equal { .. } => self.need_counts.equal += 1,
            TaskNeed::Order { .. } => self.need_counts.order += 1,
        }
        self.needs.push(need);
        true
    }

    /// Needs collected so far.
    pub fn needs(&self) -> &[TaskNeed] {
        &self.needs
    }

    /// Consume the context, yielding the needs.
    pub fn into_needs(self) -> Vec<TaskNeed> {
        self.needs
    }
}

/// Everything one execution round threads through the operator tree:
/// the database, the per-round [`RunContext`], and a table-schema cache.
///
/// Operators (see [`crate::ops`]) and the expression evaluator
/// ([`crate::eval::eval`]) take `&mut ExecCtx` rather than owning any
/// state, so the same context serves the main plan, subqueries, and DML.
pub struct ExecCtx<'a> {
    /// The database being queried.
    pub db: &'a Database,
    /// Per-round mutable state (needs, counters, subquery memo).
    pub rt: RunContext<'a>,
    schema_cache: HashMap<String, TableSchema>,
}

impl<'a> ExecCtx<'a> {
    /// Fresh context sharing the session's comparison caches.
    pub fn new(db: &'a Database, caches: &'a CompareCaches) -> ExecCtx<'a> {
        ExecCtx::with_guard(db, caches, ExecGuard::unlimited())
    }

    /// Fresh context with a cooperative-cancellation guard armed.
    pub fn with_guard(
        db: &'a Database,
        caches: &'a CompareCaches,
        guard: ExecGuard,
    ) -> ExecCtx<'a> {
        ExecCtx {
            db,
            rt: RunContext::with_guard(caches, guard),
            schema_cache: HashMap::new(),
        }
    }

    /// Finish the round, yielding collected needs and counters.
    pub fn finish(self) -> (Vec<TaskNeed>, RunStats) {
        let stats = self.rt.stats;
        (self.rt.into_needs(), stats)
    }

    /// Catalog schema for `table`, cached per round.
    pub fn table_schema(&mut self, table: &str) -> Result<TableSchema> {
        if let Some(s) = self.schema_cache.get(table) {
            return Ok(s.clone());
        }
        let s = self.db.schema(table)?;
        self.schema_cache.insert(table.to_string(), s.clone());
        Ok(s)
    }

    /// Run an uncorrelated subplan, memoized per round by plan text.
    ///
    /// Lowers the logical subplan and executes it through the operator
    /// tree; its needs and cache counters land on whichever operator's
    /// expression evaluation triggered it.
    pub fn run_subplan(&mut self, plan: &LogicalPlan) -> Result<Vec<Row>> {
        let key = plan.explain();
        if let Some(rows) = self.rt.subquery_results.get(&key) {
            return Ok(rows.clone());
        }
        let physical = crate::executor::lower_plan(self.db, plan);
        let op = crate::ops::build(&physical);
        let mut node = crate::ops::OpStatsNode::skeleton(&physical);
        let rows = crate::ops::run_op(op.as_ref(), self, &mut node)?;
        self.rt.subquery_results.insert(key, rows.clone());
        Ok(rows)
    }

    /// Crowd comparison used by sorts: preferred items sort first.
    /// Cache misses record an [`TaskNeed::Order`] need and fall back to
    /// a deterministic lexicographic order for this round.
    ///
    /// Under [`ExecGuard::hybrid_order`], machine-comparable pairs
    /// (identical after trimming, or both numeric) are ordered locally
    /// and never reach the cache or the crowd — the hybrid CROWDORDER
    /// optimization.
    pub fn crowd_compare(
        &mut self,
        left: &str,
        right: &str,
        instruction: &str,
    ) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if left == right {
            return Ordering::Equal;
        }
        if self.rt.guard.hybrid_order {
            if let Some(ord) = crowddb_quality::try_machine_order(left, right) {
                self.rt.stats.machine_ordered += 1;
                return ord;
            }
        }
        match self.rt.caches.get_prefer(left, right, instruction) {
            Some(true) => {
                self.rt.stats.compare_cache_hits += 1;
                Ordering::Less
            }
            Some(false) => {
                self.rt.stats.compare_cache_hits += 1;
                Ordering::Greater
            }
            None => {
                self.rt.stats.compare_cache_misses += 1;
                self.rt.push_need(TaskNeed::Order {
                    left: left.to_string(),
                    right: right.to_string(),
                    instruction: instruction.to_string(),
                });
                // Deterministic fallback for this round.
                left.cmp(right)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_cache_symmetric() {
        let mut c = CompareCaches::default();
        c.put_equal("IBM", "I.B.M.", "same?", true);
        assert_eq!(c.get_equal("I.B.M.", "IBM", "same?"), Some(true));
        assert_eq!(c.get_equal("IBM", "Apple", "same?"), None);
        assert_eq!(c.get_equal("IBM", "I.B.M.", "other q"), None);
    }

    #[test]
    fn order_cache_direction_aware() {
        let mut c = CompareCaches::default();
        // "b" preferred over "a".
        c.put_prefer("b", "a", "which?", true);
        assert_eq!(c.get_prefer("b", "a", "which?"), Some(true));
        assert_eq!(c.get_prefer("a", "b", "which?"), Some(false));
        // And the reverse registration works too.
        c.put_prefer("x", "y", "which?", false);
        assert_eq!(c.get_prefer("y", "x", "which?"), Some(true));
    }

    #[test]
    fn needs_dedup() {
        let caches = CompareCaches::default();
        let mut ctx = RunContext::new(&caches);
        for _ in 0..3 {
            ctx.push_need(TaskNeed::Equal {
                left: "a".into(),
                right: "b".into(),
                instruction: "?".into(),
            });
        }
        ctx.push_need(TaskNeed::Equal {
            left: "b".into(),
            right: "a".into(),
            instruction: "?".into(),
        });
        assert_eq!(ctx.needs().len(), 1);
        assert_eq!(ctx.into_needs().len(), 1);
    }

    #[test]
    fn cache_len() {
        let mut c = CompareCaches::default();
        assert!(c.is_empty());
        c.put_equal("a", "b", "q", false);
        c.put_prefer("a", "b", "q", true);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn shared_caches_match_flat_semantics() {
        let shared = SharedCaches::new();
        assert!(shared.is_empty());
        shared.put_equal("IBM", "I.B.M.", "same?", true);
        shared.put_prefer("b", "a", "which?", true);
        assert_eq!(shared.get_equal("I.B.M.", "IBM", "same?"), Some(true));
        assert_eq!(shared.get_prefer("a", "b", "which?"), Some(false));
        assert_eq!(shared.len(), 2);

        let flat = shared.snapshot();
        assert_eq!(flat.get_equal("IBM", "I.B.M.", "same?"), Some(true));
        assert_eq!(flat.get_prefer("b", "a", "which?"), Some(true));

        let rebuilt = SharedCaches::from_caches(flat);
        assert_eq!(rebuilt.len(), 2);
        assert_eq!(rebuilt.get_prefer("b", "a", "which?"), Some(true));
    }

    #[test]
    fn shared_caches_round_trip_many_keys() {
        let shared = SharedCaches::new();
        for i in 0..200 {
            shared.put_equal(&format!("L{i}"), &format!("R{i}"), "q", i % 2 == 0);
            shared.put_prefer(&format!("L{i}"), &format!("R{i}"), "q", i % 3 == 0);
        }
        assert_eq!(shared.len(), 400);
        let snap = shared.snapshot();
        assert_eq!(snap.len(), 400);
        for i in 0..200 {
            assert_eq!(
                shared.get_equal(&format!("R{i}"), &format!("L{i}"), "q"),
                Some(i % 2 == 0),
                "key {i}"
            );
        }
    }

    #[test]
    fn unarmed_guard_checks_are_free() {
        let caches = CompareCaches::default();
        let mut ctx = RunContext::new(&caches);
        for _ in 0..1000 {
            ctx.check().unwrap();
            ctx.charge_rows(10).unwrap();
        }
        // The fast path never even counts checkpoints.
        assert_eq!(ctx.checks_passed(), 0);
    }

    #[test]
    fn cancel_flag_trips_check() {
        use crowddb_common::{CancelReason, CrowdError};
        let caches = CompareCaches::default();
        let flag = Arc::new(AtomicBool::new(false));
        let guard = ExecGuard {
            cancel: Some(Arc::clone(&flag)),
            ..ExecGuard::default()
        };
        let mut ctx = RunContext::with_guard(&caches, guard);
        ctx.check().unwrap();
        flag.store(true, AtomicOrdering::Relaxed);
        assert_eq!(
            ctx.check(),
            Err(CrowdError::Cancelled(CancelReason::UserRequested))
        );
    }

    #[test]
    fn intermediate_row_cap_trips_charge() {
        use crowddb_common::{CancelReason, CrowdError};
        let caches = CompareCaches::default();
        let guard = ExecGuard {
            max_intermediate_rows: Some(25),
            ..ExecGuard::default()
        };
        let mut ctx = RunContext::with_guard(&caches, guard);
        ctx.charge_rows(20).unwrap();
        assert_eq!(
            ctx.charge_rows(20),
            Err(CrowdError::Cancelled(CancelReason::IntermediateRowLimit))
        );
    }

    #[test]
    fn trip_cancel_after_counts_checkpoints() {
        use crowddb_common::{CancelReason, CrowdError};
        let caches = CompareCaches::default();
        let guard = ExecGuard {
            trip_cancel_after: Some(3),
            ..ExecGuard::default()
        };
        let mut ctx = RunContext::with_guard(&caches, guard);
        ctx.check().unwrap();
        ctx.check().unwrap();
        assert_eq!(
            ctx.check(),
            Err(CrowdError::Cancelled(CancelReason::UserRequested))
        );
    }

    #[test]
    fn shared_caches_concurrent_writers() {
        let shared = std::sync::Arc::new(SharedCaches::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    for i in 0..100 {
                        shared.put_equal(&format!("t{t}-{i}"), "x", "q", true);
                    }
                });
            }
        });
        assert_eq!(shared.len(), 400);
    }
}
