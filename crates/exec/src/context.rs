//! The per-run execution context: crowd answer caches and collected
//! needs.

use std::collections::{HashMap, HashSet};

use crowddb_common::Row;

use crate::need::TaskNeed;

/// Session-lived caches of crowd comparison verdicts.
///
/// Probe answers are written back into storage, so they need no cache;
/// comparisons (`CROWDEQUAL`, `CROWDORDER`) have nowhere to live in the
/// schema and are remembered here. Keys are the canonicalized rendered
/// operand pair plus the instruction (see [`CompareCaches::pair_key`]).
#[derive(Debug, Clone, Default)]
pub struct CompareCaches {
    /// `pair_key` → the two values are equal.
    pub equal: HashMap<String, bool>,
    /// `pair_key` → the *lexicographically smaller* operand is preferred.
    ///
    /// Storing the verdict relative to the canonical operand order makes
    /// the cache direction-independent.
    pub order: HashMap<String, bool>,
}

impl CompareCaches {
    /// Canonical cache key for an operand pair under an instruction.
    /// Returns `(key, swapped)` where `swapped` records whether the
    /// operands were reordered to canonicalize.
    pub fn pair_key(left: &str, right: &str, instruction: &str) -> (String, bool) {
        if left <= right {
            (format!("{instruction}\u{1}{left}\u{1}{right}"), false)
        } else {
            (format!("{instruction}\u{1}{right}\u{1}{left}"), true)
        }
    }

    /// Look up an equality verdict.
    pub fn get_equal(&self, left: &str, right: &str, instruction: &str) -> Option<bool> {
        let (key, _) = Self::pair_key(left, right, instruction);
        self.equal.get(&key).copied()
    }

    /// Record an equality verdict.
    pub fn put_equal(&mut self, left: &str, right: &str, instruction: &str, verdict: bool) {
        let (key, _) = Self::pair_key(left, right, instruction);
        self.equal.insert(key, verdict);
    }

    /// Look up an order verdict: `Some(true)` means `left` is preferred
    /// over `right`.
    pub fn get_prefer(&self, left: &str, right: &str, instruction: &str) -> Option<bool> {
        let (key, swapped) = Self::pair_key(left, right, instruction);
        self.order
            .get(&key)
            .map(|&small_wins| if swapped { !small_wins } else { small_wins })
    }

    /// Record an order verdict: `left_preferred` relative to the operands
    /// as given.
    pub fn put_prefer(&mut self, left: &str, right: &str, instruction: &str, left_preferred: bool) {
        let (key, swapped) = Self::pair_key(left, right, instruction);
        let small_wins = if swapped {
            !left_preferred
        } else {
            left_preferred
        };
        self.order.insert(key, small_wins);
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.equal.len() + self.order.len()
    }

    /// Whether both caches are empty.
    pub fn is_empty(&self) -> bool {
        self.equal.is_empty() && self.order.is_empty()
    }
}

/// Counters reported per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rows scanned from base tables.
    pub rows_scanned: u64,
    /// CNULLs encountered in needed columns.
    pub cnulls_seen: u64,
    /// Crowd comparisons answered from cache.
    pub compare_cache_hits: u64,
    /// Crowd comparisons missing from cache.
    pub compare_cache_misses: u64,
    /// Scans answered via a primary-key index point lookup.
    pub index_lookups: u64,
}

/// Mutable state threaded through one execution round.
pub struct RunContext<'caches> {
    /// Session comparison caches (shared across rounds).
    pub caches: &'caches CompareCaches,
    /// Collected needs, deduplicated.
    needs: Vec<TaskNeed>,
    seen_needs: HashSet<String>,
    /// Materialized uncorrelated subquery results, keyed by plan text.
    pub subquery_results: HashMap<String, Vec<Row>>,
    /// Counters.
    pub stats: RunStats,
}

impl<'caches> RunContext<'caches> {
    /// Fresh context for one round.
    pub fn new(caches: &'caches CompareCaches) -> RunContext<'caches> {
        RunContext {
            caches,
            needs: Vec::new(),
            seen_needs: HashSet::new(),
            subquery_results: HashMap::new(),
            stats: RunStats::default(),
        }
    }

    /// Record a need (deduplicated).
    pub fn push_need(&mut self, need: TaskNeed) {
        let key = need.dedup_key();
        if self.seen_needs.insert(key) {
            self.needs.push(need);
        }
    }

    /// Needs collected so far.
    pub fn needs(&self) -> &[TaskNeed] {
        &self.needs
    }

    /// Consume the context, yielding the needs.
    pub fn into_needs(self) -> Vec<TaskNeed> {
        self.needs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_cache_symmetric() {
        let mut c = CompareCaches::default();
        c.put_equal("IBM", "I.B.M.", "same?", true);
        assert_eq!(c.get_equal("I.B.M.", "IBM", "same?"), Some(true));
        assert_eq!(c.get_equal("IBM", "Apple", "same?"), None);
        assert_eq!(c.get_equal("IBM", "I.B.M.", "other q"), None);
    }

    #[test]
    fn order_cache_direction_aware() {
        let mut c = CompareCaches::default();
        // "b" preferred over "a".
        c.put_prefer("b", "a", "which?", true);
        assert_eq!(c.get_prefer("b", "a", "which?"), Some(true));
        assert_eq!(c.get_prefer("a", "b", "which?"), Some(false));
        // And the reverse registration works too.
        c.put_prefer("x", "y", "which?", false);
        assert_eq!(c.get_prefer("y", "x", "which?"), Some(true));
    }

    #[test]
    fn needs_dedup() {
        let caches = CompareCaches::default();
        let mut ctx = RunContext::new(&caches);
        for _ in 0..3 {
            ctx.push_need(TaskNeed::Equal {
                left: "a".into(),
                right: "b".into(),
                instruction: "?".into(),
            });
        }
        ctx.push_need(TaskNeed::Equal {
            left: "b".into(),
            right: "a".into(),
            instruction: "?".into(),
        });
        assert_eq!(ctx.needs().len(), 1);
        assert_eq!(ctx.into_needs().len(), 1);
    }

    #[test]
    fn cache_len() {
        let mut c = CompareCaches::default();
        assert!(c.is_empty());
        c.put_equal("a", "b", "q", false);
        c.put_prefer("a", "b", "q", true);
        assert_eq!(c.len(), 2);
    }
}
