//! # crowddb-exec
//!
//! The CrowdDB execution engine: a materializing (vector-at-a-time)
//! executor for optimized logical plans, plus the three crowd operators
//! from paper §3.2.1:
//!
//! * **CrowdProbe** — lives inside table scans: rows whose *needed*
//!   CROWD columns hold `CNULL` generate probe task needs, and bounded
//!   CROWD-table scans short of their quota generate new-tuple needs;
//! * **CrowdJoin** — an index nested-loop join whose inner side is a
//!   CROWD table: outer rows without a match generate new-tuple needs
//!   with the join key preset;
//! * **CrowdCompare** — embedded in predicate evaluation (`CROWDEQUAL`)
//!   and sorting (`CROWDORDER`): comparisons missing from the session's
//!   answer caches generate compare task needs.
//!
//! Execution is **round-based**: a run never blocks on humans. It
//! produces the rows derivable from current knowledge plus the list of
//! [`TaskNeed`]s that would refine the answer. The driver (in
//! `crowddb-core`) posts those needs to a platform, ingests answers
//! (write-back + caches), and re-runs; when a run reports no needs the
//! result is final. This mirrors the paper's Task Manager loop and makes
//! every code path testable with a deterministic platform.

//!
//! Execution itself is organized around the physical plan: the driver
//! ([`executor`]) lowers the optimized logical plan via
//! [`crowddb_plan::physical::lower`] and runs the resulting tree through
//! the per-operator modules in [`ops`], which record an [`OpStatsNode`]
//! tree of per-operator statistics alongside the rows.

pub mod context;
pub mod dml;
pub mod eval;
pub mod executor;
pub mod need;
pub mod ops;

pub use context::{
    CompareCaches, ExecCtx, ExecGuard, NeedCounts, RunContext, RunStats, SharedCaches,
};
pub use executor::{execute, execute_physical, execute_physical_guarded, lower_plan, ExecResult};
pub use need::TaskNeed;
pub use ops::{flush_op_stats, render_analyzed, OpStatsNode, Operator};
