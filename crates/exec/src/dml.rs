//! DML execution: INSERT, UPDATE, DELETE.
//!
//! DML shares the round-based crowd semantics of queries: an `UPDATE ...
//! WHERE name ~= 'IBM'` only touches rows whose crowd predicate is
//! already decided; undecided comparisons are returned as needs and the
//! statement converges on re-execution.
//!
//! Multi-row statements are atomic: if any row fails (constraint
//! violation, evaluation error), mutations already applied by the same
//! statement are compensated before the error propagates, so the
//! database never holds a half-applied statement. The write-ahead log
//! depends on this — a statement is logged only after it succeeds, so a
//! partial in-memory effect would be invisible to recovery.

use crowddb_common::{CrowdError, Result, Row, TupleId, Value};
use crowddb_plan::Binder;
use crowddb_sql::{Delete, Insert, Update};
use crowddb_storage::Database;

use crate::context::{CompareCaches, ExecCtx, ExecGuard};
use crate::eval::{eval, eval_truth};
use crate::need::TaskNeed;

/// Result of a DML statement round.
#[derive(Debug, Clone, PartialEq)]
pub struct DmlResult {
    /// Rows inserted/updated/deleted this round.
    pub affected: usize,
    /// Crowd work pending (empty ⇒ the statement is fully applied).
    pub needs: Vec<TaskNeed>,
}

/// Execute an INSERT.
///
/// Columns omitted from an explicit column list default to `CNULL` for
/// CROWD columns (so they will be crowdsourced on first use — the
/// CrowdSQL default) and `NULL` otherwise.
pub fn execute_insert(db: &Database, caches: &CompareCaches, ins: &Insert) -> Result<DmlResult> {
    execute_insert_guarded(db, caches, ins, ExecGuard::unlimited())
}

/// [`execute_insert`] under a cooperative-cancellation guard; each row
/// is a checkpoint, and a trip rolls the whole statement back (the
/// normal DML atomicity path).
pub fn execute_insert_guarded(
    db: &Database,
    caches: &CompareCaches,
    ins: &Insert,
    guard: ExecGuard,
) -> Result<DmlResult> {
    let schema = db.schema(&ins.table)?;
    let bound_rows: Vec<Vec<crowddb_plan::BExpr>> = {
        db.with_catalog(|catalog| {
            let mut binder = Binder::new(catalog);
            ins.rows
                .iter()
                .map(|row| row.iter().map(|e| binder.bind_value_expr(e)).collect())
                .collect::<Result<Vec<_>>>()
        })?
    };

    // Map provided expressions onto schema positions.
    let positions: Vec<usize> = match &ins.columns {
        Some(cols) => {
            let mut out = Vec::with_capacity(cols.len());
            for c in cols {
                out.push(schema.column_index(c).ok_or_else(|| {
                    CrowdError::Analyze(format!(
                        "unknown column '{c}' in INSERT INTO {}",
                        schema.name
                    ))
                })?);
            }
            out
        }
        None => (0..schema.arity()).collect(),
    };

    let mut ctx = ExecCtx::with_guard(db, caches, guard);
    let empty = Row::default();
    let mut inserted: Vec<TupleId> = Vec::new();
    let outcome = (|| {
        for exprs in &bound_rows {
            ctx.rt.check()?;
            if exprs.len() != positions.len() {
                return Err(CrowdError::Analyze(format!(
                    "INSERT INTO {} expects {} values, got {}",
                    schema.name,
                    positions.len(),
                    exprs.len()
                )));
            }
            // Defaults: CNULL for crowd columns, NULL otherwise.
            let mut values: Vec<Value> = schema
                .columns
                .iter()
                .map(|c| {
                    if c.crowd || schema.crowd_table {
                        Value::CNull
                    } else {
                        Value::Null
                    }
                })
                .collect();
            for (expr, &pos) in exprs.iter().zip(&positions) {
                values[pos] = eval(&mut ctx, expr, &empty)?;
            }
            inserted.push(db.insert(&schema.name, Row::new(values))?);
        }
        Ok(())
    })();
    if let Err(e) = outcome {
        // Atomicity: un-insert this statement's rows, newest first.
        for tid in inserted.into_iter().rev() {
            let _ = db.with_table_mut(&schema.name, |t| t.rollback_insert(tid));
        }
        return Err(e);
    }
    let affected = inserted.len();
    let (needs, _) = ctx.finish();
    Ok(DmlResult { affected, needs })
}

/// Execute an UPDATE for one round.
pub fn execute_update(db: &Database, caches: &CompareCaches, upd: &Update) -> Result<DmlResult> {
    update_inner(db, caches, upd, true, ExecGuard::unlimited())
}

/// [`execute_update`] under a cooperative-cancellation guard.
pub fn execute_update_guarded(
    db: &Database,
    caches: &CompareCaches,
    upd: &Update,
    guard: ExecGuard,
) -> Result<DmlResult> {
    update_inner(db, caches, upd, true, guard)
}

/// Dry-run an UPDATE: report how many rows *would* be affected and which
/// crowd work is needed, without mutating anything. The driver resolves
/// the needs first and applies the statement exactly once — otherwise a
/// non-idempotent assignment like `SET n = n + 1` would be re-applied on
/// every crowd round.
pub fn plan_update(db: &Database, caches: &CompareCaches, upd: &Update) -> Result<DmlResult> {
    update_inner(db, caches, upd, false, ExecGuard::unlimited())
}

/// [`plan_update`] under a cooperative-cancellation guard.
pub fn plan_update_guarded(
    db: &Database,
    caches: &CompareCaches,
    upd: &Update,
    guard: ExecGuard,
) -> Result<DmlResult> {
    update_inner(db, caches, upd, false, guard)
}

fn update_inner(
    db: &Database,
    caches: &CompareCaches,
    upd: &Update,
    apply: bool,
    guard: ExecGuard,
) -> Result<DmlResult> {
    let schema = db.schema(&upd.table)?;
    let (filter, assignments) = db.with_catalog(|catalog| {
        let mut binder = Binder::new(catalog);
        let filter = match &upd.filter {
            Some(f) => Some(binder.bind_table_filter(&upd.table, f)?.0),
            None => None,
        };
        let mut assignments = Vec::with_capacity(upd.assignments.len());
        for (col, expr) in &upd.assignments {
            let idx = schema.column_index(col).ok_or_else(|| {
                CrowdError::Analyze(format!("unknown column '{col}' in UPDATE {}", schema.name))
            })?;
            let (bound, _) = binder.bind_table_filter(&upd.table, expr)?;
            assignments.push((idx, bound));
        }
        Ok::<_, CrowdError>((filter, assignments))
    })?;

    let rows = db.with_table(&upd.table, |t| t.scan_rows())??;
    let mut ctx = ExecCtx::with_guard(db, caches, guard);
    let mut to_apply = Vec::new();
    for (tid, row) in rows {
        ctx.rt.check()?;
        let hit = match &filter {
            Some(f) => eval_truth(&mut ctx, f, &row)?.passes_filter(),
            None => true,
        };
        if hit {
            let mut new_row = row.clone();
            for (idx, expr) in &assignments {
                let v = eval(&mut ctx, expr, &row)?;
                new_row.set(*idx, v);
            }
            to_apply.push((tid, row, new_row));
        }
    }
    let affected = to_apply.len();
    if apply {
        let mut applied: Vec<(TupleId, Row)> = Vec::new();
        for (tid, old_row, new_row) in to_apply {
            match db.with_table_mut(&upd.table, |t| t.update(tid, new_row)) {
                Ok(()) => applied.push((tid, old_row)),
                Err(e) => {
                    // Atomicity: put the rows this statement already
                    // touched back the way they were.
                    for (tid, old) in applied.into_iter().rev() {
                        let _ = db.with_table_mut(&upd.table, |t| t.update(tid, old));
                    }
                    return Err(e);
                }
            }
        }
    }
    let (needs, _) = ctx.finish();
    Ok(DmlResult { affected, needs })
}

/// Execute a DELETE for one round.
pub fn execute_delete(db: &Database, caches: &CompareCaches, del: &Delete) -> Result<DmlResult> {
    delete_inner(db, caches, del, true, ExecGuard::unlimited())
}

/// [`execute_delete`] under a cooperative-cancellation guard.
pub fn execute_delete_guarded(
    db: &Database,
    caches: &CompareCaches,
    del: &Delete,
    guard: ExecGuard,
) -> Result<DmlResult> {
    delete_inner(db, caches, del, true, guard)
}

/// Dry-run a DELETE (see [`plan_update`]).
pub fn plan_delete(db: &Database, caches: &CompareCaches, del: &Delete) -> Result<DmlResult> {
    delete_inner(db, caches, del, false, ExecGuard::unlimited())
}

/// [`plan_delete`] under a cooperative-cancellation guard.
pub fn plan_delete_guarded(
    db: &Database,
    caches: &CompareCaches,
    del: &Delete,
    guard: ExecGuard,
) -> Result<DmlResult> {
    delete_inner(db, caches, del, false, guard)
}

fn delete_inner(
    db: &Database,
    caches: &CompareCaches,
    del: &Delete,
    apply: bool,
    guard: ExecGuard,
) -> Result<DmlResult> {
    let filter = db.with_catalog(|catalog| {
        let mut binder = Binder::new(catalog);
        match &del.filter {
            Some(f) => Ok::<_, CrowdError>(Some(binder.bind_table_filter(&del.table, f)?.0)),
            None => Ok(None),
        }
    })?;
    let rows = db.with_table(&del.table, |t| t.scan_rows())??;
    let mut ctx = ExecCtx::with_guard(db, caches, guard);
    let mut victims = Vec::new();
    for (tid, row) in rows {
        ctx.rt.check()?;
        let hit = match &filter {
            Some(f) => eval_truth(&mut ctx, f, &row)?.passes_filter(),
            None => true,
        };
        if hit {
            victims.push(tid);
        }
    }
    let affected = victims.len();
    if apply {
        for tid in victims {
            db.with_table_mut(&del.table, |t| t.delete(tid).map(|_| ()))?;
        }
    }
    let (needs, _) = ctx.finish();
    Ok(DmlResult { affected, needs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_sql::{parse_statement, Statement};

    fn setup() -> Database {
        let db = Database::new();
        let ddl = "CREATE TABLE talk (title STRING PRIMARY KEY, abstract CROWD STRING, \
                   nb_attendees CROWD INTEGER)";
        let Statement::CreateTable(ct) = parse_statement(ddl).unwrap() else {
            panic!()
        };
        let schema = db.with_catalog(|c| c.schema_from_ast(&ct)).unwrap();
        db.create_table(schema).unwrap();
        db
    }

    fn insert(db: &Database, sql: &str) -> DmlResult {
        let Statement::Insert(i) = parse_statement(sql).unwrap() else {
            panic!()
        };
        execute_insert(db, &CompareCaches::default(), &i).unwrap()
    }

    #[test]
    fn insert_full_row() {
        let db = setup();
        let r = insert(&db, "INSERT INTO talk VALUES ('CrowdDB', CNULL, CNULL)");
        assert_eq!(r.affected, 1);
        assert!(r.needs.is_empty());
        assert_eq!(db.stats("talk").unwrap().live_rows, 1);
        assert_eq!(db.stats("talk").unwrap().cnull_values, 2);
    }

    #[test]
    fn insert_partial_defaults_crowd_columns_to_cnull() {
        let db = setup();
        insert(&db, "INSERT INTO talk (title) VALUES ('Qurk')");
        let rows = db.with_table("talk", |t| t.scan_rows()).unwrap().unwrap();
        assert!(rows[0].1[1].is_cnull(), "abstract defaults to CNULL");
        assert!(rows[0].1[2].is_cnull(), "nb_attendees defaults to CNULL");
    }

    #[test]
    fn insert_multi_row_and_expressions() {
        let db = setup();
        let r = insert(
            &db,
            "INSERT INTO talk (title, nb_attendees) VALUES ('a', 50 + 50), ('b', 2 * 10)",
        );
        assert_eq!(r.affected, 2);
        let rows = db.with_table("talk", |t| t.scan_rows()).unwrap().unwrap();
        assert_eq!(rows[0].1[2], Value::Int(100));
        assert_eq!(rows[1].1[2], Value::Int(20));
    }

    #[test]
    fn insert_arity_mismatch() {
        let db = setup();
        let Statement::Insert(i) =
            parse_statement("INSERT INTO talk (title) VALUES ('a', 'b')").unwrap()
        else {
            panic!()
        };
        assert!(execute_insert(&db, &CompareCaches::default(), &i).is_err());
    }

    #[test]
    fn failed_multi_row_insert_rolls_back_entirely() {
        let db = setup();
        insert(&db, "INSERT INTO talk (title) VALUES ('keep')");
        let Statement::Insert(i) =
            parse_statement("INSERT INTO talk (title) VALUES ('a'), ('b'), ('keep'), ('c')")
                .unwrap()
        else {
            panic!()
        };
        // 'keep' violates the primary key after 'a' and 'b' landed.
        assert!(execute_insert(&db, &CompareCaches::default(), &i).is_err());
        let rows = db.with_table("talk", |t| t.scan_rows()).unwrap().unwrap();
        assert_eq!(rows.len(), 1, "partial statement must be rolled back");
        // Tuple-id space is clean too: the next insert reuses slot 1, as
        // a log replay (which never sees the failed statement) would.
        insert(&db, "INSERT INTO talk (title) VALUES ('next')");
        let rows = db.with_table("talk", |t| t.scan_rows()).unwrap().unwrap();
        assert_eq!(rows[1].0, crowddb_common::TupleId(1));
    }

    #[test]
    fn failed_update_restores_touched_rows() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO talk (title, nb_attendees) VALUES ('a', 1), ('b', 2), ('c', 3)",
        );
        // Renaming every title to 'z' violates the primary key on the
        // second row; the first row's rename must be undone.
        let Statement::Update(u) = parse_statement("UPDATE talk SET title = 'z'").unwrap() else {
            panic!()
        };
        assert!(execute_update(&db, &CompareCaches::default(), &u).is_err());
        let rows = db.with_table("talk", |t| t.scan_rows()).unwrap().unwrap();
        let titles: Vec<_> = rows.iter().map(|(_, r)| r[0].clone()).collect();
        assert_eq!(
            titles,
            vec![Value::str("a"), Value::str("b"), Value::str("c")]
        );
    }

    #[test]
    fn insert_unknown_column() {
        let db = setup();
        let Statement::Insert(i) = parse_statement("INSERT INTO talk (nope) VALUES (1)").unwrap()
        else {
            panic!()
        };
        assert!(execute_insert(&db, &CompareCaches::default(), &i).is_err());
    }

    #[test]
    fn update_with_filter() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO talk VALUES ('a', 'x', 10), ('b', 'y', 20)",
        );
        let Statement::Update(u) =
            parse_statement("UPDATE talk SET nb_attendees = nb_attendees + 5 WHERE title = 'a'")
                .unwrap()
        else {
            panic!()
        };
        let r = execute_update(&db, &CompareCaches::default(), &u).unwrap();
        assert_eq!(r.affected, 1);
        let rows = db.with_table("talk", |t| t.scan_rows()).unwrap().unwrap();
        assert_eq!(rows[0].1[2], Value::Int(15));
        assert_eq!(rows[1].1[2], Value::Int(20));
    }

    #[test]
    fn update_all_rows_without_filter() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO talk VALUES ('a', 'x', 10), ('b', 'y', 20)",
        );
        let Statement::Update(u) = parse_statement("UPDATE talk SET abstract = 'revised'").unwrap()
        else {
            panic!()
        };
        let r = execute_update(&db, &CompareCaches::default(), &u).unwrap();
        assert_eq!(r.affected, 2);
    }

    #[test]
    fn delete_with_filter() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO talk VALUES ('a', 'x', 10), ('b', 'y', 20)",
        );
        let Statement::Delete(d) =
            parse_statement("DELETE FROM talk WHERE nb_attendees > 15").unwrap()
        else {
            panic!()
        };
        let r = execute_delete(&db, &CompareCaches::default(), &d).unwrap();
        assert_eq!(r.affected, 1);
        assert_eq!(db.stats("talk").unwrap().live_rows, 1);
    }

    #[test]
    fn crowd_predicate_in_dml_reports_needs() {
        let db = setup();
        insert(&db, "INSERT INTO talk VALUES ('CrowDB', 'x', 10)");
        let Statement::Update(u) =
            parse_statement("UPDATE talk SET abstract = 'fixed' WHERE title ~= 'CrowdDB'").unwrap()
        else {
            panic!()
        };
        // Round 1: the comparison is unknown — nothing updated, one need.
        let r = execute_update(&db, &CompareCaches::default(), &u).unwrap();
        assert_eq!(r.affected, 0);
        assert_eq!(r.needs.len(), 1);
        // Crowd says yes; round 2 applies the update.
        let mut caches = CompareCaches::default();
        caches.put_equal(
            "CrowDB",
            "CrowdDB",
            "Do these two values refer to the same entity?",
            true,
        );
        let r = execute_update(&db, &caches, &u).unwrap();
        assert_eq!(r.affected, 1);
        assert!(r.needs.is_empty());
    }

    #[test]
    fn delete_everything() {
        let db = setup();
        insert(
            &db,
            "INSERT INTO talk VALUES ('a', 'x', 10), ('b', 'y', 20)",
        );
        let Statement::Delete(d) = parse_statement("DELETE FROM talk").unwrap() else {
            panic!()
        };
        let r = execute_delete(&db, &CompareCaches::default(), &d).unwrap();
        assert_eq!(r.affected, 2);
        assert_eq!(db.stats("talk").unwrap().live_rows, 0);
    }
}
