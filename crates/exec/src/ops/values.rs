//! Values: literal rows (`SELECT` without `FROM`, `VALUES` lists).

use crowddb_common::{Result, Row};
use crowddb_plan::{BExpr, PhysicalPlan};

use crate::context::ExecCtx;
use crate::eval::eval;
use crate::ops::{OpStatsNode, Operator};

/// Literal-rows operator; see [`PhysicalPlan::Values`].
pub struct ValuesOp<'p> {
    rows: &'p [Vec<BExpr>],
}

impl<'p> ValuesOp<'p> {
    /// Build from a [`PhysicalPlan::Values`] node.
    pub fn new(plan: &'p PhysicalPlan) -> ValuesOp<'p> {
        let PhysicalPlan::Values { rows, .. } = plan else {
            unreachable!("ValuesOp built from {plan:?}")
        };
        ValuesOp { rows }
    }
}

impl Operator for ValuesOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, _stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let empty = Row::default();
        let mut out = Vec::with_capacity(self.rows.len());
        for row_exprs in self.rows {
            ctx.rt.check()?;
            let mut values = Vec::with_capacity(row_exprs.len());
            for e in row_exprs {
                values.push(eval(ctx, e, &empty)?);
            }
            out.push(Row::new(values));
        }
        Ok(out)
    }
}
