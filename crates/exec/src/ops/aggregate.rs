//! Aggregate: grouping (first-seen group order) and aggregate functions.

use std::collections::{HashMap, HashSet};

use crowddb_common::{CrowdError, Result, Row, Value};
use crowddb_plan::{AggCall, AggFn, BExpr, PhysicalPlan};

use crate::context::ExecCtx;
use crate::eval::eval;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Aggregation operator; see [`PhysicalPlan::Aggregate`].
pub struct AggregateOp<'p> {
    input: BoxedOp<'p>,
    group_by: &'p [BExpr],
    aggs: &'p [AggCall],
}

impl<'p> AggregateOp<'p> {
    /// Build from a [`PhysicalPlan::Aggregate`] node.
    pub fn new(plan: &'p PhysicalPlan) -> AggregateOp<'p> {
        let PhysicalPlan::Aggregate {
            input,
            group_by,
            aggs,
            ..
        } = plan
        else {
            unreachable!("AggregateOp built from {plan:?}")
        };
        AggregateOp {
            input: build(input),
            group_by,
            aggs,
        }
    }
}

impl Operator for AggregateOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = run_op(self.input.as_ref(), ctx, &mut stats.children[0])?;
        stats.rows_in += rows.len() as u64;
        // Group rows, preserving first-seen group order.
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            ctx.rt.check()?;
            let mut key = Vec::with_capacity(self.group_by.len());
            for g in self.group_by {
                key.push(eval(ctx, g, row)?);
            }
            match index.get(&key) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![i]));
                }
            }
        }
        // Aggregate without GROUP BY over empty input: one empty group.
        if groups.is_empty() && self.group_by.is_empty() {
            groups.push((vec![], vec![]));
        }

        let mut out = Vec::with_capacity(groups.len());
        for (key, members) in groups {
            let mut values = key;
            for agg in self.aggs {
                values.push(eval_agg(ctx, agg, &members, &rows)?);
            }
            out.push(Row::new(values));
        }
        Ok(out)
    }
}

/// Evaluate one aggregate call over a group's member rows.
fn eval_agg(
    ctx: &mut ExecCtx<'_>,
    agg: &AggCall,
    members: &[usize],
    rows: &[Row],
) -> Result<Value> {
    // COUNT(*) counts rows.
    if agg.func == AggFn::Count && agg.arg.is_none() {
        return Ok(Value::Int(members.len() as i64));
    }
    let arg = agg
        .arg
        .as_ref()
        .ok_or_else(|| CrowdError::Internal("non-COUNT aggregate without arg".into()))?;
    let mut vals: Vec<Value> = Vec::with_capacity(members.len());
    for &i in members {
        let v = eval(ctx, arg, &rows[i])?;
        if !v.is_missing() {
            vals.push(v);
        }
    }
    if agg.distinct {
        let mut seen = HashSet::new();
        vals.retain(|v| seen.insert(v.clone()));
    }
    Ok(match agg.func {
        AggFn::Count => Value::Int(vals.len() as i64),
        AggFn::Sum => {
            if vals.is_empty() {
                Value::Null
            } else if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                let mut acc: i64 = 0;
                for v in &vals {
                    let i = v.as_i64().ok_or_else(|| {
                        CrowdError::Internal("SUM integer fast path saw a non-integer".into())
                    })?;
                    acc = acc
                        .checked_add(i)
                        .ok_or_else(|| CrowdError::Exec("integer overflow in SUM".into()))?;
                }
                Value::Int(acc)
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v
                        .as_f64()
                        .ok_or_else(|| CrowdError::Type("SUM over non-numeric values".into()))?;
                }
                Value::Float(acc)
            }
        }
        AggFn::Avg => {
            if vals.is_empty() {
                Value::Null
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v
                        .as_f64()
                        .ok_or_else(|| CrowdError::Type("AVG over non-numeric values".into()))?;
                }
                Value::Float(acc / vals.len() as f64)
            }
        }
        AggFn::Min => vals
            .into_iter()
            .min_by(|a, b| a.sort_cmp(b))
            .unwrap_or(Value::Null),
        AggFn::Max => vals
            .into_iter()
            .max_by(|a, b| a.sort_cmp(b))
            .unwrap_or(Value::Null),
    })
}
