//! Union: bag (`UNION ALL`) or set union of two inputs.

use std::collections::HashSet;

use crowddb_common::{Result, Row};
use crowddb_plan::PhysicalPlan;

use crate::context::ExecCtx;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Union operator; see [`PhysicalPlan::Union`].
pub struct UnionOp<'p> {
    left: BoxedOp<'p>,
    right: BoxedOp<'p>,
    all: bool,
}

impl<'p> UnionOp<'p> {
    /// Build from a [`PhysicalPlan::Union`] node.
    pub fn new(plan: &'p PhysicalPlan) -> UnionOp<'p> {
        let PhysicalPlan::Union {
            left, right, all, ..
        } = plan
        else {
            unreachable!("UnionOp built from {plan:?}")
        };
        UnionOp {
            left: build(left),
            right: build(right),
            all: *all,
        }
    }
}

impl Operator for UnionOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let mut rows = run_op(self.left.as_ref(), ctx, &mut stats.children[0])?;
        rows.extend(run_op(self.right.as_ref(), ctx, &mut stats.children[1])?);
        stats.rows_in += rows.len() as u64;
        if !self.all {
            let mut seen = HashSet::new();
            rows.retain(|r| seen.insert(r.clone()));
        }
        Ok(rows)
    }
}
