//! Sort: stable machine sort (no `CROWDORDER` keys — those select
//! [`super::crowd_sort`] at lowering).

use std::cmp::Ordering;

use crowddb_common::{Result, Row, Value};
use crowddb_plan::{PhysicalPlan, SortKey};

use crate::context::ExecCtx;
use crate::eval::eval;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Machine-sort operator; see [`PhysicalPlan::Sort`].
pub struct SortOp<'p> {
    input: BoxedOp<'p>,
    keys: &'p [SortKey],
}

impl<'p> SortOp<'p> {
    /// Build from a [`PhysicalPlan::Sort`] node.
    pub fn new(plan: &'p PhysicalPlan) -> SortOp<'p> {
        let PhysicalPlan::Sort { input, keys, .. } = plan else {
            unreachable!("SortOp built from {plan:?}")
        };
        SortOp {
            input: build(input),
            keys,
        }
    }
}

impl Operator for SortOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = run_op(self.input.as_ref(), ctx, &mut stats.children[0])?;
        stats.rows_in += rows.len() as u64;
        if rows.len() <= 1 {
            return Ok(rows);
        }
        let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
        for row in rows {
            ctx.rt.check()?;
            let mut ks = Vec::with_capacity(self.keys.len());
            for key in self.keys {
                ks.push(eval(ctx, &key.expr, &row)?);
            }
            keyed.push((ks, row));
        }
        keyed.sort_by(|(a, _), (b, _)| {
            for (i, key) in self.keys.iter().enumerate() {
                let ord = a[i].sort_cmp(&b[i]);
                let ord = if key.desc { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        Ok(keyed.into_iter().map(|(_, r)| r).collect())
    }
}
