//! HashJoin: equi-join building a hash table on the right input. Also
//! hosts the shared probe loop [`join_hashed`] that
//! [`super::crowd_join`] reuses with a crowd enumeration policy on top.

use std::collections::HashMap;

use crowddb_common::{Result, Row, Value};
use crowddb_plan::{BExpr, JoinType, PhysicalPlan};

use crate::context::ExecCtx;
use crate::eval::{eval, eval_truth};
use crate::need::TaskNeed;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Hash-join operator; see [`PhysicalPlan::HashJoin`].
pub struct HashJoinOp<'p> {
    left: BoxedOp<'p>,
    right: BoxedOp<'p>,
    kind: JoinType,
    equi: &'p [(BExpr, BExpr)],
    residual: &'p [BExpr],
    right_arity: usize,
}

impl<'p> HashJoinOp<'p> {
    /// Build from a [`PhysicalPlan::HashJoin`] node.
    pub fn new(plan: &'p PhysicalPlan) -> HashJoinOp<'p> {
        let PhysicalPlan::HashJoin {
            left,
            right,
            kind,
            equi,
            residual,
            ..
        } = plan
        else {
            unreachable!("HashJoinOp built from {plan:?}")
        };
        HashJoinOp {
            right_arity: right.schema().arity(),
            left: build(left),
            right: build(right),
            kind: *kind,
            equi,
            residual,
        }
    }
}

impl Operator for HashJoinOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let left_rows = run_op(self.left.as_ref(), ctx, &mut stats.children[0])?;
        let right_rows = run_op(self.right.as_ref(), ctx, &mut stats.children[1])?;
        stats.rows_in += (left_rows.len() + right_rows.len()) as u64;
        join_hashed(
            ctx,
            left_rows,
            right_rows,
            self.kind,
            self.equi,
            self.residual,
            self.right_arity,
            None,
        )
    }
}

/// Crowd enumeration policy for unmatched outer rows: ask the crowd for
/// `batch` new `table` tuples with `key_column` preset to the join key.
pub(crate) struct CrowdSpec<'p> {
    pub table: &'p str,
    pub key_column: &'p str,
    pub batch: u64,
}

/// The shared hash-join loop: build on the right, probe from the left.
///
/// Rows with missing key values never match (and never enter the build
/// table). With `crowd` set, unmatched outer rows whose key is known
/// become [`TaskNeed::NewTuples`] needs — the paper's CrowdJoin.
#[allow(clippy::too_many_arguments)] // one call site per join flavor
pub(crate) fn join_hashed(
    ctx: &mut ExecCtx<'_>,
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    kind: JoinType,
    equi: &[(BExpr, BExpr)],
    residual: &[BExpr],
    right_arity: usize,
    crowd: Option<&CrowdSpec<'_>>,
) -> Result<Vec<Row>> {
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (idx, r) in right_rows.iter().enumerate() {
        let mut key = Vec::with_capacity(equi.len());
        let mut missing = false;
        for (_, re) in equi {
            let v = eval(ctx, re, r)?;
            if v.is_missing() {
                missing = true;
                break;
            }
            key.push(v);
        }
        if !missing {
            table.entry(key).or_default().push(idx);
        }
    }
    let mut out = Vec::new();
    for l in &left_rows {
        ctx.rt.check()?;
        let mut key = Vec::with_capacity(equi.len());
        let mut missing = false;
        for (le, _) in equi {
            let v = eval(ctx, le, l)?;
            if v.is_missing() {
                missing = true;
                break;
            }
            key.push(v);
        }
        let mut matched = false;
        if !missing {
            if let Some(idxs) = table.get(&key) {
                for &ri in idxs {
                    let joined = l.concat(&right_rows[ri]);
                    if residual_passes(ctx, residual, &joined)? {
                        out.push(joined);
                        matched = true;
                    }
                }
            }
        }
        if !matched {
            // CrowdJoin: "implements an index nested-loop join over two
            // tables, at least one of which is marked as crowdsourced" —
            // a missing inner match becomes a new-tuple request with the
            // join key preset.
            if !missing {
                if let Some(spec) = crowd {
                    ctx.rt.push_need(TaskNeed::NewTuples {
                        table: spec.table.to_string(),
                        preset: vec![(spec.key_column.to_string(), key[0].clone())],
                        want: spec.batch,
                    });
                }
            }
            if kind == JoinType::Left {
                let pad = Row::new(vec![Value::Null; right_arity]);
                out.push(l.concat(&pad));
            }
        }
    }
    Ok(out)
}

fn residual_passes(ctx: &mut ExecCtx<'_>, residual: &[BExpr], row: &Row) -> Result<bool> {
    for p in residual {
        if !eval_truth(ctx, p, row)?.passes_filter() {
            return Ok(false);
        }
    }
    Ok(true)
}
