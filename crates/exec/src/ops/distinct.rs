//! Distinct: whole-row duplicate elimination (first occurrence wins).

use std::collections::HashSet;

use crowddb_common::{Result, Row};
use crowddb_plan::PhysicalPlan;

use crate::context::ExecCtx;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Duplicate-elimination operator; see [`PhysicalPlan::Distinct`].
pub struct DistinctOp<'p> {
    input: BoxedOp<'p>,
}

impl<'p> DistinctOp<'p> {
    /// Build from a [`PhysicalPlan::Distinct`] node.
    pub fn new(plan: &'p PhysicalPlan) -> DistinctOp<'p> {
        let PhysicalPlan::Distinct { input, .. } = plan else {
            unreachable!("DistinctOp built from {plan:?}")
        };
        DistinctOp {
            input: build(input),
        }
    }
}

impl Operator for DistinctOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = run_op(self.input.as_ref(), ctx, &mut stats.children[0])?;
        stats.rows_in += rows.len() as u64;
        let mut seen = HashSet::new();
        Ok(rows
            .into_iter()
            .filter(|r| seen.insert(r.clone()))
            .collect())
    }
}
