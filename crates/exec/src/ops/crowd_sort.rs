//! CrowdSort: the paper's CrowdCompare inside a deterministic quicksort.
//!
//! The comparator consults the session order cache; missing pairs are
//! recorded as needs and compared by rendered text for this round (the
//! fallback keeps the round deterministic; once the crowd answers arrive
//! the cache decides). Machine keys mixed in with `CROWDORDER` keys are
//! compared by machine ordering at their position.

use std::cmp::Ordering;

use crowddb_common::{Result, Row, Value};
use crowddb_plan::{BExpr, PhysicalPlan, SortKey};

use crate::context::ExecCtx;
use crate::eval::eval;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Crowd-sort operator; see [`PhysicalPlan::CrowdSort`].
pub struct CrowdSortOp<'p> {
    input: BoxedOp<'p>,
    keys: &'p [SortKey],
}

impl<'p> CrowdSortOp<'p> {
    /// Build from a [`PhysicalPlan::CrowdSort`] node.
    pub fn new(plan: &'p PhysicalPlan) -> CrowdSortOp<'p> {
        let PhysicalPlan::CrowdSort { input, keys, .. } = plan else {
            unreachable!("CrowdSortOp built from {plan:?}")
        };
        CrowdSortOp {
            input: build(input),
            keys,
        }
    }
}

impl Operator for CrowdSortOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = run_op(self.input.as_ref(), ctx, &mut stats.children[0])?;
        stats.rows_in += rows.len() as u64;
        if rows.len() <= 1 {
            return Ok(rows);
        }
        // Materialize sort keys per row.
        // Checkpoints live in this key-materialization pre-pass: the
        // quicksort comparator below returns `Ordering` and cannot
        // propagate a cancellation error.
        let mut keyed: Vec<(Vec<KeyVal>, Row)> = Vec::with_capacity(rows.len());
        for row in rows {
            ctx.rt.check()?;
            let mut ks = Vec::with_capacity(self.keys.len());
            for key in self.keys {
                match &key.expr {
                    BExpr::CrowdOrder { expr, instruction } => {
                        let v = eval(ctx, expr, &row)?;
                        ks.push(KeyVal::Crowd {
                            rendered: v.to_string(),
                            instruction: instruction.clone(),
                        });
                    }
                    machine => ks.push(KeyVal::Machine(eval(ctx, machine, &row)?)),
                }
            }
            keyed.push((ks, row));
        }
        let mut order: Vec<usize> = (0..keyed.len()).collect();
        let descs: Vec<bool> = self.keys.iter().map(|k| k.desc).collect();
        quicksort(ctx, &mut order, &keyed, &descs, 0);
        Ok(order.into_iter().map(|i| keyed[i].1.clone()).collect())
    }
}

/// One materialized sort key: machine value or crowd-compared rendering.
enum KeyVal {
    Machine(Value),
    Crowd {
        rendered: String,
        instruction: String,
    },
}

impl KeyVal {
    fn compare(&self, other: &KeyVal, ctx: &mut ExecCtx<'_>) -> Ordering {
        match (self, other) {
            (KeyVal::Machine(a), KeyVal::Machine(b)) => a.sort_cmp(b),
            (
                KeyVal::Crowd {
                    rendered: a,
                    instruction,
                },
                KeyVal::Crowd { rendered: b, .. },
            ) => ctx.crowd_compare(a, b, instruction),
            _ => Ordering::Equal, // keys are homogeneous per position
        }
    }
}

/// Deterministic quicksort over row indices (pivot = first index,
/// recursion capped so crowd-fallback comparisons can't blow the stack).
fn quicksort(
    ctx: &mut ExecCtx<'_>,
    idxs: &mut [usize],
    keyed: &[(Vec<KeyVal>, Row)],
    descs: &[bool],
    depth: usize,
) {
    if idxs.len() <= 1 || depth > 64 {
        return;
    }
    let pivot = idxs[0];
    let rest = &idxs[1..];
    let mut less = Vec::new();
    let mut greater = Vec::new();
    for &i in rest {
        match compare_keyed(ctx, &keyed[i].0, &keyed[pivot].0, descs) {
            Ordering::Less => less.push(i),
            _ => greater.push(i),
        }
    }
    quicksort(ctx, &mut less, keyed, descs, depth + 1);
    quicksort(ctx, &mut greater, keyed, descs, depth + 1);
    let mut merged = Vec::with_capacity(idxs.len());
    merged.extend_from_slice(&less);
    merged.push(pivot);
    merged.extend_from_slice(&greater);
    idxs.copy_from_slice(&merged);
}

fn compare_keyed(ctx: &mut ExecCtx<'_>, a: &[KeyVal], b: &[KeyVal], descs: &[bool]) -> Ordering {
    for (i, (ka, kb)) in a.iter().zip(b.iter()).enumerate() {
        let ord = ka.compare(kb, ctx);
        let ord = if descs.get(i).copied().unwrap_or(false) {
            ord.reverse()
        } else {
            ord
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}
