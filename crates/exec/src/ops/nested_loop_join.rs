//! NestedLoopJoin: cross products and joins without a usable equi key.

use crowddb_common::{Result, Row, Value};
use crowddb_plan::{BExpr, JoinType, PhysicalPlan};

use crate::context::ExecCtx;
use crate::eval::eval_truth;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Nested-loop join operator; see [`PhysicalPlan::NestedLoopJoin`].
pub struct NestedLoopJoinOp<'p> {
    left: BoxedOp<'p>,
    right: BoxedOp<'p>,
    kind: JoinType,
    on: Option<&'p BExpr>,
    right_arity: usize,
}

impl<'p> NestedLoopJoinOp<'p> {
    /// Build from a [`PhysicalPlan::NestedLoopJoin`] node.
    pub fn new(plan: &'p PhysicalPlan) -> NestedLoopJoinOp<'p> {
        let PhysicalPlan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
            ..
        } = plan
        else {
            unreachable!("NestedLoopJoinOp built from {plan:?}")
        };
        NestedLoopJoinOp {
            right_arity: right.schema().arity(),
            left: build(left),
            right: build(right),
            kind: *kind,
            on: on.as_ref(),
        }
    }
}

impl Operator for NestedLoopJoinOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let left_rows = run_op(self.left.as_ref(), ctx, &mut stats.children[0])?;
        let right_rows = run_op(self.right.as_ref(), ctx, &mut stats.children[1])?;
        stats.rows_in += (left_rows.len() + right_rows.len()) as u64;
        let mut out = Vec::new();
        for l in &left_rows {
            ctx.rt.check()?;
            let mut matched = false;
            for r in &right_rows {
                let joined = l.concat(r);
                let ok = match self.on {
                    Some(p) => eval_truth(ctx, p, &joined)?.passes_filter(),
                    None => true,
                };
                if ok {
                    out.push(joined);
                    matched = true;
                }
            }
            if !matched && self.kind == JoinType::Left {
                let pad = Row::new(vec![Value::Null; self.right_arity]);
                out.push(l.concat(&pad));
            }
        }
        Ok(out)
    }
}
