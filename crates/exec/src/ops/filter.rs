//! Filter: row selection by predicate (standalone — filters directly
//! over scans are fused into [`super::table_scan`] at lowering).

use crowddb_common::{Result, Row};
use crowddb_plan::{BExpr, PhysicalPlan};

use crate::context::ExecCtx;
use crate::eval::eval_truth;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Filter operator; see [`PhysicalPlan::Filter`].
pub struct FilterOp<'p> {
    input: BoxedOp<'p>,
    predicate: &'p BExpr,
}

impl<'p> FilterOp<'p> {
    /// Build from a [`PhysicalPlan::Filter`] node.
    pub fn new(plan: &'p PhysicalPlan) -> FilterOp<'p> {
        let PhysicalPlan::Filter {
            input, predicate, ..
        } = plan
        else {
            unreachable!("FilterOp built from {plan:?}")
        };
        FilterOp {
            input: build(input),
            predicate,
        }
    }
}

impl Operator for FilterOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = run_op(self.input.as_ref(), ctx, &mut stats.children[0])?;
        stats.rows_in += rows.len() as u64;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            ctx.rt.check()?;
            if eval_truth(ctx, self.predicate, &row)?.passes_filter() {
                out.push(row);
            }
        }
        Ok(out)
    }
}
