//! Project: expression evaluation over each input row.

use crowddb_common::{Result, Row};
use crowddb_plan::{BExpr, PhysicalPlan};

use crate::context::ExecCtx;
use crate::eval::eval;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Projection operator; see [`PhysicalPlan::Project`].
pub struct ProjectOp<'p> {
    input: BoxedOp<'p>,
    exprs: &'p [BExpr],
}

impl<'p> ProjectOp<'p> {
    /// Build from a [`PhysicalPlan::Project`] node.
    pub fn new(plan: &'p PhysicalPlan) -> ProjectOp<'p> {
        let PhysicalPlan::Project { input, exprs, .. } = plan else {
            unreachable!("ProjectOp built from {plan:?}")
        };
        ProjectOp {
            input: build(input),
            exprs,
        }
    }
}

impl Operator for ProjectOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = run_op(self.input.as_ref(), ctx, &mut stats.children[0])?;
        stats.rows_in += rows.len() as u64;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            ctx.rt.check()?;
            let mut values = Vec::with_capacity(self.exprs.len());
            for e in self.exprs {
                values.push(eval(ctx, e, &row)?);
            }
            out.push(Row::new(values));
        }
        Ok(out)
    }
}
