//! Index access paths: point probes ([`IndexScanOp`]) and bounded range
//! scans ([`IndexRangeScanOp`]) over a table's secondary indexes.
//!
//! Both fetch a *candidate superset* of the qualifying rows — the index
//! result unioned with the tuples whose indexed key is still missing
//! (`NULL`/`CNULL`), since those may qualify once the crowd fills them —
//! and then run the exact same residual/probe/quota pipeline as a full
//! scan ([`super::table_scan::process_candidates`]). Access paths change
//! which pages are read, never what the query means.

use crowddb_common::{CrowdError, Result, Row, TupleId, Value};
use crowddb_plan::{BExpr, IndexMeta, PhysicalPlan};
use crowddb_storage::{HeapTable, Index, IndexKey};

use crate::context::ExecCtx;
use crate::ops::table_scan::{process_candidates, ScanShape};
use crate::ops::{OpStatsNode, Operator};

/// Point-probe operator; see [`PhysicalPlan::IndexScan`].
pub struct IndexScanOp<'p> {
    table: &'p str,
    needed_columns: &'p [usize],
    crowd_table: bool,
    expected_tuples: Option<u64>,
    index: &'p IndexMeta,
    key: &'p [Value],
    residual: Option<&'p BExpr>,
}

impl<'p> IndexScanOp<'p> {
    /// Build from a [`PhysicalPlan::IndexScan`] node.
    pub fn new(plan: &'p PhysicalPlan) -> IndexScanOp<'p> {
        let PhysicalPlan::IndexScan {
            table,
            needed_columns,
            crowd_table,
            expected_tuples,
            index,
            key,
            residual,
            ..
        } = plan
        else {
            unreachable!("IndexScanOp built from {plan:?}")
        };
        IndexScanOp {
            table,
            needed_columns,
            crowd_table: *crowd_table,
            expected_tuples: *expected_tuples,
            index,
            key,
            residual: residual.as_ref(),
        }
    }
}

impl Operator for IndexScanOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = ctx.db.with_table(self.table, |t| {
            let idx = resolve_index(t, self.table, self.index)?;
            let tids = idx.get(t.pager(), &IndexKey(self.key.to_vec()))?;
            fetch_with_missing(t, idx, tids)
        })??;
        ctx.rt.stats.index_probes += 1;
        let total_live = ctx.db.stats(self.table)?.live_rows as u64;
        process_candidates(
            ctx,
            stats,
            &ScanShape {
                table: self.table,
                needed_columns: self.needed_columns,
                crowd_table: self.crowd_table,
                expected_tuples: self.expected_tuples,
                residual: self.residual,
            },
            rows,
            total_live,
        )
    }
}

/// Range-scan operator; see [`PhysicalPlan::IndexRangeScan`].
pub struct IndexRangeScanOp<'p> {
    table: &'p str,
    needed_columns: &'p [usize],
    crowd_table: bool,
    expected_tuples: Option<u64>,
    index: &'p IndexMeta,
    low: Option<&'p Value>,
    high: Option<&'p Value>,
    residual: Option<&'p BExpr>,
}

impl<'p> IndexRangeScanOp<'p> {
    /// Build from a [`PhysicalPlan::IndexRangeScan`] node.
    pub fn new(plan: &'p PhysicalPlan) -> IndexRangeScanOp<'p> {
        let PhysicalPlan::IndexRangeScan {
            table,
            needed_columns,
            crowd_table,
            expected_tuples,
            index,
            low,
            high,
            residual,
            ..
        } = plan
        else {
            unreachable!("IndexRangeScanOp built from {plan:?}")
        };
        IndexRangeScanOp {
            table,
            needed_columns,
            crowd_table: *crowd_table,
            expected_tuples: *expected_tuples,
            index,
            low: low.as_ref(),
            high: high.as_ref(),
            residual: residual.as_ref(),
        }
    }
}

impl Operator for IndexRangeScanOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = ctx.db.with_table(self.table, |t| {
            let idx = resolve_index(t, self.table, self.index)?;
            let low = self.low.map(|v| IndexKey(vec![v.clone()]));
            let high = self.high.map(|v| IndexKey(vec![v.clone()]));
            let tids = idx
                .range(t.pager(), low.as_ref(), high.as_ref())?
                .ok_or_else(|| {
                    CrowdError::Internal(format!(
                        "index {} on {} is unordered but was planned for a range scan",
                        self.index.name, self.table
                    ))
                })?;
            fetch_with_missing(t, idx, tids)
        })??;
        ctx.rt.stats.index_probes += 1;
        let total_live = ctx.db.stats(self.table)?.live_rows as u64;
        process_candidates(
            ctx,
            stats,
            &ScanShape {
                table: self.table,
                needed_columns: self.needed_columns,
                crowd_table: self.crowd_table,
                expected_tuples: self.expected_tuples,
                residual: self.residual,
            },
            rows,
            total_live,
        )
    }
}

/// Find the planned index on the live table; the plan was built against
/// the same catalog, so absence means concurrent DDL — a typed error,
/// not a panic.
pub(crate) fn resolve_index<'t>(
    t: &'t HeapTable,
    table: &str,
    meta: &IndexMeta,
) -> Result<&'t Index> {
    t.indexes()
        .iter()
        .find(|i| i.name == meta.name)
        .ok_or_else(|| {
            CrowdError::Internal(format!(
                "planned index {} no longer exists on {table}",
                meta.name
            ))
        })
}

/// Union probe results with the index's missing-key tuples (which may
/// qualify once the crowd fills them), then fetch the live rows in tid
/// order — the same order a heap scan yields, so access-path choice
/// never reorders output.
pub(crate) fn fetch_with_missing(
    t: &HeapTable,
    idx: &Index,
    mut tids: Vec<TupleId>,
) -> Result<Vec<(TupleId, Row)>> {
    tids.extend(idx.missing_key_tids(t.pager())?);
    tids.sort_unstable_by_key(|tid| tid.0);
    tids.dedup();
    let mut out = Vec::with_capacity(tids.len());
    for tid in tids {
        if let Some(row) = t.get(tid)? {
            out.push((tid, row));
        }
    }
    Ok(out)
}
