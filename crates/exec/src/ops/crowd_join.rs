//! CrowdJoin: the paper's index nested-loop join with a crowdsourced
//! inner side. Executes as a hash join plus an enumeration policy —
//! outer rows without an inner match generate new-tuple needs with the
//! join key preset, `batch_size` tuples at a time.

use crowddb_common::{Result, Row};
use crowddb_plan::{BExpr, JoinType, PhysicalPlan};

use crate::context::ExecCtx;
use crate::ops::hash_join::{join_hashed, CrowdSpec};
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Crowd-join operator; see [`PhysicalPlan::CrowdJoin`].
pub struct CrowdJoinOp<'p> {
    left: BoxedOp<'p>,
    right: BoxedOp<'p>,
    kind: JoinType,
    equi: &'p (BExpr, BExpr),
    residual: &'p [BExpr],
    right_arity: usize,
    spec: CrowdSpec<'p>,
}

impl<'p> CrowdJoinOp<'p> {
    /// Build from a [`PhysicalPlan::CrowdJoin`] node.
    pub fn new(plan: &'p PhysicalPlan) -> CrowdJoinOp<'p> {
        let PhysicalPlan::CrowdJoin {
            left,
            right,
            kind,
            equi,
            residual,
            inner_table,
            key_column,
            batch_size,
            ..
        } = plan
        else {
            unreachable!("CrowdJoinOp built from {plan:?}")
        };
        CrowdJoinOp {
            right_arity: right.schema().arity(),
            left: build(left),
            right: build(right),
            kind: *kind,
            equi,
            residual,
            spec: CrowdSpec {
                table: inner_table,
                key_column,
                batch: *batch_size,
            },
        }
    }
}

impl Operator for CrowdJoinOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let left_rows = run_op(self.left.as_ref(), ctx, &mut stats.children[0])?;
        let right_rows = run_op(self.right.as_ref(), ctx, &mut stats.children[1])?;
        stats.rows_in += (left_rows.len() + right_rows.len()) as u64;
        join_hashed(
            ctx,
            left_rows,
            right_rows,
            self.kind,
            std::slice::from_ref(self.equi),
            self.residual,
            self.right_arity,
            Some(&self.spec),
        )
    }
}
