//! CrowdJoin: the paper's index nested-loop join with a crowdsourced
//! inner side. Executes as a hash join plus an enumeration policy —
//! outer rows without an inner match generate new-tuple needs with the
//! join key preset, `batch_size` tuples at a time.
//!
//! With a `probe_index` on the inner key the inner side is not scanned
//! at all: the executor probes the index once per distinct outer key
//! (plus the missing-key prefix, whose rows may match once the crowd
//! fills them) and feeds only those candidates to the hash join. The
//! join output is identical — rows skipped by the probes have inner
//! keys equal to no outer key, so they could never join — only the page
//! traffic changes.

use std::collections::HashSet;

use crowddb_common::{Result, Row, Value};
use crowddb_plan::{BExpr, IndexMeta, JoinType, PhysicalPlan};
use crowddb_storage::IndexKey;

use crate::context::ExecCtx;
use crate::eval::eval;
use crate::ops::hash_join::{join_hashed, CrowdSpec};
use crate::ops::index_scan::{fetch_with_missing, resolve_index};
use crate::ops::table_scan::{process_candidates, ScanShape};
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Crowd-join operator; see [`PhysicalPlan::CrowdJoin`].
pub struct CrowdJoinOp<'p> {
    left: BoxedOp<'p>,
    right: BoxedOp<'p>,
    kind: JoinType,
    equi: &'p (BExpr, BExpr),
    residual: &'p [BExpr],
    right_arity: usize,
    spec: CrowdSpec<'p>,
    probe: Option<InlProbe<'p>>,
}

/// The index-nested-loop plan for the inner side: the chosen index plus
/// the inner scan's shape, so probed candidates run through the same
/// residual/probe/quota pipeline the scan would have applied.
struct InlProbe<'p> {
    index: &'p IndexMeta,
    shape: ScanShape<'p>,
}

impl<'p> CrowdJoinOp<'p> {
    /// Build from a [`PhysicalPlan::CrowdJoin`] node.
    pub fn new(plan: &'p PhysicalPlan) -> CrowdJoinOp<'p> {
        let PhysicalPlan::CrowdJoin {
            left,
            right,
            kind,
            equi,
            residual,
            inner_table,
            key_column,
            probe_index,
            batch_size,
            ..
        } = plan
        else {
            unreachable!("CrowdJoinOp built from {plan:?}")
        };
        // The INL upgrade needs the inner scan's shape to replay its
        // pipeline over the probed candidates; the planner only sets
        // probe_index when the inner side is a bare crowd TableScan.
        let probe = probe_index.as_ref().and_then(|idx| match right.as_ref() {
            PhysicalPlan::TableScan {
                table,
                needed_columns,
                crowd_table,
                expected_tuples,
                residual,
                ..
            } => Some(InlProbe {
                index: idx,
                shape: ScanShape {
                    table,
                    needed_columns,
                    crowd_table: *crowd_table,
                    expected_tuples: *expected_tuples,
                    residual: residual.as_ref(),
                },
            }),
            _ => None,
        });
        CrowdJoinOp {
            right_arity: right.schema().arity(),
            left: build(left),
            right: build(right),
            kind: *kind,
            equi,
            residual,
            spec: CrowdSpec {
                table: inner_table,
                key_column,
                batch: *batch_size,
            },
            probe,
        }
    }

    /// Index-nested-loop inner fetch: probe the inner index once per
    /// distinct present outer key, union the missing-key prefix, and run
    /// the inner scan's pipeline over just those candidates. Charged to
    /// the inner child's stats node (which never executes as a scan).
    fn probe_inner(
        &self,
        ctx: &mut ExecCtx<'_>,
        child: &mut OpStatsNode,
        probe: &InlProbe<'_>,
        left_rows: &[Row],
    ) -> Result<Vec<Row>> {
        // Distinct outer keys in first-appearance order (determinism);
        // missing keys can never equal an inner key, so they probe
        // nothing (the unmatched outer row still drives the new-tuple
        // policy in the join below).
        let mut seen = HashSet::new();
        let mut keys: Vec<Value> = Vec::new();
        for row in left_rows {
            let key = eval(ctx, &self.equi.0, row)?;
            if !key.is_missing() && seen.insert(IndexKey(vec![key.clone()])) {
                keys.push(key);
            }
        }
        let candidates = ctx.db.with_table(probe.shape.table, |t| {
            let idx = resolve_index(t, probe.shape.table, probe.index)?;
            let mut tids = Vec::new();
            for key in &keys {
                tids.extend(idx.get(t.pager(), &IndexKey(vec![key.clone()]))?);
            }
            fetch_with_missing(t, idx, tids)
        })??;
        ctx.rt.stats.index_probes += keys.len() as u64;
        let total_live = ctx.db.stats(probe.shape.table)?.live_rows as u64;
        let rows = process_candidates(ctx, child, &probe.shape, candidates, total_live)?;
        child.rows_out += rows.len() as u64;
        child.rounds += 1;
        Ok(rows)
    }
}

impl Operator for CrowdJoinOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let left_rows = run_op(self.left.as_ref(), ctx, &mut stats.children[0])?;
        let right_rows = match &self.probe {
            Some(probe) => self.probe_inner(ctx, &mut stats.children[1], probe, &left_rows)?,
            None => run_op(self.right.as_ref(), ctx, &mut stats.children[1])?,
        };
        stats.rows_in += (left_rows.len() + right_rows.len()) as u64;
        join_hashed(
            ctx,
            left_rows,
            right_rows,
            self.kind,
            std::slice::from_ref(self.equi),
            self.residual,
            self.right_arity,
            Some(&self.spec),
        )
    }
}
