//! TableScan: base-table scan with CrowdProbe insertion points and an
//! optional fused residual filter.
//!
//! The residual/probe/quota pipeline over candidate rows is shared with
//! the index access paths ([`crate::ops::index_scan`]) via
//! [`process_candidates`]: an access path only changes *which* rows are
//! fetched, never what happens to them.

use crowddb_common::{Result, Row, Truth, TupleId, Value};
use crowddb_plan::{BExpr, PhysicalPlan};
use crowddb_sql::BinaryOp;

use crate::context::ExecCtx;
use crate::eval::eval_truth;
use crate::need::TaskNeed;
use crate::ops::{OpStatsNode, Operator};

/// Scan operator; see [`PhysicalPlan::TableScan`].
pub struct TableScanOp<'p> {
    table: &'p str,
    needed_columns: &'p [usize],
    crowd_table: bool,
    expected_tuples: Option<u64>,
    residual: Option<&'p BExpr>,
}

impl<'p> TableScanOp<'p> {
    /// Build from a [`PhysicalPlan::TableScan`] node.
    pub fn new(plan: &'p PhysicalPlan) -> TableScanOp<'p> {
        let PhysicalPlan::TableScan {
            table,
            needed_columns,
            crowd_table,
            expected_tuples,
            residual,
            ..
        } = plan
        else {
            unreachable!("TableScanOp built from {plan:?}")
        };
        TableScanOp {
            table,
            needed_columns,
            crowd_table: *crowd_table,
            expected_tuples: *expected_tuples,
            residual: residual.as_ref(),
        }
    }
}

impl Operator for TableScanOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let schema = ctx.table_schema(self.table)?;
        // Point-lookup fast path: a residual that pins the whole primary
        // key with literal equalities reads via the PK index instead of
        // scanning. (Scan output ordinals equal base ordinals, so the
        // predicate's column ids map directly onto the key.)
        let pk_values = self
            .residual
            .and_then(|p| pk_pin_values(p, &schema.primary_key));
        let (rows, total_live) = match &pk_values {
            Some(key) => {
                let rows = ctx.db.with_table(self.table, |t| -> Result<Vec<_>> {
                    let mut out = Vec::new();
                    for tid in t.lookup_pk(key)? {
                        if let Some(r) = t.get(tid)? {
                            out.push((tid, r));
                        }
                    }
                    Ok(out)
                })??;
                let total = ctx.db.stats(self.table)?.live_rows as u64;
                ctx.rt.stats.index_lookups += 1;
                (rows, total)
            }
            None => {
                let rows = ctx.db.with_table(self.table, |t| t.scan_rows())??;
                let total = rows.len() as u64;
                (rows, total)
            }
        };
        process_candidates(
            ctx,
            stats,
            &ScanShape {
                table: self.table,
                needed_columns: self.needed_columns,
                crowd_table: self.crowd_table,
                expected_tuples: self.expected_tuples,
                residual: self.residual,
            },
            rows,
            total_live,
        )
    }
}

/// The scan-shaped parameters shared by every base access path.
pub(crate) struct ScanShape<'p> {
    pub table: &'p str,
    pub needed_columns: &'p [usize],
    pub crowd_table: bool,
    pub expected_tuples: Option<u64>,
    pub residual: Option<&'p BExpr>,
}

/// Run the shared scan pipeline over already-fetched candidate rows:
/// residual filtering (decidedly-False rows drop before any crowd work),
/// CrowdProbe needs for missing values, and the bounded CROWD-table
/// tuple quota. `total_live` is the table's live-row count (the quota
/// counts stored tuples, not candidates).
pub(crate) fn process_candidates(
    ctx: &mut ExecCtx<'_>,
    stats: &mut OpStatsNode,
    shape: &ScanShape<'_>,
    rows: Vec<(TupleId, Row)>,
    total_live: u64,
) -> Result<Vec<Row>> {
    let schema = ctx.table_schema(shape.table)?;
    ctx.rt.stats.rows_scanned += rows.len() as u64;
    stats.rows_in += rows.len() as u64;

    let mut out = Vec::with_capacity(rows.len());
    for (tid, row) in rows {
        ctx.rt.check()?;
        // Fused filter: a decidedly-False predicate drops the row
        // before any crowd work is generated for it; Unknown keeps
        // probing (the missing value may decide the predicate).
        let truth = match shape.residual {
            Some(p) => eval_truth(ctx, p, &row)?,
            None => Truth::True,
        };
        if truth == Truth::False {
            continue;
        }
        // CrowdProbe, missing-value flavor: any needed column that is
        // CNULL (and crowdsourceable) becomes a probe need.
        let mut missing: Vec<(usize, String, crowddb_common::DataType)> = Vec::new();
        for &c in shape.needed_columns {
            if row.get(c).map(Value::is_cnull).unwrap_or(false) {
                let col = &schema.columns[c];
                if col.crowd || schema.crowd_table {
                    ctx.rt.stats.cnulls_seen += 1;
                    missing.push((c, col.name.clone(), col.data_type));
                }
            }
        }
        if !missing.is_empty() {
            let context: Vec<(String, String)> = schema
                .columns
                .iter()
                .enumerate()
                .filter(|(i, _)| {
                    schema.primary_key.contains(i)
                        || (shape.needed_columns.contains(i)
                            && !row.get(*i).map(Value::is_missing).unwrap_or(true))
                })
                .map(|(i, c)| (c.name.clone(), row[i].to_string()))
                .collect();
            ctx.rt.push_need(TaskNeed::ProbeValues {
                table: shape.table.to_string(),
                tid,
                context,
                columns: missing,
            });
        }
        // Unknown rows are probed above but excluded from this
        // round's output (SQL WHERE semantics); they qualify on
        // re-execution once the crowd fills the value in.
        if truth.passes_filter() {
            out.push(row);
        }
    }

    // CrowdProbe, new-tuple flavor: a bounded CROWD-table scan short
    // of its quota asks the crowd for more tuples.
    if shape.crowd_table {
        if let Some(expected) = shape.expected_tuples {
            // The quota counts stored tuples, not filter survivors:
            // the bound caps how much of the open world is enumerated.
            let have = total_live;
            if have < expected {
                ctx.rt.push_need(TaskNeed::NewTuples {
                    table: shape.table.to_string(),
                    preset: vec![],
                    want: expected - have,
                });
            }
        }
    }
    Ok(out)
}

/// If `predicate` pins every primary-key column (by base ordinal) with an
/// equality against a literal, return the key values in PK order.
fn pk_pin_values(predicate: &BExpr, pk: &[usize]) -> Option<Vec<Value>> {
    if pk.is_empty() {
        return None;
    }
    let mut conjuncts = Vec::new();
    crowddb_plan::optimizer::split_conjuncts(predicate.clone(), &mut conjuncts);
    let mut values: Vec<Option<Value>> = vec![None; pk.len()];
    for c in &conjuncts {
        if let BExpr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        {
            let (col, lit) = match (left.as_ref(), right.as_ref()) {
                (BExpr::Column(i), BExpr::Literal(v)) => (*i, v.clone()),
                (BExpr::Literal(v), BExpr::Column(i)) => (*i, v.clone()),
                _ => continue,
            };
            if lit.is_missing() {
                continue;
            }
            if let Some(pos) = pk.iter().position(|&p| p == col) {
                values[pos] = Some(lit);
            }
        }
    }
    values.into_iter().collect()
}
