//! StopAfter: the paper's LIMIT/OFFSET operator.

use crowddb_common::{Result, Row};
use crowddb_plan::PhysicalPlan;

use crate::context::ExecCtx;
use crate::ops::{build, run_op, BoxedOp, OpStatsNode, Operator};

/// Limit/offset operator; see [`PhysicalPlan::StopAfter`].
pub struct StopAfterOp<'p> {
    input: BoxedOp<'p>,
    limit: Option<u64>,
    offset: u64,
}

impl<'p> StopAfterOp<'p> {
    /// Build from a [`PhysicalPlan::StopAfter`] node.
    pub fn new(plan: &'p PhysicalPlan) -> StopAfterOp<'p> {
        let PhysicalPlan::StopAfter {
            input,
            limit,
            offset,
            ..
        } = plan
        else {
            unreachable!("StopAfterOp built from {plan:?}")
        };
        StopAfterOp {
            input: build(input),
            limit: *limit,
            offset: *offset,
        }
    }
}

impl Operator for StopAfterOp<'_> {
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>> {
        let rows = run_op(self.input.as_ref(), ctx, &mut stats.children[0])?;
        stats.rows_in += rows.len() as u64;
        let start = (self.offset as usize).min(rows.len());
        let end = match self.limit {
            Some(l) => (start + l as usize).min(rows.len()),
            None => rows.len(),
        };
        Ok(rows[start..end].to_vec())
    }
}
