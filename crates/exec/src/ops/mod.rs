//! Physical operator implementations — one module per operator.
//!
//! [`build`] turns a [`PhysicalPlan`] into a tree of boxed [`Operator`]s
//! borrowing the plan; [`run_op`] executes a node while recording
//! per-operator statistics into an [`OpStatsNode`] tree that mirrors the
//! plan shape. Execution stays materialize-per-round: each operator
//! returns its full output, and crowd work surfaces as needs on the
//! shared [`ExecCtx`].
//!
//! ## Operator contract
//!
//! * `execute` materializes the node's full output for this round from
//!   current knowledge; it must not block on the crowd — undecidable
//!   work is recorded as needs via `ctx.rt.push_need`.
//! * Children are run through [`run_op`] against `stats.children[i]`,
//!   where `i` is the child's position in [`PhysicalPlan::children`].
//! * `execute` sets `stats.rows_in` itself (input rows consumed);
//!   everything else (rows out, needs, cache counters, wall time) is
//!   attributed by [`run_op`] via snapshot diffs.

mod aggregate;
mod crowd_join;
mod crowd_sort;
mod distinct;
mod filter;
mod hash_join;
mod index_scan;
mod nested_loop_join;
mod project;
mod sort;
mod stop_after;
mod table_scan;
mod union;
mod values;

use std::time::{Duration, Instant};

use crowddb_common::{Result, Row};
use crowddb_obs::MetricsRegistry;
use crowddb_plan::PhysicalPlan;

use crate::context::{ExecCtx, NeedCounts};

/// A physical operator: materializes its output for one round.
pub trait Operator {
    /// Produce this node's full output from current knowledge, recording
    /// input row counts into `stats` and crowd needs into `ctx`.
    fn execute(&self, ctx: &mut ExecCtx<'_>, stats: &mut OpStatsNode) -> Result<Vec<Row>>;
}

/// A built operator tree borrowing the physical plan it was built from.
pub type BoxedOp<'p> = Box<dyn Operator + 'p>;

/// Build the operator tree for a physical plan.
pub fn build<'p>(plan: &'p PhysicalPlan) -> BoxedOp<'p> {
    match plan {
        PhysicalPlan::TableScan { .. } => Box::new(table_scan::TableScanOp::new(plan)),
        PhysicalPlan::IndexScan { .. } => Box::new(index_scan::IndexScanOp::new(plan)),
        PhysicalPlan::IndexRangeScan { .. } => Box::new(index_scan::IndexRangeScanOp::new(plan)),
        PhysicalPlan::Filter { .. } => Box::new(filter::FilterOp::new(plan)),
        PhysicalPlan::Project { .. } => Box::new(project::ProjectOp::new(plan)),
        PhysicalPlan::HashJoin { .. } => Box::new(hash_join::HashJoinOp::new(plan)),
        PhysicalPlan::CrowdJoin { .. } => Box::new(crowd_join::CrowdJoinOp::new(plan)),
        PhysicalPlan::NestedLoopJoin { .. } => {
            Box::new(nested_loop_join::NestedLoopJoinOp::new(plan))
        }
        PhysicalPlan::Sort { .. } => Box::new(sort::SortOp::new(plan)),
        PhysicalPlan::CrowdSort { .. } => Box::new(crowd_sort::CrowdSortOp::new(plan)),
        PhysicalPlan::Aggregate { .. } => Box::new(aggregate::AggregateOp::new(plan)),
        PhysicalPlan::StopAfter { .. } => Box::new(stop_after::StopAfterOp::new(plan)),
        PhysicalPlan::Distinct { .. } => Box::new(distinct::DistinctOp::new(plan)),
        PhysicalPlan::Values { .. } => Box::new(values::ValuesOp::new(plan)),
        PhysicalPlan::Union { .. } => Box::new(union::UnionOp::new(plan)),
    }
}

/// Per-operator statistics, one node per physical operator, accumulated
/// across rounds.
///
/// The counters captured around `execute` are *cumulative over the
/// subtree* (children run inside their parent's `execute`); the
/// self-attributed accessors ([`OpStatsNode::needs`],
/// [`OpStatsNode::cache_hits`], [`OpStatsNode::cache_misses`],
/// [`OpStatsNode::wall`]) subtract the children's cumulative totals.
#[derive(Debug, Clone, Default)]
pub struct OpStatsNode {
    /// Operator name (e.g. `TableScan`, `CrowdJoin`).
    pub name: String,
    /// Input rows consumed (set by the operator itself).
    pub rows_in: u64,
    /// Output rows produced.
    pub rows_out: u64,
    /// Rounds this node executed.
    pub rounds: u64,
    /// Per-child stats, in [`PhysicalPlan::children`] order.
    pub children: Vec<OpStatsNode>,
    pub(crate) cum_needs: NeedCounts,
    pub(crate) cum_hits: u64,
    pub(crate) cum_misses: u64,
    pub(crate) cum_pages_read: u64,
    pub(crate) cum_pool_hits: u64,
    pub(crate) cum_index_probes: u64,
    pub(crate) cum_machine_ordered: u64,
    pub(crate) cum_wall: Duration,
}

impl OpStatsNode {
    /// An all-zero stats tree mirroring `plan`.
    pub fn skeleton(plan: &PhysicalPlan) -> OpStatsNode {
        OpStatsNode {
            name: plan.name().to_string(),
            children: plan.children().into_iter().map(Self::skeleton).collect(),
            ..OpStatsNode::default()
        }
    }

    /// Needs emitted by this operator itself (children excluded).
    pub fn needs(&self) -> NeedCounts {
        let child: NeedCounts = self
            .children
            .iter()
            .fold(NeedCounts::default(), |acc, c| acc.add(&c.cum_needs));
        self.cum_needs.diff(&child)
    }

    /// Compare-cache hits by this operator itself.
    pub fn cache_hits(&self) -> u64 {
        self.cum_hits - self.children.iter().map(|c| c.cum_hits).sum::<u64>()
    }

    /// Compare-cache misses by this operator itself.
    pub fn cache_misses(&self) -> u64 {
        self.cum_misses - self.children.iter().map(|c| c.cum_misses).sum::<u64>()
    }

    /// Pages this operator itself fetched from the storage backend
    /// (buffer-pool misses that did I/O).
    pub fn pages_read(&self) -> u64 {
        self.cum_pages_read - self.children.iter().map(|c| c.cum_pages_read).sum::<u64>()
    }

    /// Page requests this operator itself answered from the buffer pool.
    pub fn pool_hits(&self) -> u64 {
        self.cum_pool_hits - self.children.iter().map(|c| c.cum_pool_hits).sum::<u64>()
    }

    /// Secondary-index probes issued by this operator itself.
    pub fn index_probes(&self) -> u64 {
        self.cum_index_probes
            - self
                .children
                .iter()
                .map(|c| c.cum_index_probes)
                .sum::<u64>()
    }

    /// Comparisons this operator itself resolved via the hybrid
    /// CROWDORDER machine path.
    pub fn machine_ordered(&self) -> u64 {
        self.cum_machine_ordered
            - self
                .children
                .iter()
                .map(|c| c.cum_machine_ordered)
                .sum::<u64>()
    }

    /// Wall time spent in this operator itself.
    pub fn wall(&self) -> Duration {
        self.children
            .iter()
            .fold(self.cum_wall, |acc, c| acc.saturating_sub(c.cum_wall))
    }

    /// Accumulate another round's stats tree into this one (same shape).
    pub fn merge(&mut self, other: &OpStatsNode) {
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.rounds += other.rounds;
        self.cum_needs = self.cum_needs.add(&other.cum_needs);
        self.cum_hits += other.cum_hits;
        self.cum_misses += other.cum_misses;
        self.cum_pages_read += other.cum_pages_read;
        self.cum_pool_hits += other.cum_pool_hits;
        self.cum_index_probes += other.cum_index_probes;
        self.cum_machine_ordered += other.cum_machine_ordered;
        self.cum_wall += other.cum_wall;
        for (mine, theirs) in self.children.iter_mut().zip(&other.children) {
            mine.merge(theirs);
        }
    }

    /// One-line stats summary (everything but the operator name).
    ///
    /// `time=` is always the final token so snapshot tests can scrub it.
    pub fn summary(&self) -> String {
        let needs = self.needs();
        format!(
            "rounds={} in={} out={} probe={} new={} eq={} ord={} hit={} miss={} mord={} \
             pages={} pool_hit={} iprobe={} time={:?}",
            self.rounds,
            self.rows_in,
            self.rows_out,
            needs.probe,
            needs.new_tuples,
            needs.equal,
            needs.order,
            self.cache_hits(),
            self.cache_misses(),
            self.machine_ordered(),
            self.pages_read(),
            self.pool_hits(),
            self.index_probes(),
            self.wall(),
        )
    }

    /// Render the stats tree alone (used by the bench harness).
    pub fn render(&self) -> Vec<String> {
        fn rec(node: &OpStatsNode, depth: usize, out: &mut Vec<String>) {
            out.push(format!(
                "{}{} | {}",
                "  ".repeat(depth),
                node.name,
                node.summary()
            ));
            for c in &node.children {
                rec(c, depth + 1, out);
            }
        }
        let mut out = Vec::new();
        rec(self, 0, &mut out);
        out
    }
}

/// Execute `op` for one round, attributing counters to `node`.
///
/// Snapshots the shared need/cache counters around the call; the diffs
/// (cumulative over the subtree, since children run inside the parent)
/// accumulate on `node`.
pub fn run_op(
    op: &dyn Operator,
    ctx: &mut ExecCtx<'_>,
    node: &mut OpStatsNode,
) -> Result<Vec<Row>> {
    let needs0 = ctx.rt.need_counts;
    let hits0 = ctx.rt.stats.compare_cache_hits;
    let misses0 = ctx.rt.stats.compare_cache_misses;
    let mord0 = ctx.rt.stats.machine_ordered;
    let probes0 = ctx.rt.stats.index_probes;
    let pager0 = ctx.db.pager_stats();
    let t0 = Instant::now();
    let rows = op.execute(ctx, node)?;
    // Central guard charge: every operator's output counts toward the
    // intermediate-row cap, and each boundary is a cancel checkpoint.
    ctx.rt.charge_rows(rows.len() as u64)?;
    node.cum_wall += t0.elapsed();
    node.cum_needs = node.cum_needs.add(&ctx.rt.need_counts.diff(&needs0));
    node.cum_hits += ctx.rt.stats.compare_cache_hits - hits0;
    node.cum_misses += ctx.rt.stats.compare_cache_misses - misses0;
    node.cum_machine_ordered += ctx.rt.stats.machine_ordered - mord0;
    // Pager counters are engine-global; diffing around `execute` charges
    // this subtree's page traffic to this node (children run inside, so
    // the self-attributed accessors subtract them back out).
    let pager = ctx.db.pager_stats().diff(&pager0);
    node.cum_pages_read += pager.pages_read;
    node.cum_pool_hits += pager.pool_hits;
    node.cum_index_probes += ctx.rt.stats.index_probes - probes0;
    node.rows_out += rows.len() as u64;
    node.rounds += 1;
    Ok(rows)
}

/// Flush one round's per-operator stats tree into the metrics registry.
///
/// Per operator (by sanitized lowercase name): rows in/out counters and
/// a rows-out histogram. Crowd needs, compare-cache hits and misses are
/// self-attributed per node and summed into engine-wide counters. Wall
/// time is deliberately *not* flushed — it is nondeterministic and would
/// break golden metric snapshots.
pub fn flush_op_stats(registry: &MetricsRegistry, stats: &OpStatsNode) {
    let op = sanitize_metric_component(&stats.name);
    registry.counter_add(&format!("crowddb_exec_rows_in_total_{op}"), stats.rows_in);
    registry.counter_add(&format!("crowddb_exec_rows_out_total_{op}"), stats.rows_out);
    registry.observe(
        &format!("crowddb_exec_rows_out_{op}"),
        stats.rows_out as f64,
    );
    let needs = stats.needs();
    registry.counter_add("crowddb_exec_needs_probe_total", needs.probe);
    registry.counter_add("crowddb_exec_needs_new_tuples_total", needs.new_tuples);
    registry.counter_add("crowddb_exec_needs_equal_total", needs.equal);
    registry.counter_add("crowddb_exec_needs_order_total", needs.order);
    registry.counter_add("crowddb_exec_cache_hits_total", stats.cache_hits());
    registry.counter_add("crowddb_exec_cache_misses_total", stats.cache_misses());
    registry.counter_add(
        "crowddb_exec_machine_ordered_total",
        stats.machine_ordered(),
    );
    registry.counter_add("crowddb_exec_pages_read_total", stats.pages_read());
    registry.counter_add("crowddb_exec_pool_hits_total", stats.pool_hits());
    registry.counter_add("crowddb_exec_index_probes_total", stats.index_probes());
    for child in &stats.children {
        flush_op_stats(registry, child);
    }
}

/// Lowercase `name` and replace anything outside `[a-z0-9]` with `_` so
/// operator names slot into Prometheus-legal metric names.
fn sanitize_metric_component(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

/// Render the physical plan with per-operator stats appended to each
/// node — the body of `EXPLAIN ANALYZE`.
///
/// `plan` and `stats` must have the same shape (the stats tree is built
/// by [`OpStatsNode::skeleton`] from the same plan).
pub fn render_analyzed(plan: &PhysicalPlan, stats: &OpStatsNode) -> String {
    fn rec(plan: &PhysicalPlan, stats: &OpStatsNode, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        out.push_str(&format!(
            "{pad}{}{} | {}\n",
            plan.describe(),
            plan.annot().render(),
            stats.summary()
        ));
        for (c, cs) in plan.children().into_iter().zip(&stats.children) {
            rec(c, cs, depth + 1, out);
        }
    }
    let mut out = String::new();
    rec(plan, stats, 0, &mut out);
    out
}
