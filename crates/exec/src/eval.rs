//! Expression evaluation — the single home for it.
//!
//! [`eval`] is the full evaluator (literals through subqueries and
//! `CROWDEQUAL`), threaded through an [`ExecCtx`] so crowd comparisons
//! hit the session caches and record needs. The value-level helpers
//! (arithmetic, comparison, LIKE, scalar functions, casts) below it are
//! pure. Every operator and the DML paths call these same entry points;
//! there are no per-caller copies.

use crowddb_common::{CrowdError, DataType, Result, Row, Truth, Value};
use crowddb_plan::{BExpr, ScalarFn};
use crowddb_sql::{BinaryOp, UnaryOp};

use crate::context::ExecCtx;
use crate::need::TaskNeed;

/// Evaluate an expression to a value.
///
/// Handles the crowd cases inline: `CROWDEQUAL` consults the session
/// equality cache (recording an [`TaskNeed::Equal`] need and yielding
/// `NULL` on a miss), and subquery forms run through
/// [`ExecCtx::run_subplan`].
pub fn eval(ctx: &mut ExecCtx<'_>, e: &BExpr, row: &Row) -> Result<Value> {
    match e {
        BExpr::Literal(v) => Ok(v.clone()),
        BExpr::Column(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| CrowdError::Internal(format!("column #{i} out of range"))),
        BExpr::Unary { op, expr } => {
            let v = eval(ctx, expr, row)?;
            match op {
                UnaryOp::Not => Ok(truth_to_value(value_truth(&v)?.not())),
                UnaryOp::Neg => match v {
                    Value::Int(i) => i
                        .checked_neg()
                        .map(Value::Int)
                        .ok_or_else(|| CrowdError::Exec("integer overflow in -".into())),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Null | Value::CNull => Ok(Value::Null),
                    other => Err(CrowdError::Type(format!(
                        "cannot negate {}",
                        other.sql_literal()
                    ))),
                },
                UnaryOp::Pos => Ok(v),
            }
        }
        BExpr::Binary { left, op, right } => {
            // Short-circuit AND/OR — crucial for crowd predicates: a
            // FALSE machine conjunct suppresses the crowd call.
            match op {
                BinaryOp::And => {
                    let l = value_truth(&eval(ctx, left, row)?)?;
                    if l == Truth::False {
                        return Ok(Value::Bool(false));
                    }
                    let r = value_truth(&eval(ctx, right, row)?)?;
                    return Ok(truth_to_value(l.and(r)));
                }
                BinaryOp::Or => {
                    let l = value_truth(&eval(ctx, left, row)?)?;
                    if l == Truth::True {
                        return Ok(Value::Bool(true));
                    }
                    let r = value_truth(&eval(ctx, right, row)?)?;
                    return Ok(truth_to_value(l.or(r)));
                }
                _ => {}
            }
            let l = eval(ctx, left, row)?;
            let r = eval(ctx, right, row)?;
            eval_binary(&l, *op, &r)
        }
        BExpr::Is {
            expr,
            negated,
            cnull,
        } => {
            let v = eval(ctx, expr, row)?;
            let hit = if *cnull {
                v.is_cnull()
            } else {
                matches!(v, Value::Null)
            };
            Ok(Value::Bool(hit != *negated))
        }
        BExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(ctx, expr, row)?;
            let p = eval(ctx, pattern, row)?;
            if v.is_missing() || p.is_missing() {
                return Ok(Value::Null);
            }
            let (Some(s), Some(pat)) = (v.as_str(), p.as_str()) else {
                return Err(CrowdError::Type("LIKE expects strings".into()));
            };
            Ok(Value::Bool(like_match(s, pat) != *negated))
        }
        BExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(ctx, expr, row)?;
            let lo = eval(ctx, low, row)?;
            let hi = eval(ctx, high, row)?;
            let t =
                compare_truth(&v, BinaryOp::GtEq, &lo).and(compare_truth(&v, BinaryOp::LtEq, &hi));
            Ok(truth_to_value(if *negated { t.not() } else { t }))
        }
        BExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(ctx, expr, row)?;
            let mut any_unknown = v.is_missing();
            let mut found = false;
            for cand in list {
                let c = eval(ctx, cand, row)?;
                match compare_truth(&v, BinaryOp::Eq, &c) {
                    Truth::True => {
                        found = true;
                        break;
                    }
                    Truth::Unknown => any_unknown = true,
                    Truth::False => {}
                }
            }
            let t = if found {
                Truth::True
            } else if any_unknown {
                Truth::Unknown
            } else {
                Truth::False
            };
            Ok(truth_to_value(if *negated { t.not() } else { t }))
        }
        BExpr::InPlan {
            expr,
            plan,
            negated,
        } => {
            let v = eval(ctx, expr, row)?;
            let rows = ctx.run_subplan(plan)?;
            let mut any_unknown = v.is_missing();
            let mut found = false;
            for r in &rows {
                match compare_truth(&v, BinaryOp::Eq, &r[0]) {
                    Truth::True => {
                        found = true;
                        break;
                    }
                    Truth::Unknown => any_unknown = true,
                    Truth::False => {}
                }
            }
            let t = if found {
                Truth::True
            } else if any_unknown {
                Truth::Unknown
            } else {
                Truth::False
            };
            Ok(truth_to_value(if *negated { t.not() } else { t }))
        }
        BExpr::ExistsPlan { plan, negated } => {
            let rows = ctx.run_subplan(plan)?;
            Ok(Value::Bool(rows.is_empty() == *negated))
        }
        BExpr::ScalarPlan(plan) => {
            let rows = ctx.run_subplan(plan)?;
            match rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rows[0][0].clone()),
                n => Err(CrowdError::Exec(format!(
                    "scalar subquery returned {n} rows"
                ))),
            }
        }
        BExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let op_val = match operand {
                Some(o) => Some(eval(ctx, o, row)?),
                None => None,
            };
            for (when, then) in branches {
                let hit = match &op_val {
                    Some(v) => {
                        let w = eval(ctx, when, row)?;
                        compare_truth(v, BinaryOp::Eq, &w) == Truth::True
                    }
                    None => {
                        let w = eval(ctx, when, row)?;
                        value_truth(&w)? == Truth::True
                    }
                };
                if hit {
                    return eval(ctx, then, row);
                }
            }
            match else_expr {
                Some(e) => eval(ctx, e, row),
                None => Ok(Value::Null),
            }
        }
        BExpr::Cast { expr, data_type } => {
            let v = eval(ctx, expr, row)?;
            eval_cast(&v, *data_type)
        }
        BExpr::Scalar { func, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval(ctx, a, row)?);
            }
            eval_scalar_fn(*func, &vals)
        }
        BExpr::CrowdEqual { left, right } => {
            let l = eval(ctx, left, row)?;
            let r = eval(ctx, right, row)?;
            if l.is_missing() || r.is_missing() {
                return Ok(Value::Null);
            }
            // Fast path: machine-equal values need no crowd.
            if compare_truth(&l, BinaryOp::Eq, &r) == Truth::True {
                return Ok(Value::Bool(true));
            }
            let ls = l.to_string();
            let rs = r.to_string();
            let instruction = "Do these two values refer to the same entity?";
            match ctx.rt.caches.get_equal(&ls, &rs, instruction) {
                Some(verdict) => {
                    ctx.rt.stats.compare_cache_hits += 1;
                    Ok(Value::Bool(verdict))
                }
                None => {
                    ctx.rt.stats.compare_cache_misses += 1;
                    ctx.rt.push_need(TaskNeed::Equal {
                        left: ls,
                        right: rs,
                        instruction: instruction.to_string(),
                    });
                    // Unknown until the crowd answers.
                    Ok(Value::Null)
                }
            }
        }
        BExpr::CrowdOrder { .. } => Err(CrowdError::Internal(
            "CROWDORDER evaluated outside a sort".into(),
        )),
    }
}

/// Evaluate a predicate to a truth value.
pub fn eval_truth(ctx: &mut ExecCtx<'_>, e: &BExpr, row: &Row) -> Result<Truth> {
    let v = eval(ctx, e, row)?;
    value_truth(&v)
}

/// Evaluate a binary operator over two concrete values (3VL for
/// comparisons, missing-propagation for arithmetic).
pub fn eval_binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    use BinaryOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => eval_arith(l, op, r),
        Concat => {
            if l.is_missing() || r.is_missing() {
                return Ok(Value::Null);
            }
            Ok(Value::Str(format!("{l}{r}")))
        }
        Eq | NotEq | Lt | LtEq | Gt | GtEq => Ok(truth_to_value(compare_truth(l, op, r))),
        And | Or => {
            let a = value_truth(l)?;
            let b = value_truth(r)?;
            Ok(truth_to_value(if op == And { a.and(b) } else { a.or(b) }))
        }
        CrowdEq => Err(CrowdError::Internal(
            "CrowdEq must be handled by the crowd evaluator".into(),
        )),
    }
}

/// Comparison in three-valued logic.
pub fn compare_truth(l: &Value, op: BinaryOp, r: &Value) -> Truth {
    use std::cmp::Ordering::*;
    let Some(ord) = l.compare(r) else {
        return Truth::Unknown;
    };
    let b = match op {
        BinaryOp::Eq => ord == Equal,
        BinaryOp::NotEq => ord != Equal,
        BinaryOp::Lt => ord == Less,
        BinaryOp::LtEq => ord != Greater,
        BinaryOp::Gt => ord == Greater,
        BinaryOp::GtEq => ord != Less,
        _ => return Truth::Unknown,
    };
    Truth::from_bool(b)
}

fn eval_arith(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    if l.is_missing() || r.is_missing() {
        return Ok(Value::Null);
    }
    // Integer fast path.
    if let (Some(a), Some(b)) = (l.as_i64(), r.as_i64()) {
        return match op {
            BinaryOp::Add => a
                .checked_add(b)
                .map(Value::Int)
                .ok_or_else(|| CrowdError::Exec("integer overflow in +".into())),
            BinaryOp::Sub => a
                .checked_sub(b)
                .map(Value::Int)
                .ok_or_else(|| CrowdError::Exec("integer overflow in -".into())),
            BinaryOp::Mul => a
                .checked_mul(b)
                .map(Value::Int)
                .ok_or_else(|| CrowdError::Exec("integer overflow in *".into())),
            BinaryOp::Div => {
                if b == 0 {
                    Err(CrowdError::Exec("division by zero".into()))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            BinaryOp::Mod => {
                if b == 0 {
                    Err(CrowdError::Exec("modulo by zero".into()))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            op => Err(CrowdError::Internal(format!(
                "non-arithmetic operator {op:?} reached integer arithmetic"
            ))),
        };
    }
    let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
        return Err(CrowdError::Type(format!(
            "arithmetic on non-numeric values {} and {}",
            l.sql_literal(),
            r.sql_literal()
        )));
    };
    let v = match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(CrowdError::Exec("division by zero".into()));
            }
            a / b
        }
        BinaryOp::Mod => {
            if b == 0.0 {
                return Err(CrowdError::Exec("modulo by zero".into()));
            }
            a % b
        }
        op => {
            return Err(CrowdError::Internal(format!(
                "non-arithmetic operator {op:?} reached float arithmetic"
            )))
        }
    };
    if v.is_nan() {
        return Err(CrowdError::Exec("NaN produced by arithmetic".into()));
    }
    Ok(Value::Float(v))
}

/// SQL boolean interpretation of a value.
pub fn value_truth(v: &Value) -> Result<Truth> {
    match v {
        Value::Bool(b) => Ok(Truth::from_bool(*b)),
        Value::Null | Value::CNull => Ok(Truth::Unknown),
        other => Err(CrowdError::Type(format!(
            "expected a boolean, got {}",
            other.sql_literal()
        ))),
    }
}

/// Truth → SQL value (`Unknown` → `NULL`).
pub fn truth_to_value(t: Truth) -> Value {
    match t.to_bool() {
        Some(b) => Value::Bool(b),
        None => Value::Null,
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (any one char); case-sensitive.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                // Try all splits, shortest first.
                (0..=t.len()).any(|k| rec(&t[k..], rest))
            }
            Some(('_', rest)) => !t.is_empty() && rec(&t[1..], rest),
            Some((c, rest)) => t.first() == Some(c) && rec(&t[1..], rest),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// Evaluate a scalar function over concrete arguments.
pub fn eval_scalar_fn(func: ScalarFn, args: &[Value]) -> Result<Value> {
    match func {
        ScalarFn::Coalesce => {
            for a in args {
                if !a.is_missing() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        ScalarFn::ConcatFn => {
            let mut s = String::new();
            for a in args {
                if a.is_missing() {
                    return Ok(Value::Null);
                }
                s.push_str(&a.to_string());
            }
            Ok(Value::Str(s))
        }
        _ => {
            // Unary-ish functions: missing in → missing out.
            if args.iter().any(Value::is_missing) {
                return Ok(Value::Null);
            }
            match func {
                ScalarFn::Lower => str_arg(func, &args[0]).map(|s| Value::Str(s.to_lowercase())),
                ScalarFn::Upper => str_arg(func, &args[0]).map(|s| Value::Str(s.to_uppercase())),
                ScalarFn::Trim => str_arg(func, &args[0]).map(|s| Value::Str(s.trim().to_string())),
                ScalarFn::Length => {
                    str_arg(func, &args[0]).map(|s| Value::Int(s.chars().count() as i64))
                }
                ScalarFn::Abs => match &args[0] {
                    Value::Int(i) => {
                        Ok(Value::Int(i.checked_abs().ok_or_else(|| {
                            CrowdError::Exec("integer overflow in ABS".into())
                        })?))
                    }
                    Value::Float(f) => Ok(Value::Float(f.abs())),
                    other => Err(CrowdError::Type(format!(
                        "ABS expects a number, got {}",
                        other.sql_literal()
                    ))),
                },
                ScalarFn::Round => match &args[0] {
                    Value::Int(i) => Ok(Value::Int(*i)),
                    Value::Float(f) => Ok(Value::Float(f.round())),
                    other => Err(CrowdError::Type(format!(
                        "ROUND expects a number, got {}",
                        other.sql_literal()
                    ))),
                },
                ScalarFn::Substr => {
                    let s = str_arg(func, &args[0])?;
                    let start = args[1].as_i64().ok_or_else(|| {
                        CrowdError::Type("SUBSTR start must be an integer".into())
                    })?;
                    let chars: Vec<char> = s.chars().collect();
                    // SQL is 1-based; clamp out-of-range gracefully.
                    let begin = (start.max(1) as usize - 1).min(chars.len());
                    let len = match args.get(2) {
                        Some(v) => v.as_i64().ok_or_else(|| {
                            CrowdError::Type("SUBSTR length must be an integer".into())
                        })?,
                        None => chars.len() as i64,
                    };
                    let end = (begin as i64 + len.max(0)).min(chars.len() as i64) as usize;
                    Ok(Value::Str(chars[begin..end].iter().collect()))
                }
                ScalarFn::Coalesce | ScalarFn::ConcatFn => Err(CrowdError::Internal(
                    "variadic scalar function fell through its dispatch".into(),
                )),
            }
        }
    }
}

fn str_arg(func: ScalarFn, v: &Value) -> Result<&str> {
    v.as_str().ok_or_else(|| {
        CrowdError::Type(format!(
            "{} expects a string, got {}",
            func.name(),
            v.sql_literal()
        ))
    })
}

/// Apply an explicit `CAST`.
pub fn eval_cast(v: &Value, ty: DataType) -> Result<Value> {
    if v.is_missing() {
        return Ok(v.clone());
    }
    let out = match (v, ty) {
        (Value::Int(_), DataType::Int)
        | (Value::Float(_), DataType::Float)
        | (Value::Bool(_), DataType::Bool)
        | (Value::Str(_), DataType::Str) => Some(v.clone()),
        (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
        (Value::Float(f), DataType::Int) => Some(Value::Int(*f as i64)),
        (Value::Int(i), DataType::Str) => Some(Value::Str(i.to_string())),
        (Value::Float(f), DataType::Str) => Some(Value::Str(f.to_string())),
        (Value::Bool(b), DataType::Str) => Some(Value::Str(b.to_string())),
        (Value::Str(s), _) => Value::parse_answer(s, ty),
        (Value::Bool(b), DataType::Int) => Some(Value::Int(*b as i64)),
        _ => None,
    };
    out.ok_or_else(|| {
        CrowdError::Exec(format!(
            "cannot cast {} to {}",
            v.sql_literal(),
            ty.sql_name()
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_int_and_float() {
        assert_eq!(
            eval_binary(&Value::Int(7), BinaryOp::Add, &Value::Int(5)).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            eval_binary(&Value::Int(7), BinaryOp::Div, &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_binary(&Value::Float(1.5), BinaryOp::Mul, &Value::Int(2)).unwrap(),
            Value::Float(3.0)
        );
        assert!(eval_binary(&Value::Int(1), BinaryOp::Div, &Value::Int(0)).is_err());
        assert!(eval_binary(&Value::Int(i64::MAX), BinaryOp::Add, &Value::Int(1)).is_err());
    }

    #[test]
    fn arithmetic_with_missing_yields_null() {
        assert_eq!(
            eval_binary(&Value::Null, BinaryOp::Add, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_binary(&Value::Int(1), BinaryOp::Mul, &Value::CNull).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn comparisons_three_valued() {
        assert_eq!(
            eval_binary(&Value::Int(1), BinaryOp::Lt, &Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binary(&Value::Null, BinaryOp::Eq, &Value::Null).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_binary(&Value::str("a"), BinaryOp::GtEq, &Value::str("a")).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn and_or_kleene() {
        assert_eq!(
            eval_binary(&Value::Bool(false), BinaryOp::And, &Value::Null).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_binary(&Value::Bool(true), BinaryOp::Or, &Value::Null).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binary(&Value::Bool(true), BinaryOp::And, &Value::Null).unwrap(),
            Value::Null
        );
        assert!(eval_binary(&Value::Int(1), BinaryOp::And, &Value::Bool(true)).is_err());
    }

    #[test]
    fn concat_operator() {
        assert_eq!(
            eval_binary(&Value::str("a"), BinaryOp::Concat, &Value::Int(1)).unwrap(),
            Value::str("a1")
        );
        assert_eq!(
            eval_binary(&Value::str("a"), BinaryOp::Concat, &Value::Null).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("CrowdDB", "Crowd%"));
        assert!(like_match("CrowdDB", "%DB"));
        assert!(like_match("CrowdDB", "C%B"));
        assert!(like_match("CrowdDB", "Cr_wdDB"));
        assert!(!like_match("CrowdDB", "crowd%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b")); // literal middle matched by %
        assert!(like_match("anything", "%%"));
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(
            eval_scalar_fn(ScalarFn::Lower, &[Value::str("AbC")]).unwrap(),
            Value::str("abc")
        );
        assert_eq!(
            eval_scalar_fn(ScalarFn::Length, &[Value::str("héllo")]).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_scalar_fn(ScalarFn::Abs, &[Value::Int(-4)]).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            eval_scalar_fn(ScalarFn::Round, &[Value::Float(2.6)]).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            eval_scalar_fn(ScalarFn::Trim, &[Value::str("  x ")]).unwrap(),
            Value::str("x")
        );
        assert_eq!(
            eval_scalar_fn(
                ScalarFn::Coalesce,
                &[Value::Null, Value::CNull, Value::Int(3)]
            )
            .unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_scalar_fn(ScalarFn::Coalesce, &[Value::Null]).unwrap(),
            Value::Null
        );
        assert_eq!(
            eval_scalar_fn(
                ScalarFn::Substr,
                &[Value::str("CrowdDB"), Value::Int(6), Value::Int(2)]
            )
            .unwrap(),
            Value::str("DB")
        );
        assert_eq!(
            eval_scalar_fn(ScalarFn::Substr, &[Value::str("abc"), Value::Int(99)]).unwrap(),
            Value::str("")
        );
        assert_eq!(
            eval_scalar_fn(ScalarFn::Lower, &[Value::Null]).unwrap(),
            Value::Null
        );
        assert!(eval_scalar_fn(ScalarFn::Lower, &[Value::Int(1)]).is_err());
    }

    #[test]
    fn casts() {
        assert_eq!(
            eval_cast(&Value::str("42"), DataType::Int).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            eval_cast(&Value::Float(2.9), DataType::Int).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_cast(&Value::Int(1), DataType::Str).unwrap(),
            Value::str("1")
        );
        assert_eq!(
            eval_cast(&Value::Bool(true), DataType::Int).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            eval_cast(&Value::CNull, DataType::Int).unwrap(),
            Value::CNull
        );
        assert!(eval_cast(&Value::str("xyz"), DataType::Int).is_err());
    }
}
