//! The plan executor and the crowd operators.
//!
//! Vector-at-a-time materializing execution: each node produces its full
//! output. This keeps the round-based crowd semantics simple (a round is
//! one full materialization) and is plenty fast at the scale CrowdDB
//! operates — the bottleneck is always the human round-trips, as the
//! paper observes.

use std::cmp::Ordering;
use std::collections::{HashMap, HashSet};

use crowddb_common::{CrowdError, Result, Row, TableSchema, Truth, Value};
use crowddb_plan::{AggCall, AggFn, BExpr, JoinType, LogicalPlan, SortKey};
use crowddb_sql::{BinaryOp, UnaryOp};
use crowddb_storage::Database;

use crate::context::{CompareCaches, RunContext, RunStats};
use crate::eval::{
    compare_truth, eval_binary, eval_cast, eval_scalar_fn, like_match, truth_to_value, value_truth,
};
use crate::need::TaskNeed;

/// Outcome of one execution round.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Rows derivable with current knowledge.
    pub rows: Vec<Row>,
    /// Crowd work that would refine the answer. Empty ⇒ final.
    pub needs: Vec<TaskNeed>,
    /// Counters.
    pub stats: RunStats,
}

impl ExecResult {
    /// Whether the result is final (no crowd work pending).
    pub fn is_final(&self) -> bool {
        self.needs.is_empty()
    }
}

/// Execute `plan` against `db` for one round.
pub fn execute(db: &Database, caches: &CompareCaches, plan: &LogicalPlan) -> Result<ExecResult> {
    let mut ex = Executor::new(db, caches);
    let rows = ex.run(plan)?;
    let (needs, stats) = ex.finish();
    Ok(ExecResult { rows, needs, stats })
}

/// One-round plan executor.
pub struct Executor<'a> {
    db: &'a Database,
    ctx: RunContext<'a>,
    schema_cache: HashMap<String, TableSchema>,
}

impl<'a> Executor<'a> {
    /// Create an executor sharing the session's comparison caches.
    pub fn new(db: &'a Database, caches: &'a CompareCaches) -> Executor<'a> {
        Executor {
            db,
            ctx: RunContext::new(caches),
            schema_cache: HashMap::new(),
        }
    }

    /// Finish the round, yielding collected needs and counters.
    pub fn finish(self) -> (Vec<TaskNeed>, RunStats) {
        let stats = self.ctx.stats;
        (self.ctx.into_needs(), stats)
    }

    fn table_schema(&mut self, table: &str) -> Result<TableSchema> {
        if let Some(s) = self.schema_cache.get(table) {
            return Ok(s.clone());
        }
        let s = self.db.schema(table)?;
        self.schema_cache.insert(table.to_string(), s.clone());
        Ok(s)
    }

    /// Execute a plan node, materializing its output.
    pub fn run(&mut self, plan: &LogicalPlan) -> Result<Vec<Row>> {
        match plan {
            LogicalPlan::Scan {
                table,
                needed_columns,
                crowd_table,
                expected_tuples,
                ..
            } => self.run_scan(table, needed_columns, *crowd_table, *expected_tuples, None),
            LogicalPlan::Filter { input, predicate } => {
                // Filter-over-scan fusion: evaluate the predicate *before*
                // generating probe needs, so rows a machine predicate
                // decidedly rejects never cost a crowd task. This is why
                // predicate push-down "minimizes the requests against the
                // crowd" (paper §3.2.2) — the filter must sit on the scan
                // for the saving to materialize.
                if let LogicalPlan::Scan {
                    table,
                    needed_columns,
                    crowd_table,
                    expected_tuples,
                    ..
                } = input.as_ref()
                {
                    return self.run_scan(
                        table,
                        needed_columns,
                        *crowd_table,
                        *expected_tuples,
                        Some(predicate),
                    );
                }
                let rows = self.run(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if self.eval_truth(predicate, &row)?.passes_filter() {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let rows = self.run(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let mut values = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        values.push(self.eval(e, &row)?);
                    }
                    out.push(Row::new(values));
                }
                Ok(out)
            }
            LogicalPlan::Join {
                left,
                right,
                kind,
                on,
            } => self.run_join(left, right, *kind, on.as_ref()),
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
                ..
            } => self.run_aggregate(input, group_by, aggs),
            LogicalPlan::Sort { input, keys } => {
                let rows = self.run(input)?;
                self.run_sort(rows, keys)
            }
            LogicalPlan::Limit {
                input,
                limit,
                offset,
            } => {
                let rows = self.run(input)?;
                let start = (*offset as usize).min(rows.len());
                let end = match limit {
                    Some(l) => (start + *l as usize).min(rows.len()),
                    None => rows.len(),
                };
                Ok(rows[start..end].to_vec())
            }
            LogicalPlan::Distinct { input } => {
                let rows = self.run(input)?;
                let mut seen = HashSet::new();
                Ok(rows
                    .into_iter()
                    .filter(|r| seen.insert(r.clone()))
                    .collect())
            }
            LogicalPlan::Union { left, right, all } => {
                let mut rows = self.run(left)?;
                rows.extend(self.run(right)?);
                if !*all {
                    let mut seen = HashSet::new();
                    rows.retain(|r| seen.insert(r.clone()));
                }
                Ok(rows)
            }
            LogicalPlan::Values { rows, .. } => {
                let empty = Row::default();
                let mut out = Vec::with_capacity(rows.len());
                for row_exprs in rows {
                    let mut values = Vec::with_capacity(row_exprs.len());
                    for e in row_exprs {
                        values.push(self.eval(e, &empty)?);
                    }
                    out.push(Row::new(values));
                }
                Ok(out)
            }
        }
    }

    // ------------------------------------------------------------------
    // Scan + CrowdProbe
    // ------------------------------------------------------------------

    fn run_scan(
        &mut self,
        table: &str,
        needed_columns: &[usize],
        crowd_table: bool,
        expected_tuples: Option<u64>,
        predicate: Option<&BExpr>,
    ) -> Result<Vec<Row>> {
        let schema = self.table_schema(table)?;
        // Point-lookup fast path: a predicate that pins the whole primary
        // key with literal equalities reads via the PK index instead of
        // scanning. (Scan output ordinals equal base ordinals, so the
        // predicate's column ids map directly onto the key.)
        let pk_values = predicate.and_then(|p| pk_pin_values(p, &schema.primary_key));
        let (rows, total_live) = match &pk_values {
            Some(key) => {
                let rows = self.db.with_table(table, |t| {
                    t.lookup_pk(key)
                        .into_iter()
                        .filter_map(|tid| t.get(tid).map(|r| (tid, r.clone())))
                        .collect::<Vec<_>>()
                })?;
                let total = self.db.stats(table)?.live_rows as u64;
                self.ctx.stats.index_lookups += 1;
                (rows, total)
            }
            None => {
                let rows = self.db.with_table(table, |t| t.scan_rows())?;
                let total = rows.len() as u64;
                (rows, total)
            }
        };
        self.ctx.stats.rows_scanned += rows.len() as u64;

        let mut out = Vec::with_capacity(rows.len());
        for (tid, row) in rows {
            // Fused filter: a decidedly-False predicate drops the row
            // before any crowd work is generated for it; Unknown keeps
            // probing (the missing value may decide the predicate).
            let truth = match predicate {
                Some(p) => self.eval_truth(p, &row)?,
                None => Truth::True,
            };
            if truth == Truth::False {
                continue;
            }
            // CrowdProbe, missing-value flavor: any needed column that is
            // CNULL (and crowdsourceable) becomes a probe need.
            let mut missing: Vec<(usize, String, crowddb_common::DataType)> = Vec::new();
            for &c in needed_columns {
                if row.get(c).map(Value::is_cnull).unwrap_or(false) {
                    let col = &schema.columns[c];
                    if col.crowd || schema.crowd_table {
                        self.ctx.stats.cnulls_seen += 1;
                        missing.push((c, col.name.clone(), col.data_type));
                    }
                }
            }
            if !missing.is_empty() {
                let context: Vec<(String, String)> = schema
                    .columns
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| {
                        schema.primary_key.contains(i)
                            || (needed_columns.contains(i)
                                && !row.get(*i).map(Value::is_missing).unwrap_or(true))
                    })
                    .map(|(i, c)| (c.name.clone(), row[i].to_string()))
                    .collect();
                self.ctx.push_need(TaskNeed::ProbeValues {
                    table: table.to_string(),
                    tid,
                    context,
                    columns: missing,
                });
            }
            // Unknown rows are probed above but excluded from this
            // round's output (SQL WHERE semantics); they qualify on
            // re-execution once the crowd fills the value in.
            if truth.passes_filter() {
                out.push(row);
            }
        }

        // CrowdProbe, new-tuple flavor: a bounded CROWD-table scan short
        // of its quota asks the crowd for more tuples.
        if crowd_table {
            if let Some(expected) = expected_tuples {
                // The quota counts stored tuples, not filter survivors:
                // the bound caps how much of the open world is enumerated.
                let have = total_live;
                if have < expected {
                    self.ctx.push_need(TaskNeed::NewTuples {
                        table: table.to_string(),
                        preset: vec![],
                        want: expected - have,
                    });
                }
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Joins + CrowdJoin
    // ------------------------------------------------------------------

    fn run_join(
        &mut self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        kind: JoinType,
        on: Option<&BExpr>,
    ) -> Result<Vec<Row>> {
        let left_rows = self.run(left)?;
        let right_rows = self.run(right)?;
        let left_arity = left.schema().arity();
        let right_arity = right.schema().arity();

        // Split the join condition into hashable equi-conjuncts and a
        // residual predicate.
        let mut equi: Vec<(BExpr, BExpr)> = Vec::new(); // (left expr, right expr on right row)
        let mut residual: Vec<BExpr> = Vec::new();
        if let Some(on) = on {
            let mut conjuncts = Vec::new();
            crowddb_plan::optimizer::split_conjuncts(on.clone(), &mut conjuncts);
            for c in conjuncts {
                if let BExpr::Binary {
                    left: cl,
                    op: BinaryOp::Eq,
                    right: cr,
                } = &c
                {
                    let l_refs = cl.column_refs();
                    let r_refs = cr.column_refs();
                    let l_is_left = l_refs.iter().all(|&i| i < left_arity);
                    let l_is_right = l_refs.iter().all(|&i| i >= left_arity);
                    let r_is_left = r_refs.iter().all(|&i| i < left_arity);
                    let r_is_right = r_refs.iter().all(|&i| i >= left_arity);
                    if l_is_left && r_is_right && !r_refs.is_empty() {
                        equi.push(((**cl).clone(), cr.remap_columns(&|i| i - left_arity)));
                        continue;
                    }
                    if l_is_right && r_is_left && !l_refs.is_empty() {
                        equi.push(((**cr).clone(), cl.remap_columns(&|i| i - left_arity)));
                        continue;
                    }
                }
                residual.push(c);
            }
        }

        // Identify the CrowdJoin pattern: inner side is a CROWD-table
        // scan (possibly filtered) and there's a single-column equi key
        // into it.
        let crowd_inner = crowd_scan_of(right);

        let mut out = Vec::new();
        if !equi.is_empty() {
            // Hash join: build on the right side.
            let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (idx, r) in right_rows.iter().enumerate() {
                let mut key = Vec::with_capacity(equi.len());
                let mut missing = false;
                for (_, re) in &equi {
                    let v = self.eval(re, r)?;
                    if v.is_missing() {
                        missing = true;
                        break;
                    }
                    key.push(v);
                }
                if !missing {
                    table.entry(key).or_default().push(idx);
                }
            }
            for l in &left_rows {
                let mut key = Vec::with_capacity(equi.len());
                let mut missing = false;
                for (le, _) in &equi {
                    let v = self.eval(le, l)?;
                    if v.is_missing() {
                        missing = true;
                        break;
                    }
                    key.push(v);
                }
                let mut matched = false;
                if !missing {
                    if let Some(idxs) = table.get(&key) {
                        for &ri in idxs {
                            let joined = l.concat(&right_rows[ri]);
                            if self.residual_passes(&residual, &joined)? {
                                out.push(joined);
                                matched = true;
                            }
                        }
                    }
                }
                if !matched {
                    // CrowdJoin: "implements an index nested-loop join
                    // over two tables, at least one of which is marked as
                    // crowdsourced" — a missing inner match becomes a
                    // new-tuple request with the join key preset.
                    if !missing && equi.len() == 1 {
                        if let Some((scan_table, scan_schema)) = &crowd_inner {
                            if let BExpr::Column(rc) = &equi[0].1 {
                                let col_name = scan_schema.columns[*rc].name.clone();
                                self.ctx.push_need(TaskNeed::NewTuples {
                                    table: scan_table.clone(),
                                    preset: vec![(col_name, key[0].clone())],
                                    want: default_join_quota(),
                                });
                            }
                        }
                    }
                    if kind == JoinType::Left {
                        let pad = Row::new(vec![Value::Null; right_arity]);
                        out.push(l.concat(&pad));
                    }
                }
            }
        } else {
            // Nested loop (cross product or arbitrary predicate).
            for l in &left_rows {
                let mut matched = false;
                for r in &right_rows {
                    let joined = l.concat(r);
                    let ok = match on {
                        Some(p) => self.eval_truth(p, &joined)?.passes_filter(),
                        None => true,
                    };
                    if ok {
                        out.push(joined);
                        matched = true;
                    }
                }
                if !matched && kind == JoinType::Left {
                    let pad = Row::new(vec![Value::Null; right_arity]);
                    out.push(l.concat(&pad));
                }
            }
        }
        Ok(out)
    }

    fn residual_passes(&mut self, residual: &[BExpr], row: &Row) -> Result<bool> {
        for p in residual {
            if !self.eval_truth(p, row)?.passes_filter() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Aggregation
    // ------------------------------------------------------------------

    fn run_aggregate(
        &mut self,
        input: &LogicalPlan,
        group_by: &[BExpr],
        aggs: &[AggCall],
    ) -> Result<Vec<Row>> {
        let rows = self.run(input)?;
        // Group rows.
        let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        for (i, row) in rows.iter().enumerate() {
            let mut key = Vec::with_capacity(group_by.len());
            for g in group_by {
                key.push(self.eval(g, row)?);
            }
            match index.get(&key) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![i]));
                }
            }
        }
        // Aggregate without GROUP BY over empty input: one empty group.
        if groups.is_empty() && group_by.is_empty() {
            groups.push((vec![], vec![]));
        }

        let mut out = Vec::with_capacity(groups.len());
        for (key, members) in groups {
            let mut values = key;
            for agg in aggs {
                values.push(self.eval_agg(agg, &members, &rows)?);
            }
            out.push(Row::new(values));
        }
        Ok(out)
    }

    fn eval_agg(&mut self, agg: &AggCall, members: &[usize], rows: &[Row]) -> Result<Value> {
        // COUNT(*) counts rows.
        if agg.func == AggFn::Count && agg.arg.is_none() {
            return Ok(Value::Int(members.len() as i64));
        }
        let arg = agg
            .arg
            .as_ref()
            .ok_or_else(|| CrowdError::Internal("non-COUNT aggregate without arg".into()))?;
        let mut vals: Vec<Value> = Vec::with_capacity(members.len());
        for &i in members {
            let v = self.eval(arg, &rows[i])?;
            if !v.is_missing() {
                vals.push(v);
            }
        }
        if agg.distinct {
            let mut seen = HashSet::new();
            vals.retain(|v| seen.insert(v.clone()));
        }
        Ok(match agg.func {
            AggFn::Count => Value::Int(vals.len() as i64),
            AggFn::Sum => {
                if vals.is_empty() {
                    Value::Null
                } else if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                    let mut acc: i64 = 0;
                    for v in &vals {
                        acc = acc
                            .checked_add(v.as_i64().expect("all ints"))
                            .ok_or_else(|| CrowdError::Exec("integer overflow in SUM".into()))?;
                    }
                    Value::Int(acc)
                } else {
                    let mut acc = 0.0;
                    for v in &vals {
                        acc += v.as_f64().ok_or_else(|| {
                            CrowdError::Type("SUM over non-numeric values".into())
                        })?;
                    }
                    Value::Float(acc)
                }
            }
            AggFn::Avg => {
                if vals.is_empty() {
                    Value::Null
                } else {
                    let mut acc = 0.0;
                    for v in &vals {
                        acc += v.as_f64().ok_or_else(|| {
                            CrowdError::Type("AVG over non-numeric values".into())
                        })?;
                    }
                    Value::Float(acc / vals.len() as f64)
                }
            }
            AggFn::Min => vals
                .into_iter()
                .min_by(|a, b| a.sort_cmp(b))
                .unwrap_or(Value::Null),
            AggFn::Max => vals
                .into_iter()
                .max_by(|a, b| a.sort_cmp(b))
                .unwrap_or(Value::Null),
        })
    }

    // ------------------------------------------------------------------
    // Sorting + CrowdCompare (CROWDORDER)
    // ------------------------------------------------------------------

    fn run_sort(&mut self, rows: Vec<Row>, keys: &[SortKey]) -> Result<Vec<Row>> {
        if rows.len() <= 1 {
            return Ok(rows);
        }
        // Materialize sort keys per row.
        let mut keyed: Vec<(Vec<KeyVal>, Row)> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut ks = Vec::with_capacity(keys.len());
            for key in keys {
                match &key.expr {
                    BExpr::CrowdOrder { expr, instruction } => {
                        let v = self.eval(expr, &row)?;
                        ks.push(KeyVal::Crowd {
                            rendered: v.to_string(),
                            instruction: instruction.clone(),
                        });
                    }
                    machine => ks.push(KeyVal::Machine(self.eval(machine, &row)?)),
                }
            }
            keyed.push((ks, row));
        }

        let has_crowd = keys
            .iter()
            .any(|k| matches!(k.expr, BExpr::CrowdOrder { .. }));

        if !has_crowd {
            // Stable machine sort.
            keyed.sort_by(|(a, _), (b, _)| {
                for (i, key) in keys.iter().enumerate() {
                    let (KeyVal::Machine(va), KeyVal::Machine(vb)) = (&a[i], &b[i]) else {
                        unreachable!("machine sort");
                    };
                    let ord = va.sort_cmp(vb);
                    let ord = if key.desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            return Ok(keyed.into_iter().map(|(_, r)| r).collect());
        }

        // Crowd sort: the paper's CrowdCompare-inside-quicksort. The
        // comparator consults the session order cache; missing pairs are
        // recorded as needs and compared by rendered text for this round
        // (the fallback keeps the round deterministic; once the crowd
        // answers arrive the cache decides).
        let mut order: Vec<usize> = (0..keyed.len()).collect();
        let descs: Vec<bool> = keys.iter().map(|k| k.desc).collect();
        self.quicksort(&mut order, &keyed, &descs, 0);
        Ok(order.into_iter().map(|i| keyed[i].1.clone()).collect())

        // -- helpers ----------------------------------------------------
    }

    fn quicksort<KS>(
        &mut self,
        idxs: &mut [usize],
        keyed: &[(Vec<KS>, Row)],
        descs: &[bool],
        depth: usize,
    ) where
        KS: SortKeyVal,
    {
        if idxs.len() <= 1 || depth > 64 {
            return;
        }
        // Deterministic pivot: first index.
        let pivot = idxs[0];
        let rest = &idxs[1..];
        let mut less = Vec::new();
        let mut greater = Vec::new();
        for &i in rest {
            match self.compare_keyed(&keyed[i].0, &keyed[pivot].0, descs) {
                Ordering::Less => less.push(i),
                _ => greater.push(i),
            }
        }
        self.quicksort(&mut less, keyed, descs, depth + 1);
        self.quicksort(&mut greater, keyed, descs, depth + 1);
        let mut merged = Vec::with_capacity(idxs.len());
        merged.extend_from_slice(&less);
        merged.push(pivot);
        merged.extend_from_slice(&greater);
        idxs.copy_from_slice(&merged);
    }

    fn compare_keyed<KS>(&mut self, a: &[KS], b: &[KS], descs: &[bool]) -> Ordering
    where
        KS: SortKeyVal,
    {
        for (i, (ka, kb)) in a.iter().zip(b.iter()).enumerate() {
            let ord = ka.compare(kb, self);
            let ord = if descs.get(i).copied().unwrap_or(false) {
                ord.reverse()
            } else {
                ord
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    }

    /// Crowd comparison used by the sort: preferred items sort first.
    fn crowd_compare(&mut self, left: &str, right: &str, instruction: &str) -> Ordering {
        if left == right {
            return Ordering::Equal;
        }
        match self.ctx.caches.get_prefer(left, right, instruction) {
            Some(true) => {
                self.ctx.stats.compare_cache_hits += 1;
                Ordering::Less
            }
            Some(false) => {
                self.ctx.stats.compare_cache_hits += 1;
                Ordering::Greater
            }
            None => {
                self.ctx.stats.compare_cache_misses += 1;
                self.ctx.push_need(TaskNeed::Order {
                    left: left.to_string(),
                    right: right.to_string(),
                    instruction: instruction.to_string(),
                });
                // Deterministic fallback for this round.
                left.cmp(right)
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions (incl. CrowdCompare equality + subqueries)
    // ------------------------------------------------------------------

    /// Evaluate an expression to a value.
    pub fn eval(&mut self, e: &BExpr, row: &Row) -> Result<Value> {
        match e {
            BExpr::Literal(v) => Ok(v.clone()),
            BExpr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| CrowdError::Internal(format!("column #{i} out of range"))),
            BExpr::Unary { op, expr } => {
                let v = self.eval(expr, row)?;
                match op {
                    UnaryOp::Not => Ok(truth_to_value(value_truth(&v)?.not())),
                    UnaryOp::Neg => match v {
                        Value::Int(i) => i
                            .checked_neg()
                            .map(Value::Int)
                            .ok_or_else(|| CrowdError::Exec("integer overflow in -".into())),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        Value::Null | Value::CNull => Ok(Value::Null),
                        other => Err(CrowdError::Type(format!(
                            "cannot negate {}",
                            other.sql_literal()
                        ))),
                    },
                    UnaryOp::Pos => Ok(v),
                }
            }
            BExpr::Binary { left, op, right } => {
                // Short-circuit AND/OR — crucial for crowd predicates: a
                // FALSE machine conjunct suppresses the crowd call.
                match op {
                    BinaryOp::And => {
                        let l = value_truth(&self.eval(left, row)?)?;
                        if l == Truth::False {
                            return Ok(Value::Bool(false));
                        }
                        let r = value_truth(&self.eval(right, row)?)?;
                        return Ok(truth_to_value(l.and(r)));
                    }
                    BinaryOp::Or => {
                        let l = value_truth(&self.eval(left, row)?)?;
                        if l == Truth::True {
                            return Ok(Value::Bool(true));
                        }
                        let r = value_truth(&self.eval(right, row)?)?;
                        return Ok(truth_to_value(l.or(r)));
                    }
                    _ => {}
                }
                let l = self.eval(left, row)?;
                let r = self.eval(right, row)?;
                eval_binary(&l, *op, &r)
            }
            BExpr::Is {
                expr,
                negated,
                cnull,
            } => {
                let v = self.eval(expr, row)?;
                let hit = if *cnull {
                    v.is_cnull()
                } else {
                    matches!(v, Value::Null)
                };
                Ok(Value::Bool(hit != *negated))
            }
            BExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = self.eval(expr, row)?;
                let p = self.eval(pattern, row)?;
                if v.is_missing() || p.is_missing() {
                    return Ok(Value::Null);
                }
                let (Some(s), Some(pat)) = (v.as_str(), p.as_str()) else {
                    return Err(CrowdError::Type("LIKE expects strings".into()));
                };
                Ok(Value::Bool(like_match(s, pat) != *negated))
            }
            BExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = self.eval(expr, row)?;
                let lo = self.eval(low, row)?;
                let hi = self.eval(high, row)?;
                let t = compare_truth(&v, BinaryOp::GtEq, &lo).and(compare_truth(
                    &v,
                    BinaryOp::LtEq,
                    &hi,
                ));
                Ok(truth_to_value(if *negated { t.not() } else { t }))
            }
            BExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval(expr, row)?;
                let mut any_unknown = v.is_missing();
                let mut found = false;
                for cand in list {
                    let c = self.eval(cand, row)?;
                    match compare_truth(&v, BinaryOp::Eq, &c) {
                        Truth::True => {
                            found = true;
                            break;
                        }
                        Truth::Unknown => any_unknown = true,
                        Truth::False => {}
                    }
                }
                let t = if found {
                    Truth::True
                } else if any_unknown {
                    Truth::Unknown
                } else {
                    Truth::False
                };
                Ok(truth_to_value(if *negated { t.not() } else { t }))
            }
            BExpr::InPlan {
                expr,
                plan,
                negated,
            } => {
                let v = self.eval(expr, row)?;
                let rows = self.run_subplan(plan)?;
                let mut any_unknown = v.is_missing();
                let mut found = false;
                for r in &rows {
                    match compare_truth(&v, BinaryOp::Eq, &r[0]) {
                        Truth::True => {
                            found = true;
                            break;
                        }
                        Truth::Unknown => any_unknown = true,
                        Truth::False => {}
                    }
                }
                let t = if found {
                    Truth::True
                } else if any_unknown {
                    Truth::Unknown
                } else {
                    Truth::False
                };
                Ok(truth_to_value(if *negated { t.not() } else { t }))
            }
            BExpr::ExistsPlan { plan, negated } => {
                let rows = self.run_subplan(plan)?;
                Ok(Value::Bool(rows.is_empty() == *negated))
            }
            BExpr::ScalarPlan(plan) => {
                let rows = self.run_subplan(plan)?;
                match rows.len() {
                    0 => Ok(Value::Null),
                    1 => Ok(rows[0][0].clone()),
                    n => Err(CrowdError::Exec(format!(
                        "scalar subquery returned {n} rows"
                    ))),
                }
            }
            BExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let op_val = match operand {
                    Some(o) => Some(self.eval(o, row)?),
                    None => None,
                };
                for (when, then) in branches {
                    let hit = match &op_val {
                        Some(v) => {
                            let w = self.eval(when, row)?;
                            compare_truth(v, BinaryOp::Eq, &w) == Truth::True
                        }
                        None => {
                            let w = self.eval(when, row)?;
                            value_truth(&w)? == Truth::True
                        }
                    };
                    if hit {
                        return self.eval(then, row);
                    }
                }
                match else_expr {
                    Some(e) => self.eval(e, row),
                    None => Ok(Value::Null),
                }
            }
            BExpr::Cast { expr, data_type } => {
                let v = self.eval(expr, row)?;
                eval_cast(&v, *data_type)
            }
            BExpr::Scalar { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, row)?);
                }
                eval_scalar_fn(*func, &vals)
            }
            BExpr::CrowdEqual { left, right } => {
                let l = self.eval(left, row)?;
                let r = self.eval(right, row)?;
                if l.is_missing() || r.is_missing() {
                    return Ok(Value::Null);
                }
                // Fast path: machine-equal values need no crowd.
                if compare_truth(&l, BinaryOp::Eq, &r) == Truth::True {
                    return Ok(Value::Bool(true));
                }
                let ls = l.to_string();
                let rs = r.to_string();
                let instruction = "Do these two values refer to the same entity?";
                match self.ctx.caches.get_equal(&ls, &rs, instruction) {
                    Some(verdict) => {
                        self.ctx.stats.compare_cache_hits += 1;
                        Ok(Value::Bool(verdict))
                    }
                    None => {
                        self.ctx.stats.compare_cache_misses += 1;
                        self.ctx.push_need(TaskNeed::Equal {
                            left: ls,
                            right: rs,
                            instruction: instruction.to_string(),
                        });
                        // Unknown until the crowd answers.
                        Ok(Value::Null)
                    }
                }
            }
            BExpr::CrowdOrder { .. } => Err(CrowdError::Internal(
                "CROWDORDER evaluated outside a sort".into(),
            )),
        }
    }

    /// Evaluate a predicate to a truth value.
    pub fn eval_truth(&mut self, e: &BExpr, row: &Row) -> Result<Truth> {
        let v = self.eval(e, row)?;
        value_truth(&v)
    }

    fn run_subplan(&mut self, plan: &LogicalPlan) -> Result<Vec<Row>> {
        let key = plan.explain();
        if let Some(rows) = self.ctx.subquery_results.get(&key) {
            return Ok(rows.clone());
        }
        let rows = self.run(plan)?;
        self.ctx.subquery_results.insert(key, rows.clone());
        Ok(rows)
    }
}

/// Per-outer-row quota of crowdsourced join matches (the paper's
/// CrowdJoin asks for a handful of matching tuples per outer tuple).
fn default_join_quota() -> u64 {
    3
}

/// If `predicate` pins every primary-key column (by base ordinal) with an
/// equality against a literal, return the key values in PK order.
fn pk_pin_values(predicate: &BExpr, pk: &[usize]) -> Option<Vec<Value>> {
    if pk.is_empty() {
        return None;
    }
    let mut conjuncts = Vec::new();
    crowddb_plan::optimizer::split_conjuncts(predicate.clone(), &mut conjuncts);
    let mut values: Vec<Option<Value>> = vec![None; pk.len()];
    for c in &conjuncts {
        if let BExpr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        {
            let (col, lit) = match (left.as_ref(), right.as_ref()) {
                (BExpr::Column(i), BExpr::Literal(v)) => (*i, v.clone()),
                (BExpr::Literal(v), BExpr::Column(i)) => (*i, v.clone()),
                _ => continue,
            };
            if lit.is_missing() {
                continue;
            }
            if let Some(pos) = pk.iter().position(|&p| p == col) {
                values[pos] = Some(lit);
            }
        }
    }
    values.into_iter().collect()
}

/// If `plan` is a CROWD-table scan (possibly under filters/projections
/// that keep base columns in place), return its table name and schema.
fn crowd_scan_of(plan: &LogicalPlan) -> Option<(String, crowddb_plan::PlanSchema)> {
    match plan {
        LogicalPlan::Scan {
            table,
            crowd_table: true,
            schema,
            ..
        } => Some((table.clone(), schema.clone())),
        LogicalPlan::Filter { input, .. } => crowd_scan_of(input),
        _ => None,
    }
}

/// Sort key value abstraction so machine and crowd keys share the
/// quicksort above.
trait SortKeyVal {
    fn compare(&self, other: &Self, ex: &mut Executor<'_>) -> Ordering;
}

enum KeyVal {
    Machine(Value),
    Crowd {
        rendered: String,
        instruction: String,
    },
}

impl SortKeyVal for KeyVal {
    fn compare(&self, other: &Self, ex: &mut Executor<'_>) -> Ordering {
        match (self, other) {
            (KeyVal::Machine(a), KeyVal::Machine(b)) => a.sort_cmp(b),
            (
                KeyVal::Crowd {
                    rendered: a,
                    instruction,
                },
                KeyVal::Crowd { rendered: b, .. },
            ) => ex.crowd_compare(a, b, instruction),
            _ => Ordering::Equal, // keys are homogeneous per position
        }
    }
}
