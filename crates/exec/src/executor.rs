//! The execution driver: lowers an optimized [`LogicalPlan`] to a
//! [`PhysicalPlan`] and runs it through the operator tree in
//! [`crate::ops`].
//!
//! Execution is vector-at-a-time and materializing: each operator
//! produces its full output per round. This keeps the round-based crowd
//! semantics simple (a round is one full materialization) and is plenty
//! fast at the scale CrowdDB operates — the bottleneck is always the
//! human round-trips, as the paper observes.

use crowddb_common::{CancelReason, CrowdError, Result, Row};
use crowddb_plan::cardinality::FnStats;
use crowddb_plan::{LogicalPlan, PhysicalPlan};
use crowddb_storage::Database;

use crate::context::{CompareCaches, ExecCtx, ExecGuard, RunStats};
use crate::need::TaskNeed;
use crate::ops::{self, OpStatsNode};

/// Outcome of one execution round.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Rows derivable with current knowledge.
    pub rows: Vec<Row>,
    /// Crowd work that would refine the answer. Empty ⇒ final.
    pub needs: Vec<TaskNeed>,
    /// Counters.
    pub stats: RunStats,
}

impl ExecResult {
    /// Whether the result is final (no crowd work pending).
    pub fn is_final(&self) -> bool {
        self.needs.is_empty()
    }
}

/// Execute `plan` against `db` for one round (lowering internally).
pub fn execute(db: &Database, caches: &CompareCaches, plan: &LogicalPlan) -> Result<ExecResult> {
    let physical = lower_plan(db, plan);
    let (result, _stats) = execute_physical(db, caches, &physical)?;
    Ok(result)
}

/// Lower a logical plan against the live catalog: cardinality estimates
/// come from current table stats, boundedness from primary-key metadata,
/// and access-path choice from the tables' secondary indexes.
pub fn lower_plan(db: &Database, plan: &LogicalPlan) -> PhysicalPlan {
    let stats = FnStats(|table: &str| db.stats(table).ok().map(|s| s.live_rows as u64));
    let pk = |table: &str| {
        db.schema(table)
            .map(|s| s.primary_key.clone())
            .unwrap_or_default()
    };
    let indexes = |table: &str| {
        db.with_table(table, |t| {
            t.indexes()
                .iter()
                .map(|i| crowddb_plan::IndexMeta {
                    name: i.name.clone(),
                    columns: i.columns.clone(),
                    ordered: i.ordered(),
                })
                .collect()
        })
        .unwrap_or_default()
    };
    crowddb_plan::physical::lower(plan, &stats, &pk, &indexes)
}

/// Execute an already-lowered physical plan for one round, returning the
/// result alongside the per-operator stats tree (for `EXPLAIN ANALYZE`
/// and the bench harness).
pub fn execute_physical(
    db: &Database,
    caches: &CompareCaches,
    physical: &PhysicalPlan,
) -> Result<(ExecResult, OpStatsNode)> {
    execute_physical_guarded(db, caches, physical, ExecGuard::unlimited())
}

/// Execute an already-lowered physical plan for one round under a
/// cooperative-cancellation [`ExecGuard`]. The guard's output-row cap is
/// enforced here, at the plan root, so a statement whose final result
/// exceeds the cap terminates with a typed error rather than silently
/// truncating.
pub fn execute_physical_guarded(
    db: &Database,
    caches: &CompareCaches,
    physical: &PhysicalPlan,
    guard: ExecGuard,
) -> Result<(ExecResult, OpStatsNode)> {
    let mut ctx = ExecCtx::with_guard(db, caches, guard);
    let op = ops::build(physical);
    let mut stats_tree = OpStatsNode::skeleton(physical);
    let rows = ops::run_op(op.as_ref(), &mut ctx, &mut stats_tree)?;
    if let Some(cap) = ctx.rt.max_output_rows() {
        if rows.len() as u64 > cap {
            return Err(CrowdError::Cancelled(CancelReason::OutputRowLimit));
        }
    }
    let (needs, stats) = ctx.finish();
    Ok((ExecResult { rows, needs, stats }, stats_tree))
}
