//! Token model for the CrowdSQL lexer.

use std::fmt;

/// SQL keywords recognized by CrowdDB, including the CrowdSQL extensions
/// (`CROWD`, `CNULL`, `CROWDEQUAL`, `CROWDORDER`, `REF`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // each variant is the keyword it names
pub enum Keyword {
    All,
    And,
    As,
    Asc,
    Between,
    Boolean,
    By,
    Case,
    Cast,
    Cnull,
    Create,
    Cross,
    Crowd,
    Crowdequal,
    Crowdorder,
    Delete,
    Desc,
    Distinct,
    Double,
    Drop,
    Else,
    End,
    Exists,
    Explain,
    False,
    Float,
    Foreign,
    From,
    Group,
    Having,
    If,
    In,
    Index,
    Inner,
    Insert,
    Int,
    Integer,
    Into,
    Is,
    Join,
    Key,
    Left,
    Like,
    Limit,
    Not,
    Null,
    Offset,
    On,
    Or,
    Order,
    Outer,
    Primary,
    Ref,
    References,
    Select,
    Set,
    String,
    Table,
    Text,
    Then,
    True,
    Union,
    Unique,
    Update,
    Values,
    Varchar,
    When,
    Where,
}

impl Keyword {
    /// Look up a keyword from an identifier, case-insensitively.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not parsing
    pub fn from_str(s: &str) -> Option<Keyword> {
        let up = s.to_ascii_uppercase();
        Some(match up.as_str() {
            "ALL" => Keyword::All,
            "AND" => Keyword::And,
            "AS" => Keyword::As,
            "ASC" => Keyword::Asc,
            "BETWEEN" => Keyword::Between,
            "BOOLEAN" | "BOOL" => Keyword::Boolean,
            "BY" => Keyword::By,
            "CASE" => Keyword::Case,
            "CAST" => Keyword::Cast,
            "CNULL" => Keyword::Cnull,
            "CREATE" => Keyword::Create,
            "CROSS" => Keyword::Cross,
            "CROWD" => Keyword::Crowd,
            "CROWDEQUAL" => Keyword::Crowdequal,
            "CROWDORDER" => Keyword::Crowdorder,
            "DELETE" => Keyword::Delete,
            "DESC" => Keyword::Desc,
            "DISTINCT" => Keyword::Distinct,
            "DOUBLE" => Keyword::Double,
            "DROP" => Keyword::Drop,
            "ELSE" => Keyword::Else,
            "END" => Keyword::End,
            "EXISTS" => Keyword::Exists,
            "EXPLAIN" => Keyword::Explain,
            "FALSE" => Keyword::False,
            "FLOAT" => Keyword::Float,
            "FOREIGN" => Keyword::Foreign,
            "FROM" => Keyword::From,
            "GROUP" => Keyword::Group,
            "HAVING" => Keyword::Having,
            "IF" => Keyword::If,
            "IN" => Keyword::In,
            "INDEX" => Keyword::Index,
            "INNER" => Keyword::Inner,
            "INSERT" => Keyword::Insert,
            "INT" => Keyword::Int,
            "INTEGER" => Keyword::Integer,
            "INTO" => Keyword::Into,
            "IS" => Keyword::Is,
            "JOIN" => Keyword::Join,
            "KEY" => Keyword::Key,
            "LEFT" => Keyword::Left,
            "LIKE" => Keyword::Like,
            "LIMIT" => Keyword::Limit,
            "NOT" => Keyword::Not,
            "NULL" => Keyword::Null,
            "OFFSET" => Keyword::Offset,
            "ON" => Keyword::On,
            "OR" => Keyword::Or,
            "ORDER" => Keyword::Order,
            "OUTER" => Keyword::Outer,
            "PRIMARY" => Keyword::Primary,
            "REF" => Keyword::Ref,
            "REFERENCES" => Keyword::References,
            "SELECT" => Keyword::Select,
            "SET" => Keyword::Set,
            "STRING" => Keyword::String,
            "TABLE" => Keyword::Table,
            "TEXT" => Keyword::Text,
            "THEN" => Keyword::Then,
            "TRUE" => Keyword::True,
            "UNION" => Keyword::Union,
            "UNIQUE" => Keyword::Unique,
            "UPDATE" => Keyword::Update,
            "VALUES" => Keyword::Values,
            "VARCHAR" => Keyword::Varchar,
            "WHEN" => Keyword::When,
            "WHERE" => Keyword::Where,
            _ => return None,
        })
    }
}

/// The kind of a lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A recognized SQL keyword.
    Keyword(Keyword),
    /// An identifier (table/column/function name), lower-cased.
    Ident(String),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// An integer literal.
    IntLit(i64),
    /// A floating-point literal.
    FloatLit(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `~=` — CrowdSQL shorthand for `CROWDEQUAL`.
    CrowdEq,
    /// `||` — string concatenation.
    Concat,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k:?}").map(|_| ()),
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::StringLit(s) => write!(f, "string '{s}'"),
            TokenKind::IntLit(v) => write!(f, "integer {v}"),
            TokenKind::FloatLit(v) => write!(f, "float {v}"),
            TokenKind::LParen => f.write_str("'('"),
            TokenKind::RParen => f.write_str("')'"),
            TokenKind::Comma => f.write_str("','"),
            TokenKind::Semicolon => f.write_str("';'"),
            TokenKind::Dot => f.write_str("'.'"),
            TokenKind::Star => f.write_str("'*'"),
            TokenKind::Plus => f.write_str("'+'"),
            TokenKind::Minus => f.write_str("'-'"),
            TokenKind::Slash => f.write_str("'/'"),
            TokenKind::Percent => f.write_str("'%'"),
            TokenKind::Eq => f.write_str("'='"),
            TokenKind::NotEq => f.write_str("'<>'"),
            TokenKind::Lt => f.write_str("'<'"),
            TokenKind::LtEq => f.write_str("'<='"),
            TokenKind::Gt => f.write_str("'>'"),
            TokenKind::GtEq => f.write_str("'>='"),
            TokenKind::CrowdEq => f.write_str("'~='"),
            TokenKind::Concat => f.write_str("'||'"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Token {
    /// Construct a token at a position.
    pub fn new(kind: TokenKind, line: u32, col: u32) -> Token {
        Token { kind, line, col }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_str("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_str("crowd"), Some(Keyword::Crowd));
        assert_eq!(Keyword::from_str("CNULL"), Some(Keyword::Cnull));
        assert_eq!(Keyword::from_str("nonsense"), None);
    }

    #[test]
    fn type_aliases() {
        assert_eq!(Keyword::from_str("BOOL"), Some(Keyword::Boolean));
        assert_eq!(Keyword::from_str("VARCHAR"), Some(Keyword::Varchar));
        assert_eq!(Keyword::from_str("TEXT"), Some(Keyword::Text));
    }

    #[test]
    fn crowd_extensions_present() {
        for kw in ["CROWDEQUAL", "CROWDORDER", "REF", "CNULL", "CROWD"] {
            assert!(Keyword::from_str(kw).is_some(), "missing {kw}");
        }
    }

    #[test]
    fn token_kind_display() {
        assert_eq!(TokenKind::CrowdEq.to_string(), "'~='");
        assert_eq!(
            TokenKind::Ident("abc".into()).to_string(),
            "identifier 'abc'"
        );
    }
}
