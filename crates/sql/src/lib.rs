//! # crowddb-sql
//!
//! Lexer, parser, and abstract syntax tree for **CrowdSQL** — the small
//! extension of SQL defined by the CrowdDB papers (VLDB 2011 demo /
//! SIGMOD 2011):
//!
//! * `CREATE CROWD TABLE ...` — open-world, crowdsourceable tables;
//! * `column CROWD TYPE` — crowdsourced columns;
//! * the `CNULL` literal — "value pending crowdsourcing";
//! * `CROWDEQUAL(a, b)` (also spelled `a ~= b`) — crowd-judged equality;
//! * `CROWDORDER(expr, 'instruction')` — crowd-judged ordering, usable in
//!   `ORDER BY`;
//! * `FOREIGN KEY (...) REF table(...)` — the paper's abbreviated
//!   `REFERENCES` spelling (both are accepted).
//!
//! The parser is a hand-written recursive-descent parser over a
//! hand-written lexer; no external parsing crates are used.
//!
//! ```
//! use crowddb_sql::parse_statement;
//! let stmt = parse_statement(
//!     "SELECT title FROM Talk ORDER BY CROWDORDER(title, 'Which talk did you like better') LIMIT 10",
//! ).unwrap();
//! assert!(stmt.to_string().starts_with("SELECT title FROM talk"));
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::*;
pub use lexer::Lexer;
pub use parser::{parse_expression, parse_statement, parse_statements, Parser};
pub use token::{Keyword, Token, TokenKind};
