//! Abstract syntax tree for CrowdSQL, with SQL rendering.
//!
//! Every node implements `Display`, producing canonical CrowdSQL text;
//! parsing that text again yields an equal AST (property-tested in the
//! parser module). This is used by `EXPLAIN`, logging, and tests.

use std::fmt;

use crowddb_common::{DataType, Value};

/// A top-level SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...`
    Select(Box<Query>),
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`
    Insert(Insert),
    /// `UPDATE t SET c = e [WHERE p]`
    Update(Update),
    /// `DELETE FROM t [WHERE p]`
    Delete(Delete),
    /// `CREATE [CROWD] TABLE ...`
    CreateTable(CreateTable),
    /// `CREATE [UNIQUE] INDEX name ON t (cols)`
    CreateIndex(CreateIndex),
    /// `DROP TABLE [IF EXISTS] t`
    DropTable {
        /// Table to drop.
        name: String,
        /// Suppress the error when the table does not exist.
        if_exists: bool,
    },
    /// `EXPLAIN [ANALYZE] <statement>`
    Explain {
        /// The statement being explained.
        statement: Box<Statement>,
        /// `EXPLAIN ANALYZE`: execute and report per-operator stats.
        analyze: bool,
    },
    /// `SUBSCRIBE SELECT ...` — register a standing query that emits
    /// delta batches as crowd rounds settle and DML commits.
    Subscribe(Box<Query>),
    /// `UNSUBSCRIBE <id>` — drop the standing query with that id.
    Unsubscribe {
        /// Subscription id returned by `SUBSCRIBE`.
        id: u64,
    },
}

/// `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list, if given.
    pub columns: Option<Vec<String>>,
    /// One or more rows of value expressions.
    pub rows: Vec<Vec<Expr>>,
}

/// `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `SET col = expr` pairs.
    pub assignments: Vec<(String, Expr)>,
    /// Optional `WHERE` predicate.
    pub filter: Option<Expr>,
}

/// `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Optional `WHERE` predicate.
    pub filter: Option<Expr>,
}

/// `CREATE [CROWD] TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// `CREATE CROWD TABLE`?
    pub crowd: bool,
    /// Column declarations.
    pub columns: Vec<ColumnDecl>,
    /// Table-level constraints.
    pub constraints: Vec<TableConstraint>,
    /// `IF NOT EXISTS`? (accepted as `CREATE TABLE IF NOT EXISTS`)
    pub if_not_exists: bool,
}

/// A column declaration inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDecl {
    /// Column name.
    pub name: String,
    /// `CROWD` modifier — the CrowdSQL extension from paper Example 1.
    pub crowd: bool,
    /// Declared type.
    pub data_type: DataType,
    /// Inline `PRIMARY KEY`.
    pub primary_key: bool,
    /// `NOT NULL`.
    pub not_null: bool,
}

/// Table-level constraint inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    /// `PRIMARY KEY (cols)`
    PrimaryKey(Vec<String>),
    /// `FOREIGN KEY (cols) REF table(cols)` — the paper spells
    /// `REFERENCES` as `REF`; both are accepted.
    ForeignKey {
        /// Referencing columns.
        columns: Vec<String>,
        /// Referenced table.
        ref_table: String,
        /// Referenced columns.
        ref_columns: Vec<String>,
    },
}

/// `CREATE INDEX` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    /// Index name.
    pub name: String,
    /// Indexed table.
    pub table: String,
    /// Indexed columns, in order.
    pub columns: Vec<String>,
    /// `UNIQUE` index?
    pub unique: bool,
}

/// One `UNION [ALL]` arm attached to a query.
#[derive(Debug, Clone, PartialEq)]
pub struct SetOp {
    /// `UNION ALL` (keep duplicates)?
    pub all: bool,
    /// The right-hand select (no ORDER BY/LIMIT of its own; those apply
    /// to the whole union).
    pub query: Query,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// `FROM` items (comma-separated; explicit joins hang off each item).
    pub from: Vec<TableRef>,
    /// `WHERE` predicate.
    pub filter: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `UNION [ALL]` arms, applied in order.
    pub set_ops: Vec<SetOp>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT` count.
    pub limit: Option<u64>,
    /// `OFFSET` count.
    pub offset: Option<u64>,
}

impl Query {
    /// An empty `SELECT` skeleton (useful for tests and builders).
    pub fn empty() -> Query {
        Query {
            distinct: false,
            projection: Vec::new(),
            from: Vec::new(),
            filter: None,
            group_by: Vec::new(),
            having: None,
            set_ops: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        }
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `table.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output alias.
        alias: Option<String>,
    },
}

/// A `FROM` item: a base table with optional alias and a chain of explicit
/// joins.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Base relation.
    pub relation: Relation,
    /// Explicit `JOIN`s applied to the base relation, in order.
    pub joins: Vec<Join>,
}

/// A named relation or subquery with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub enum Relation {
    /// A named table, optionally aliased.
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A parenthesized subquery with required alias.
    Subquery {
        /// The subquery.
        query: Box<Query>,
        /// Alias naming the derived table.
        alias: String,
    },
}

impl Relation {
    /// The name this relation is visible under in the enclosing scope.
    pub fn visible_name(&self) -> &str {
        match self {
            Relation::Table { name, alias } => alias.as_deref().unwrap_or(name),
            Relation::Subquery { alias, .. } => alias,
        }
    }
}

/// One explicit join.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join type.
    pub kind: JoinKind,
    /// Right-hand relation.
    pub relation: Relation,
    /// `ON` predicate (`None` for CROSS JOIN).
    pub on: Option<Expr>,
}

/// Join types supported by CrowdDB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// `[INNER] JOIN`
    Inner,
    /// `LEFT [OUTER] JOIN`
    Left,
    /// `CROSS JOIN`
    Cross,
}

/// `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort expression (may be a `CROWDORDER(...)` call).
    pub expr: Expr,
    /// Descending?
    pub desc: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `||`
    Concat,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `~=` / `CROWDEQUAL` — crowd-judged equality.
    CrowdEq,
}

impl BinaryOp {
    /// Whether this operator produces a boolean.
    pub fn is_predicate(self) -> bool {
        !matches!(
            self,
            BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::Div
                | BinaryOp::Mod
                | BinaryOp::Concat
        )
    }

    /// SQL spelling.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::CrowdEq => "~=",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `NOT`
    Not,
    /// `-`
    Neg,
    /// `+` (no-op, kept for fidelity)
    Pos,
}

/// A column reference, optionally qualified.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Qualifier (table name or alias).
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// Scalar and predicate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value (including `NULL` and `CNULL`).
    Literal(Value),
    /// Column reference.
    Column(ColumnRef),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL` / `expr IS [NOT] CNULL`.
    Is {
        /// Tested expression.
        expr: Box<Expr>,
        /// Negated (`IS NOT`)?
        negated: bool,
        /// Testing for `CNULL` rather than `NULL`?
        cnull: bool,
    },
    /// `expr [NOT] LIKE pattern` (SQL `%`/`_` wildcards).
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern expression.
        pattern: Box<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negated?
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// Subquery producing candidates.
        query: Box<Query>,
        /// Negated?
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// Subquery.
        query: Box<Query>,
        /// Negated?
        negated: bool,
    },
    /// Scalar subquery `(SELECT ...)`.
    ScalarSubquery(Box<Query>),
    /// `CASE [operand] WHEN ... THEN ... [ELSE ...] END`.
    Case {
        /// Optional `CASE operand WHEN value` operand.
        operand: Option<Box<Expr>>,
        /// `(when, then)` pairs.
        branches: Vec<(Expr, Expr)>,
        /// `ELSE` expression.
        else_expr: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Target type.
        data_type: DataType,
    },
    /// Function call: aggregates (`COUNT`, `SUM`, ...), scalar functions,
    /// and the crowd built-ins `CROWDEQUAL(a, b)` / `CROWDORDER(expr,
    /// 'instruction')`.
    Function {
        /// Lower-cased function name.
        name: String,
        /// Arguments (`[Expr::Wildcard]` for `COUNT(*)`).
        args: Vec<Expr>,
        /// `COUNT(DISTINCT x)`-style distinct aggregation.
        distinct: bool,
    },
    /// `*` inside `COUNT(*)`.
    Wildcard,
}

impl Expr {
    /// Literal helper.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Bare column helper.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    /// Conjunction builder that skips `None`s.
    pub fn and_all(mut parts: Vec<Expr>) -> Option<Expr> {
        let mut acc = parts.pop()?;
        while let Some(p) = parts.pop() {
            acc = Expr::Binary {
                left: Box::new(p),
                op: BinaryOp::And,
                right: Box::new(acc),
            };
        }
        Some(acc)
    }

    /// Whether this expression contains a crowd comparison
    /// (`CROWDEQUAL`/`~=` or `CROWDORDER`) anywhere.
    pub fn contains_crowd_call(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            match e {
                Expr::Binary {
                    op: BinaryOp::CrowdEq,
                    ..
                } => found = true,
                Expr::Function { name, .. } if name == "crowdequal" || name == "crowdorder" => {
                    found = true
                }
                _ => {}
            };
        });
        found
    }

    /// Whether this expression contains an aggregate function call at the
    /// top level of expression nesting (not inside a subquery).
    pub fn contains_aggregate(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if is_aggregate_name(name) {
                    found = true;
                }
            }
        });
        found
    }

    /// Visit this expression and all sub-expressions (not descending into
    /// subqueries).
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Column(_) | Expr::Wildcard | Expr::ScalarSubquery(_) => {}
            Expr::Unary { expr, .. } | Expr::Is { expr, .. } | Expr::Cast { expr, .. } => {
                expr.walk(f)
            }
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.walk(f),
            Expr::Exists { .. } => {}
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.walk(f);
                }
                for (w, t) in branches {
                    w.walk(f);
                    t.walk(f);
                }
                if let Some(e) = else_expr {
                    e.walk(f);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
        }
    }

    /// Collect all column references in this expression (not descending
    /// into subqueries).
    pub fn columns(&self) -> Vec<ColumnRef> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Column(c) = e {
                out.push(c.clone());
            }
        });
        out
    }
}

/// Whether `name` (lower-cased) names an aggregate function.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "count" | "sum" | "avg" | "min" | "max")
}

// ---------------------------------------------------------------------
// Display: canonical CrowdSQL rendering
// ---------------------------------------------------------------------

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::Insert(i) => write!(f, "{i}"),
            Statement::Update(u) => write!(f, "{u}"),
            Statement::Delete(d) => write!(f, "{d}"),
            Statement::CreateTable(c) => write!(f, "{c}"),
            Statement::CreateIndex(c) => write!(f, "{c}"),
            Statement::DropTable { name, if_exists } => {
                write!(
                    f,
                    "DROP TABLE {}{}",
                    if *if_exists { "IF EXISTS " } else { "" },
                    name
                )
            }
            Statement::Explain { statement, analyze } => write!(
                f,
                "EXPLAIN {}{statement}",
                if *analyze { "ANALYZE " } else { "" }
            ),
            Statement::Subscribe(q) => write!(f, "SUBSCRIBE {q}"),
            Statement::Unsubscribe { id } => write!(f, "UNSUBSCRIBE {id}"),
        }
    }
}

impl fmt::Display for Insert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "INSERT INTO {}", self.table)?;
        if let Some(cols) = &self.columns {
            write!(f, " ({})", cols.join(", "))?;
        }
        f.write_str(" VALUES ")?;
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str("(")?;
            for (j, e) in row.iter().enumerate() {
                if j > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UPDATE {} SET ", self.table)?;
        for (i, (c, e)) in self.assignments.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c} = {e}")?;
        }
        if let Some(p) = &self.filter {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Delete {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DELETE FROM {}", self.table)?;
        if let Some(p) = &self.filter {
            write!(f, " WHERE {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE {}TABLE {}{} (",
            if self.crowd { "CROWD " } else { "" },
            if self.if_not_exists {
                "IF NOT EXISTS "
            } else {
                ""
            },
            self.name
        )?;
        let mut first = true;
        for c in &self.columns {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        for t in &self.constraints {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

impl fmt::Display for ColumnDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        if self.crowd {
            f.write_str(" CROWD")?;
        }
        write!(f, " {}", self.data_type.sql_name())?;
        if self.primary_key {
            f.write_str(" PRIMARY KEY")?;
        }
        if self.not_null && !self.primary_key {
            f.write_str(" NOT NULL")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableConstraint::PrimaryKey(cols) => {
                write!(f, "PRIMARY KEY ({})", cols.join(", "))
            }
            TableConstraint::ForeignKey {
                columns,
                ref_table,
                ref_columns,
            } => write!(
                f,
                "FOREIGN KEY ({}) REF {}({})",
                columns.join(", "),
                ref_table,
                ref_columns.join(", ")
            ),
        }
    }
}

impl fmt::Display for CreateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE {}INDEX {} ON {} ({})",
            if self.unique { "UNIQUE " } else { "" },
            self.name,
            self.table,
            self.columns.join(", ")
        )
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{item}")?;
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{t}")?;
            }
        }
        if let Some(p) = &self.filter {
            write!(f, " WHERE {p}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        for op in &self.set_ops {
            write!(f, " UNION {}{}", if op.all { "ALL " } else { "" }, op.query)?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{}{}", o.expr, if o.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*"),
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.relation)?;
        for j in &self.joins {
            write!(f, "{j}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Relation::Table { name, alias } => {
                f.write_str(name)?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            Relation::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
        }
    }
}

impl fmt::Display for Join {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kw = match self.kind {
            JoinKind::Inner => " JOIN ",
            JoinKind::Left => " LEFT JOIN ",
            JoinKind::Cross => " CROSS JOIN ",
        };
        f.write_str(kw)?;
        write!(f, "{}", self.relation)?;
        if let Some(on) = &self.on {
            write!(f, " ON {on}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => f.write_str(&v.sql_literal()),
            Expr::Column(c) => write!(f, "{c}"),
            // The outer parentheses keep rendering unambiguous: NOT binds
            // loosely when parsed top-down, so `(NOT e)` re-parses as this
            // node even when embedded in a tighter context like `x = (NOT e)`.
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
                UnaryOp::Pos => write!(f, "(+{expr})"),
            },
            Expr::Binary { left, op, right } => {
                write!(f, "({left} {} {right})", op.sql())
            }
            Expr::Is {
                expr,
                negated,
                cnull,
            } => write!(
                f,
                "({expr} IS {}{})",
                if *negated { "NOT " } else { "" },
                if *cnull { "CNULL" } else { "NULL" }
            ),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE {pattern})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("))")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => write!(
                f,
                "({expr} {}IN ({query}))",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Exists { query, negated } => {
                write!(
                    f,
                    "({}EXISTS ({query}))",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                f.write_str("CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Cast { expr, data_type } => {
                write!(f, "CAST({expr} AS {})", data_type.sql_name())
            }
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                write!(f, "{}(", name.to_ascii_uppercase())?;
                if *distinct {
                    f.write_str("DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
            Expr::Wildcard => f.write_str("*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::Eq,
            right: Box::new(Expr::lit(1i64)),
        };
        assert_eq!(e.to_string(), "(a = 1)");
    }

    #[test]
    fn and_all_combines() {
        let parts = vec![Expr::col("a"), Expr::col("b"), Expr::col("c")];
        let e = Expr::and_all(parts).unwrap();
        assert_eq!(e.to_string(), "(a AND (b AND c))");
        assert!(Expr::and_all(vec![]).is_none());
    }

    #[test]
    fn crowd_call_detection() {
        let e = Expr::Function {
            name: "crowdorder".into(),
            args: vec![Expr::col("title")],
            distinct: false,
        };
        assert!(e.contains_crowd_call());
        let e2 = Expr::Binary {
            left: Box::new(Expr::col("x")),
            op: BinaryOp::CrowdEq,
            right: Box::new(Expr::lit("IBM")),
        };
        assert!(e2.contains_crowd_call());
        assert!(!Expr::col("x").contains_crowd_call());
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Function {
            name: "count".into(),
            args: vec![Expr::Wildcard],
            distinct: false,
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        assert!(is_aggregate_name("avg"));
        assert!(!is_aggregate_name("lower"));
    }

    #[test]
    fn columns_collected() {
        let e = Expr::Binary {
            left: Box::new(Expr::Column(ColumnRef::qualified("t", "a"))),
            op: BinaryOp::Lt,
            right: Box::new(Expr::col("b")),
        };
        let cols = e.columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0], ColumnRef::qualified("t", "a"));
        assert_eq!(cols[1], ColumnRef::bare("b"));
    }

    #[test]
    fn display_is_cnull() {
        let e = Expr::Is {
            expr: Box::new(Expr::col("abstract")),
            negated: false,
            cnull: true,
        };
        assert_eq!(e.to_string(), "(abstract IS CNULL)");
    }

    #[test]
    fn display_create_crowd_table() {
        let c = CreateTable {
            name: "notableattendee".into(),
            crowd: true,
            columns: vec![ColumnDecl {
                name: "name".into(),
                crowd: false,
                data_type: DataType::Str,
                primary_key: true,
                not_null: false,
            }],
            constraints: vec![TableConstraint::ForeignKey {
                columns: vec!["title".into()],
                ref_table: "talk".into(),
                ref_columns: vec!["title".into()],
            }],
            if_not_exists: false,
        };
        let s = c.to_string();
        assert!(s.starts_with("CREATE CROWD TABLE notableattendee"));
        assert!(s.contains("FOREIGN KEY (title) REF talk(title)"));
    }
}
