//! Recursive-descent parser for CrowdSQL.

use crowddb_common::{CrowdError, DataType, Result, Value};

use crate::ast::*;
use crate::lexer::Lexer;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a single statement; trailing semicolon is allowed.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.parse_statement()?);
        if !p.at_eof() && !p.check(&TokenKind::Semicolon) {
            return Err(p.unexpected("';' between statements"));
        }
    }
}

/// Parse a standalone expression (used by tests and by the form editor).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// The recursive-descent parser.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Lex `sql` and position at the first token.
    pub fn new(sql: &str) -> Result<Parser> {
        Ok(Parser {
            tokens: Lexer::new(sql).tokenize()?,
            pos: 0,
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let idx = (self.pos + off).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        *self.peek() == TokenKind::Eof
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&kind.to_string()))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("{kw:?}")))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, wanted: &str) -> CrowdError {
        let t = &self.tokens[self.pos];
        CrowdError::Parse(format!(
            "expected {wanted}, found {} at line {}, column {}",
            t.kind, t.line, t.col
        ))
    }

    /// Parse an identifier (keywords are not identifiers).
    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            // `KEY` etc. sometimes appear as column names in the wild; we
            // keep the grammar strict and require quoting instead.
            _ => Err(self.unexpected("identifier")),
        }
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    /// Parse one statement.
    pub fn parse_statement(&mut self) -> Result<Statement> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Select) => {
                Ok(Statement::Select(Box::new(self.parse_query()?)))
            }
            TokenKind::Keyword(Keyword::Insert) => self.parse_insert(),
            TokenKind::Keyword(Keyword::Update) => self.parse_update(),
            TokenKind::Keyword(Keyword::Delete) => self.parse_delete(),
            TokenKind::Keyword(Keyword::Create) => self.parse_create(),
            TokenKind::Keyword(Keyword::Drop) => self.parse_drop(),
            TokenKind::Keyword(Keyword::Explain) => {
                self.advance();
                // ANALYZE is a contextual keyword: only meaningful right
                // after EXPLAIN, a plain identifier everywhere else.
                let analyze = matches!(self.peek(), TokenKind::Ident(s) if s == "analyze");
                if analyze {
                    self.advance();
                }
                Ok(Statement::Explain {
                    statement: Box::new(self.parse_statement()?),
                    analyze,
                })
            }
            // SUBSCRIBE/UNSUBSCRIBE are contextual keywords, like ANALYZE:
            // only meaningful at statement start, plain identifiers
            // everywhere else (so a column named `subscribe` still works).
            TokenKind::Ident(s) if s == "subscribe" => {
                self.advance();
                Ok(Statement::Subscribe(Box::new(self.parse_query()?)))
            }
            TokenKind::Ident(s) if s == "unsubscribe" => {
                self.advance();
                match *self.peek() {
                    TokenKind::IntLit(n) if n >= 0 => {
                        self.advance();
                        Ok(Statement::Unsubscribe { id: n as u64 })
                    }
                    _ => Err(self.unexpected("a subscription id")),
                }
            }
            _ => Err(self.unexpected(
                "a statement (SELECT/INSERT/UPDATE/DELETE/CREATE/DROP/EXPLAIN/\
                 SUBSCRIBE/UNSUBSCRIBE)",
            )),
        }
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let columns = if self.check(&TokenKind::LParen) {
            self.advance();
            let mut cols = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw(Keyword::Values)?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                row.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(Insert {
            table,
            columns,
            rows,
        }))
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            assignments.push((col, self.parse_expr()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            filter,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete { table, filter }))
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Crowd) {
            self.expect_kw(Keyword::Table)?;
            return self.parse_create_table(true);
        }
        if self.eat_kw(Keyword::Table) {
            return self.parse_create_table(false);
        }
        let unique = self.eat_kw(Keyword::Unique);
        if self.eat_kw(Keyword::Index) {
            let name = self.ident()?;
            self.expect_kw(Keyword::On)?;
            let table = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut columns = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                columns.push(self.ident()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::CreateIndex(CreateIndex {
                name,
                table,
                columns,
                unique,
            }));
        }
        Err(self.unexpected("TABLE, CROWD TABLE, or [UNIQUE] INDEX after CREATE"))
    }

    fn parse_create_table(&mut self, crowd: bool) -> Result<Statement> {
        let if_not_exists = if self.eat_kw(Keyword::If) {
            self.expect_kw(Keyword::Not)?;
            self.expect_kw(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.check_kw(Keyword::Primary) {
                self.advance();
                self.expect_kw(Keyword::Key)?;
                self.expect(&TokenKind::LParen)?;
                let mut cols = vec![self.ident()?];
                while self.eat(&TokenKind::Comma) {
                    cols.push(self.ident()?);
                }
                self.expect(&TokenKind::RParen)?;
                constraints.push(TableConstraint::PrimaryKey(cols));
            } else if self.check_kw(Keyword::Foreign) {
                self.advance();
                self.expect_kw(Keyword::Key)?;
                self.expect(&TokenKind::LParen)?;
                let mut cols = vec![self.ident()?];
                while self.eat(&TokenKind::Comma) {
                    cols.push(self.ident()?);
                }
                self.expect(&TokenKind::RParen)?;
                // Paper uses `REF`; standard SQL uses `REFERENCES`.
                if !self.eat_kw(Keyword::Ref) {
                    self.expect_kw(Keyword::References)?;
                }
                let ref_table = self.ident()?;
                self.expect(&TokenKind::LParen)?;
                let mut ref_columns = vec![self.ident()?];
                while self.eat(&TokenKind::Comma) {
                    ref_columns.push(self.ident()?);
                }
                self.expect(&TokenKind::RParen)?;
                constraints.push(TableConstraint::ForeignKey {
                    columns: cols,
                    ref_table,
                    ref_columns,
                });
            } else {
                columns.push(self.parse_column_decl()?);
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            crowd,
            columns,
            constraints,
            if_not_exists,
        }))
    }

    fn parse_column_decl(&mut self) -> Result<ColumnDecl> {
        let name = self.ident()?;
        // Paper syntax: `abstract CROWD STRING` — CROWD precedes the type.
        let crowd = self.eat_kw(Keyword::Crowd);
        let data_type = self.parse_data_type()?;
        let mut primary_key = false;
        let mut not_null = false;
        loop {
            if self.check_kw(Keyword::Primary) {
                self.advance();
                self.expect_kw(Keyword::Key)?;
                primary_key = true;
            } else if self.check_kw(Keyword::Not) {
                self.advance();
                self.expect_kw(Keyword::Null)?;
                not_null = true;
            } else {
                break;
            }
        }
        Ok(ColumnDecl {
            name,
            crowd,
            data_type,
            primary_key,
            not_null,
        })
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let ty = match self.peek() {
            TokenKind::Keyword(Keyword::String)
            | TokenKind::Keyword(Keyword::Text)
            | TokenKind::Keyword(Keyword::Varchar) => DataType::Str,
            TokenKind::Keyword(Keyword::Int) | TokenKind::Keyword(Keyword::Integer) => {
                DataType::Int
            }
            TokenKind::Keyword(Keyword::Float) | TokenKind::Keyword(Keyword::Double) => {
                DataType::Float
            }
            TokenKind::Keyword(Keyword::Boolean) => DataType::Bool,
            _ => return Err(self.unexpected("a data type (STRING/INTEGER/FLOAT/BOOLEAN)")),
        };
        self.advance();
        // Optional length, e.g. VARCHAR(255): parsed and ignored.
        if self.eat(&TokenKind::LParen) {
            match self.advance() {
                TokenKind::IntLit(_) => {}
                _ => return Err(self.unexpected("length")),
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(ty)
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_kw(Keyword::Drop)?;
        self.expect_kw(Keyword::Table)?;
        let if_exists = if self.eat_kw(Keyword::If) {
            self.expect_kw(Keyword::Exists)?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    // -----------------------------------------------------------------
    // Queries
    // -----------------------------------------------------------------

    /// Parse a `SELECT` query (without a trailing semicolon), including
    /// `UNION [ALL]` chains whose ORDER BY/LIMIT apply to the whole union.
    pub fn parse_query(&mut self) -> Result<Query> {
        let mut query = self.parse_select_core()?;
        while self.eat_kw(Keyword::Union) {
            let all = self.eat_kw(Keyword::All);
            let arm = self.parse_select_core()?;
            query.set_ops.push(SetOp { all, query: arm });
        }
        self.parse_order_limit(&mut query)?;
        Ok(query)
    }

    /// `SELECT ... [HAVING ...]` — the union-able part of a query.
    fn parse_select_core(&mut self) -> Result<Query> {
        self.expect_kw(Keyword::Select)?;
        let distinct = if self.eat_kw(Keyword::Distinct) {
            true
        } else {
            self.eat_kw(Keyword::All);
            false
        };
        let mut projection = vec![self.parse_select_item()?];
        while self.eat(&TokenKind::Comma) {
            projection.push(self.parse_select_item()?);
        }
        let mut from = Vec::new();
        if self.eat_kw(Keyword::From) {
            from.push(self.parse_table_ref()?);
            while self.eat(&TokenKind::Comma) {
                from.push(self.parse_table_ref()?);
            }
        }
        let filter = if self.eat_kw(Keyword::Where) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.parse_expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Query {
            distinct,
            projection,
            from,
            filter,
            group_by,
            having,
            set_ops: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        })
    }

    /// Parse the trailing `ORDER BY` / `LIMIT` / `OFFSET` into `query`.
    fn parse_order_limit(&mut self, query: &mut Query) -> Result<()> {
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                query.order_by.push(OrderByItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw(Keyword::Limit) {
            query.limit = Some(self.parse_u64()?);
        }
        if self.eat_kw(Keyword::Offset) {
            query.offset = Some(self.parse_u64()?);
        }
        Ok(())
    }

    fn parse_u64(&mut self) -> Result<u64> {
        match self.peek().clone() {
            TokenKind::IntLit(v) if v >= 0 => {
                self.advance();
                Ok(v as u64)
            }
            _ => Err(self.unexpected("a non-negative integer")),
        }
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // table.* ?
        if let TokenKind::Ident(name) = self.peek().clone() {
            if *self.peek_at(1) == TokenKind::Dot && *self.peek_at(2) == TokenKind::Star {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            // Implicit alias: `SELECT a b FROM t`.
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let relation = self.parse_relation()?;
        let mut joins = Vec::new();
        loop {
            let kind = if self.check_kw(Keyword::Join) || self.check_kw(Keyword::Inner) {
                self.eat_kw(Keyword::Inner);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Inner
            } else if self.check_kw(Keyword::Left) {
                self.advance();
                self.eat_kw(Keyword::Outer);
                self.expect_kw(Keyword::Join)?;
                JoinKind::Left
            } else if self.check_kw(Keyword::Cross) {
                self.advance();
                self.expect_kw(Keyword::Join)?;
                JoinKind::Cross
            } else {
                break;
            };
            let relation = self.parse_relation()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw(Keyword::On)?;
                Some(self.parse_expr()?)
            };
            joins.push(Join { kind, relation, on });
        }
        Ok(TableRef { relation, joins })
    }

    fn parse_relation(&mut self) -> Result<Relation> {
        if self.eat(&TokenKind::LParen) {
            let query = self.parse_query()?;
            self.expect(&TokenKind::RParen)?;
            self.eat_kw(Keyword::As);
            let alias = self.ident()?;
            return Ok(Relation::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let TokenKind::Ident(_) = self.peek() {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(Relation::Table { name, alias })
    }

    // -----------------------------------------------------------------
    // Expressions (precedence climbing)
    // -----------------------------------------------------------------

    /// Parse an expression.
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw(Keyword::Not) {
            let e = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            });
        }
        self.parse_predicate()
    }

    /// Comparisons, IS [NOT] [C]NULL, [NOT] LIKE/IN/BETWEEN.
    fn parse_predicate(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // Postfix predicates can chain (a IS NOT NULL is one level).
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            let cnull = if self.eat_kw(Keyword::Cnull) {
                true
            } else {
                self.expect_kw(Keyword::Null)?;
                false
            };
            return Ok(Expr::Is {
                expr: Box::new(left),
                negated,
                cnull,
            });
        }
        let negated = if self.check_kw(Keyword::Not)
            && matches!(
                self.peek_at(1),
                TokenKind::Keyword(Keyword::Like)
                    | TokenKind::Keyword(Keyword::In)
                    | TokenKind::Keyword(Keyword::Between)
            ) {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw(Keyword::Like) {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if self.eat_kw(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect(&TokenKind::LParen)?;
            if self.check_kw(Keyword::Select) {
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(q),
                    negated,
                });
            }
            let mut list = vec![self.parse_expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("LIKE, IN, or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            TokenKind::CrowdEq => Some(BinaryOp::CrowdEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                TokenKind::Concat => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        // `NOT` normally binds looser than comparisons (handled in
        // `parse_not`), but we also accept it as a tight unary operator so
        // that expressions like `a = NOT b` — which our canonical
        // rendering produces for nested NOTs — re-parse correctly.
        if self.eat_kw(Keyword::Not) {
            let e = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            });
        }
        if self.eat(&TokenKind::Minus) {
            let e = self.parse_unary()?;
            // Fold negative numeric literals immediately.
            return Ok(match e {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(x)) => Expr::Literal(Value::Float(-x)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::FloatLit(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Keyword(Keyword::Cnull) => {
                self.advance();
                Ok(Expr::Literal(Value::CNull))
            }
            TokenKind::Keyword(Keyword::Case) => self.parse_case(),
            TokenKind::Keyword(Keyword::Cast) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let expr = self.parse_expr()?;
                self.expect_kw(Keyword::As)?;
                let data_type = self.parse_data_type()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(expr),
                    data_type,
                })
            }
            TokenKind::Keyword(Keyword::Exists) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let q = self.parse_query()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Exists {
                    query: Box::new(q),
                    negated: false,
                })
            }
            TokenKind::Keyword(Keyword::Crowdequal) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let a = self.parse_expr()?;
                self.expect(&TokenKind::Comma)?;
                let b = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Function {
                    name: "crowdequal".into(),
                    args: vec![a, b],
                    distinct: false,
                })
            }
            TokenKind::Keyword(Keyword::Crowdorder) => {
                self.advance();
                self.expect(&TokenKind::LParen)?;
                let mut args = vec![self.parse_expr()?];
                while self.eat(&TokenKind::Comma) {
                    args.push(self.parse_expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                if args.len() > 2 {
                    return Err(CrowdError::Parse(
                        "CROWDORDER takes (expr[, 'instruction'])".into(),
                    ));
                }
                Ok(Expr::Function {
                    name: "crowdorder".into(),
                    args,
                    distinct: false,
                })
            }
            TokenKind::LParen => {
                self.advance();
                if self.check_kw(Keyword::Select) {
                    let q = self.parse_query()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.advance();
                // Function call?
                if self.check(&TokenKind::LParen) {
                    self.advance();
                    let distinct = self.eat_kw(Keyword::Distinct);
                    let mut args = Vec::new();
                    if self.eat(&TokenKind::Star) {
                        args.push(Expr::Wildcard);
                    } else if !self.check(&TokenKind::RParen) {
                        args.push(self.parse_expr()?);
                        while self.eat(&TokenKind::Comma) {
                            args.push(self.parse_expr()?);
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Function {
                        name,
                        args,
                        distinct,
                    });
                }
                // Qualified column?
                if self.eat(&TokenKind::Dot) {
                    let column = self.ident()?;
                    return Ok(Expr::Column(ColumnRef {
                        table: Some(name),
                        column,
                    }));
                }
                Ok(Expr::Column(ColumnRef::bare(name)))
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn parse_case(&mut self) -> Result<Expr> {
        self.expect_kw(Keyword::Case)?;
        let operand = if self.check_kw(Keyword::When) {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw(Keyword::When) {
            let w = self.parse_expr()?;
            self.expect_kw(Keyword::Then)?;
            let t = self.parse_expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_expr = if self.eat_kw(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw(Keyword::End)?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Select(q) => *q,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn paper_query_missing_abstract() {
        let q = sel("SELECT abstract FROM paper WHERE title = 'CrowdDB';");
        assert_eq!(q.projection.len(), 1);
        assert_eq!(
            q.filter.as_ref().unwrap().to_string(),
            "(title = 'CrowdDB')"
        );
    }

    #[test]
    fn paper_crowdorder_query() {
        let q = sel(
            "SELECT title FROM Talk ORDER BY CROWDORDER(novel_idea, 'Which talk did you like better') LIMIT 10",
        );
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].expr.contains_crowd_call());
    }

    #[test]
    fn paper_example_1_create_table() {
        let s = parse_statement(
            "CREATE TABLE Talk (
                title STRING PRIMARY KEY,
                abstract CROWD STRING,
                nb_attendees CROWD INTEGER )",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!()
        };
        assert!(!ct.crowd);
        assert_eq!(ct.columns.len(), 3);
        assert!(ct.columns[0].primary_key);
        assert!(ct.columns[1].crowd);
        assert_eq!(ct.columns[2].data_type, DataType::Int);
    }

    #[test]
    fn paper_example_2_crowd_table() {
        let s = parse_statement(
            "CREATE CROWD TABLE NotableAttendee (
                name STRING PRIMARY KEY,
                title STRING,
                FOREIGN KEY (title) REF Talk(title) )",
        )
        .unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!()
        };
        assert!(ct.crowd);
        assert_eq!(ct.constraints.len(), 1);
        match &ct.constraints[0] {
            TableConstraint::ForeignKey {
                columns,
                ref_table,
                ref_columns,
            } => {
                assert_eq!(columns, &vec!["title".to_string()]);
                assert_eq!(ref_table, "talk");
                assert_eq!(ref_columns, &vec!["title".to_string()]);
            }
            other => panic!("expected FK, got {other:?}"),
        }
    }

    #[test]
    fn references_also_accepted() {
        assert!(
            parse_statement("CREATE TABLE t (a STRING, FOREIGN KEY (a) REFERENCES u(b))").is_ok()
        );
    }

    #[test]
    fn crowdequal_tilde_shorthand() {
        let q = sel("SELECT * FROM company WHERE name ~= 'IBM'");
        let f = q.filter.unwrap();
        assert!(matches!(
            f,
            Expr::Binary {
                op: BinaryOp::CrowdEq,
                ..
            }
        ));
    }

    #[test]
    fn crowdequal_function_form() {
        let q = sel("SELECT * FROM company WHERE CROWDEQUAL(name, 'IBM')");
        assert!(q.filter.unwrap().contains_crowd_call());
    }

    #[test]
    fn is_cnull_predicate() {
        let q = sel("SELECT title FROM talk WHERE abstract IS CNULL");
        assert_eq!(
            q.filter.unwrap(),
            Expr::Is {
                expr: Box::new(Expr::col("abstract")),
                negated: false,
                cnull: true
            }
        );
        let q = sel("SELECT title FROM talk WHERE abstract IS NOT CNULL");
        assert!(matches!(q.filter.unwrap(), Expr::Is { negated: true, .. }));
    }

    #[test]
    fn insert_with_cnull() {
        let s = parse_statement("INSERT INTO talk VALUES ('CrowdDB', CNULL, CNULL)").unwrap();
        let Statement::Insert(ins) = s else { panic!() };
        assert_eq!(ins.rows[0][1], Expr::Literal(Value::CNull));
    }

    #[test]
    fn multi_row_insert_with_columns() {
        let s =
            parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')").unwrap();
        let Statement::Insert(ins) = s else { panic!() };
        assert_eq!(ins.columns, Some(vec!["a".into(), "b".into()]));
        assert_eq!(ins.rows.len(), 3);
    }

    #[test]
    fn update_delete() {
        let s = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        let Statement::Update(u) = s else { panic!() };
        assert_eq!(u.assignments.len(), 2);
        assert!(u.filter.is_some());

        let s = parse_statement("DELETE FROM t").unwrap();
        let Statement::Delete(d) = s else { panic!() };
        assert!(d.filter.is_none());
    }

    #[test]
    fn joins_explicit_and_implicit() {
        let q = sel("SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z, d");
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0].joins.len(), 2);
        assert_eq!(q.from[0].joins[0].kind, JoinKind::Inner);
        assert_eq!(q.from[0].joins[1].kind, JoinKind::Left);
    }

    #[test]
    fn cross_join() {
        let q = sel("SELECT * FROM a CROSS JOIN b");
        assert_eq!(q.from[0].joins[0].kind, JoinKind::Cross);
        assert!(q.from[0].joins[0].on.is_none());
    }

    #[test]
    fn aliases() {
        let q = sel("SELECT t.a AS x, u.b y FROM talk AS t, users u");
        match &q.projection[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("x")),
            _ => panic!(),
        }
        match &q.from[1].relation {
            Relation::Table { name, alias } => {
                assert_eq!(name, "users");
                assert_eq!(alias.as_deref(), Some("u"));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn group_by_having() {
        let q = sel("SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING COUNT(*) > 3");
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
    }

    #[test]
    fn subqueries() {
        let q = sel("SELECT * FROM t WHERE a IN (SELECT b FROM u) AND EXISTS (SELECT * FROM v)");
        let f = q.filter.unwrap();
        let rendered = f.to_string();
        assert!(rendered.contains("IN (SELECT b FROM u)"), "{rendered}");
        assert!(rendered.contains("EXISTS"), "{rendered}");
    }

    #[test]
    fn scalar_subquery_and_derived_table() {
        let q = sel("SELECT (SELECT MAX(x) FROM u) FROM (SELECT * FROM t) AS d");
        assert!(matches!(
            q.projection[0],
            SelectItem::Expr {
                expr: Expr::ScalarSubquery(_),
                ..
            }
        ));
        assert!(matches!(q.from[0].relation, Relation::Subquery { .. }));
    }

    #[test]
    fn precedence() {
        let e = parse_expression("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + (2 * 3))");
        let e = parse_expression("a OR b AND NOT c").unwrap();
        assert_eq!(e.to_string(), "(a OR (b AND (NOT c)))");
        let e = parse_expression("-2 + 3").unwrap();
        assert_eq!(e.to_string(), "(-2 + 3)");
    }

    #[test]
    fn between_and_like_and_in() {
        let e = parse_expression("x BETWEEN 1 AND 10").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expression("name NOT LIKE 'Crow%'").unwrap();
        assert!(matches!(e, Expr::Like { negated: true, .. }));
        let e = parse_expression("a NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn case_expressions() {
        let e = parse_expression("CASE WHEN a > 1 THEN 'big' ELSE 'small' END").unwrap();
        assert!(matches!(e, Expr::Case { operand: None, .. }));
        let e = parse_expression("CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").unwrap();
        match e {
            Expr::Case {
                operand, branches, ..
            } => {
                assert!(operand.is_some());
                assert_eq!(branches.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn cast_expression() {
        let e = parse_expression("CAST(a AS INTEGER)").unwrap();
        assert!(matches!(
            e,
            Expr::Cast {
                data_type: DataType::Int,
                ..
            }
        ));
    }

    #[test]
    fn count_distinct() {
        let e = parse_expression("COUNT(DISTINCT dept)").unwrap();
        match e {
            Expr::Function {
                name,
                distinct,
                args,
            } => {
                assert_eq!(name, "count");
                assert!(distinct);
                assert_eq!(args.len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn create_index() {
        let s = parse_statement("CREATE UNIQUE INDEX idx_t_a ON t (a, b)").unwrap();
        let Statement::CreateIndex(ci) = s else {
            panic!()
        };
        assert!(ci.unique);
        assert_eq!(ci.columns, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn drop_table_if_exists() {
        let s = parse_statement("DROP TABLE IF EXISTS t").unwrap();
        assert_eq!(
            s,
            Statement::DropTable {
                name: "t".into(),
                if_exists: true
            }
        );
    }

    #[test]
    fn explain() {
        let s = parse_statement("EXPLAIN SELECT * FROM t").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: false, .. }));
    }

    #[test]
    fn explain_analyze() {
        let s = parse_statement("EXPLAIN ANALYZE SELECT * FROM t").unwrap();
        assert!(matches!(s, Statement::Explain { analyze: true, .. }));
        assert_eq!(s.to_string(), "EXPLAIN ANALYZE SELECT * FROM t");
        // ANALYZE still works as a regular identifier elsewhere.
        assert!(parse_statement("SELECT analyze FROM t").is_ok());
    }

    #[test]
    fn subscribe_statement() {
        let s = parse_statement("SUBSCRIBE SELECT a FROM t WHERE a > 1").unwrap();
        let Statement::Subscribe(q) = &s else {
            panic!("expected SUBSCRIBE, got {s:?}")
        };
        assert_eq!(q.projection.len(), 1);
        assert_eq!(s.to_string(), "SUBSCRIBE SELECT a FROM t WHERE (a > 1)");
        // Roundtrip: canonical rendering re-parses to the same AST.
        assert_eq!(parse_statement(&s.to_string()).unwrap(), s);
        // SUBSCRIBE is contextual: still valid as an identifier.
        assert!(parse_statement("SELECT subscribe FROM t").is_ok());
    }

    #[test]
    fn unsubscribe_statement() {
        let s = parse_statement("UNSUBSCRIBE 3").unwrap();
        assert_eq!(s, Statement::Unsubscribe { id: 3 });
        assert_eq!(s.to_string(), "UNSUBSCRIBE 3");
        assert_eq!(parse_statement(&s.to_string()).unwrap(), s);
        assert!(parse_statement("UNSUBSCRIBE").is_err());
        assert!(parse_statement("UNSUBSCRIBE x").is_err());
        assert!(parse_statement("UNSUBSCRIBE -1").is_err());
    }

    #[test]
    fn explain_subscribe() {
        let s = parse_statement("EXPLAIN SUBSCRIBE SELECT a FROM t").unwrap();
        let Statement::Explain { statement, analyze } = &s else {
            panic!("expected EXPLAIN, got {s:?}")
        };
        assert!(!analyze);
        assert!(matches!(**statement, Statement::Subscribe(_)));
        assert_eq!(s.to_string(), "EXPLAIN SUBSCRIBE SELECT a FROM t");
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse_statements(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT * FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_messages_have_positions() {
        let err = parse_statement("SELECT FROM t").unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = parse_statement("SELECT * FROM").unwrap_err();
        assert!(err.to_string().contains("identifier"), "{err}");
    }

    #[test]
    fn varchar_length_ignored() {
        let s = parse_statement("CREATE TABLE t (a VARCHAR(255))").unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!()
        };
        assert_eq!(ct.columns[0].data_type, DataType::Str);
    }

    #[test]
    fn table_level_primary_key() {
        let s =
            parse_statement("CREATE TABLE t (a INTEGER, b STRING, PRIMARY KEY (a, b))").unwrap();
        let Statement::CreateTable(ct) = s else {
            panic!()
        };
        assert_eq!(
            ct.constraints[0],
            TableConstraint::PrimaryKey(vec!["a".into(), "b".into()])
        );
    }

    #[test]
    fn rendering_round_trip() {
        // Canonical rendering must re-parse to the same AST.
        let sources = [
            "SELECT DISTINCT a, b AS c FROM t WHERE ((a = 1) AND (b IS NOT CNULL)) ORDER BY a DESC LIMIT 5 OFFSET 2",
            "SELECT title FROM talk ORDER BY CROWDORDER(title, 'Which talk did you like better') LIMIT 10",
            "INSERT INTO t (a, b) VALUES (1, CNULL)",
            "UPDATE t SET a = (a + 1) WHERE (b ~= 'IBM')",
            "CREATE CROWD TABLE n (name STRING PRIMARY KEY, title STRING, FOREIGN KEY (title) REF talk(title))",
            "SELECT dept, COUNT(*) FROM emp GROUP BY dept HAVING (COUNT(*) > 3)",
        ];
        for src in sources {
            let ast1 = parse_statement(src).unwrap();
            let rendered = ast1.to_string();
            let ast2 = parse_statement(&rendered)
                .unwrap_or_else(|e| panic!("re-parse of '{rendered}' failed: {e}"));
            assert_eq!(ast1, ast2, "round-trip mismatch for {src}");
        }
    }
}
