//! Hand-written lexer for CrowdSQL.

use crowddb_common::{CrowdError, Result};

use crate::token::{Keyword, Token, TokenKind};

/// Streaming lexer over a SQL string.
///
/// Produces a flat token vector via [`Lexer::tokenize`]; the parser indexes
/// into that vector. Identifiers are lower-cased at lexing time (CrowdDB
/// identifiers are case-insensitive), keywords are recognized here, and
/// `--` line comments plus `/* */` block comments are skipped.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lex the whole input, returning tokens terminated by `Eof`.
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> CrowdError {
        CrowdError::Parse(format!(
            "{} at line {}, column {}",
            msg.into(),
            self.line,
            self.col
        ))
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.err("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let (line, col) = (self.line, self.col);
        let tok = |k| Token::new(k, line, col);
        let c = match self.peek() {
            None => return Ok(tok(TokenKind::Eof)),
            Some(c) => c,
        };
        let kind = match c {
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semicolon
            }
            b'.' => {
                self.bump();
                TokenKind::Dot
            }
            b'*' => {
                self.bump();
                TokenKind::Star
            }
            b'+' => {
                self.bump();
                TokenKind::Plus
            }
            b'-' => {
                self.bump();
                TokenKind::Minus
            }
            b'/' => {
                self.bump();
                TokenKind::Slash
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'=' => {
                self.bump();
                TokenKind::Eq
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        TokenKind::LtEq
                    }
                    Some(b'>') => {
                        self.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(self.err("expected '=' after '!'"));
                }
            }
            b'~' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    TokenKind::CrowdEq
                } else {
                    return Err(self.err("expected '=' after '~' (CROWDEQUAL shorthand is '~=')"));
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == Some(b'|') {
                    self.bump();
                    TokenKind::Concat
                } else {
                    return Err(self.err("expected '|' after '|'"));
                }
            }
            b'\'' => self.lex_string()?,
            b'"' => self.lex_quoted_ident()?,
            b'0'..=b'9' => self.lex_number()?,
            c if c == b'_' || c.is_ascii_alphabetic() => self.lex_word(),
            other => {
                return Err(self.err(format!("unexpected character '{}'", other as char)));
            }
        };
        Ok(tok(kind))
    }

    fn lex_string(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\'') => {
                    // '' is an escaped quote.
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        return Ok(TokenKind::StringLit(s));
                    }
                }
                Some(c) => s.push(c as char),
            }
        }
    }

    fn lex_quoted_ident(&mut self) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated quoted identifier")),
                Some(b'"') => return Ok(TokenKind::Ident(s.to_ascii_lowercase())),
                Some(c) => s.push(c as char),
            }
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        // Only consume '.' when followed by a digit, so "1." is not eaten
        // and "tbl.1" style input errors in the parser, not the lexer.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut look = self.pos + 1;
            if matches!(self.src.get(look), Some(b'+') | Some(b'-')) {
                look += 1;
            }
            if matches!(self.src.get(look), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.bump();
                }
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::FloatLit)
                .map_err(|e| self.err(format!("invalid float literal '{text}': {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::IntLit)
                .map_err(|e| self.err(format!("invalid integer literal '{text}': {e}")))
        }
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii word");
        match Keyword::from_str(text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(text.to_ascii_lowercase()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lex_simple_select() {
        let k = kinds("SELECT abstract FROM paper WHERE title = 'CrowdDB';");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("abstract".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("paper".into()),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Ident("title".into()),
                TokenKind::Eq,
                TokenKind::StringLit("CrowdDB".into()),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_crowd_keywords() {
        let k = kinds("CREATE CROWD TABLE t (a CROWD STRING)");
        assert!(k.contains(&TokenKind::Keyword(Keyword::Crowd)));
        let k = kinds("x ~= 'IBM'");
        assert_eq!(k[1], TokenKind::CrowdEq);
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::IntLit(42));
        assert_eq!(kinds("3.25")[0], TokenKind::FloatLit(3.25));
        assert_eq!(kinds("1e3")[0], TokenKind::FloatLit(1000.0));
        assert_eq!(kinds("2.5e-1")[0], TokenKind::FloatLit(0.25));
    }

    #[test]
    fn dot_after_int_is_separate_when_not_float() {
        // "t.1" style — lexer must not swallow the dot into the number
        let k = kinds("1 .x");
        assert_eq!(k[0], TokenKind::IntLit(1));
        assert_eq!(k[1], TokenKind::Dot);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("'it''s here'")[0],
            TokenKind::StringLit("it's here".into())
        );
    }

    #[test]
    fn quoted_identifiers_lowercased() {
        assert_eq!(kinds("\"MyTable\"")[0], TokenKind::Ident("mytable".into()));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT -- line comment\n 1 /* block\ncomment */ + 2");
        assert_eq!(
            k,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::IntLit(1),
                TokenKind::Plus,
                TokenKind::IntLit(2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        let k = kinds("<> != <= >= < > = || ~=");
        assert_eq!(
            k,
            vec![
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::LtEq,
                TokenKind::GtEq,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eq,
                TokenKind::Concat,
                TokenKind::CrowdEq,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = Lexer::new("SELECT\n  @").tokenize().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::new("'abc").tokenize().is_err());
        assert!(Lexer::new("/* abc").tokenize().is_err());
        assert!(Lexer::new("~x").tokenize().is_err());
    }
}
