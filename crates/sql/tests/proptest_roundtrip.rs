//! Property tests: canonical rendering of a random AST re-parses to the
//! identical AST (render/parse round trip), and the parser never panics on
//! arbitrary input.

use crowddb_common::Value;
use crowddb_sql::{
    parse_expression, parse_statement, BinaryOp, ColumnRef, Expr, OrderByItem, Query, Relation,
    SelectItem, Statement, TableRef, UnaryOp,
};
use proptest::prelude::*;

fn ident_strategy() -> impl Strategy<Value = String> {
    // Identifiers that can't collide with keywords: always 'x'-prefixed.
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| format!("x{s}"))
}

fn literal_strategy() -> impl Strategy<Value = Expr> {
    prop_oneof![
        any::<i64>().prop_map(|v| Expr::Literal(Value::Int(v))),
        (-1.0e12..1.0e12f64).prop_map(|v| Expr::Literal(Value::Float(v))),
        any::<bool>().prop_map(|v| Expr::Literal(Value::Bool(v))),
        "[ -~]{0,12}".prop_map(|s| Expr::Literal(Value::Str(s))),
        Just(Expr::Literal(Value::Null)),
        Just(Expr::Literal(Value::CNull)),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal_strategy(),
        ident_strategy().prop_map(Expr::col),
        (ident_strategy(), ident_strategy())
            .prop_map(|(t, c)| Expr::Column(ColumnRef::qualified(t, c))),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), binop_strategy()).prop_map(|(l, r, op)| Expr::Binary {
                left: Box::new(l),
                op,
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            (inner.clone(), any::<bool>(), any::<bool>()).prop_map(|(e, negated, cnull)| {
                Expr::Is {
                    expr: Box::new(e),
                    negated,
                    cnull,
                }
            }),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (ident_strategy(), prop::collection::vec(inner.clone(), 0..3)).prop_map(
                |(name, args)| Expr::Function {
                    name: format!("f{name}"),
                    args,
                    distinct: false,
                }
            ),
        ]
    })
}

fn binop_strategy() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Mod),
        Just(BinaryOp::Concat),
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::CrowdEq),
    ]
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        prop::collection::vec((expr_strategy(), prop::option::of(ident_strategy())), 1..4),
        prop::collection::vec((ident_strategy(), prop::option::of(ident_strategy())), 1..3),
        prop::option::of(expr_strategy()),
        prop::collection::vec((expr_strategy(), any::<bool>()), 0..3),
        prop::option::of(0u64..1000),
        prop::option::of(0u64..1000),
    )
        .prop_map(
            |(distinct, proj, tables, filter, order, limit, offset)| Query {
                distinct,
                projection: proj
                    .into_iter()
                    .map(|(expr, alias)| SelectItem::Expr { expr, alias })
                    .collect(),
                from: tables
                    .into_iter()
                    .map(|(name, alias)| TableRef {
                        relation: Relation::Table { name, alias },
                        joins: vec![],
                    })
                    .collect(),
                filter,
                group_by: vec![],
                having: None,
                set_ops: vec![],
                order_by: order
                    .into_iter()
                    .map(|(expr, desc)| OrderByItem { expr, desc })
                    .collect(),
                limit,
                offset,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_render_parse_round_trip(e in expr_strategy()) {
        let rendered = e.to_string();
        let reparsed = parse_expression(&rendered)
            .unwrap_or_else(|err| panic!("failed to re-parse '{rendered}': {err}"));
        prop_assert_eq!(e, reparsed);
    }

    #[test]
    fn query_render_parse_round_trip(q in query_strategy()) {
        let stmt = Statement::Select(Box::new(q));
        let rendered = stmt.to_string();
        let reparsed = parse_statement(&rendered)
            .unwrap_or_else(|err| panic!("failed to re-parse '{rendered}': {err}"));
        prop_assert_eq!(stmt, reparsed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "[ -~]{0,80}") {
        let _ = parse_statement(&s);
    }

    #[test]
    fn parser_never_panics_on_select_prefixed_input(s in "[ -~]{0,60}") {
        let _ = parse_statement(&format!("SELECT {s}"));
    }
}
