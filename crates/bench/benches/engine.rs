//! Criterion microbenchmarks of the engine substrate: lexing, parsing,
//! binding+optimizing, and execution of representative CrowdSQL queries.
//! These measure the machine-side costs that sit under every crowd
//! round-trip (the paper's observation: humans dominate; the engine must
//! stay out of the way).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use crowddb_common::row;
use crowddb_exec::{execute, CompareCaches};
use crowddb_plan::cardinality::FnStats;
use crowddb_plan::{optimize, Binder, LogicalPlan, OptimizerConfig};
use crowddb_sql::{parse_statement, Lexer, Statement};
use crowddb_storage::Database;

const QUERIES: &[(&str, &str)] = &[
    (
        "point",
        "SELECT abstract FROM talk WHERE title = 'talk-0001'",
    ),
    (
        "filter_project",
        "SELECT title, nb_attendees FROM talk WHERE nb_attendees > 100 AND track = 'demo'",
    ),
    (
        "join",
        "SELECT t.title, n.name FROM talk t JOIN attendee n ON t.title = n.title",
    ),
    (
        "aggregate",
        "SELECT track, COUNT(*), AVG(nb_attendees) FROM talk GROUP BY track \
         HAVING COUNT(*) > 2 ORDER BY track",
    ),
    (
        "complex",
        "SELECT t.track, COUNT(*) FROM talk t \
         WHERE t.title IN (SELECT title FROM attendee) AND t.nb_attendees BETWEEN 10 AND 500 \
         GROUP BY t.track ORDER BY 2 DESC LIMIT 5",
    ),
];

fn setup_db(talks: usize) -> Database {
    let db = Database::new();
    for ddl in [
        "CREATE TABLE talk (title STRING PRIMARY KEY, abstract STRING, \
         nb_attendees INTEGER, track STRING)",
        "CREATE TABLE attendee (id INTEGER PRIMARY KEY, name STRING, title STRING)",
    ] {
        let Statement::CreateTable(ct) = parse_statement(ddl).unwrap() else {
            panic!()
        };
        let schema = db.with_catalog(|c| c.schema_from_ast(&ct)).unwrap();
        db.create_table(schema).unwrap();
    }
    for i in 0..talks {
        db.insert(
            "talk",
            row![
                format!("talk-{i:04}"),
                format!("abstract of talk {i}"),
                (i % 400) as i64,
                if i % 4 == 0 { "demo" } else { "research" }
            ],
        )
        .unwrap();
    }
    for i in 0..talks * 2 {
        db.insert(
            "attendee",
            row![
                i as i64,
                format!("person-{i}"),
                format!("talk-{:04}", i % talks.max(1))
            ],
        )
        .unwrap();
    }
    db
}

fn plan_query(db: &Database, sql: &str) -> LogicalPlan {
    let Statement::Select(q) = parse_statement(sql).unwrap() else {
        panic!()
    };
    let bound = db.with_catalog(|c| Binder::new(c).bind_query(&q)).unwrap();
    let stats_fn = |t: &str| db.stats(t).ok().map(|s| s.live_rows as u64);
    optimize(bound, &FnStats(stats_fn), &OptimizerConfig::default())
}

fn bench_lexer(c: &mut Criterion) {
    let sql = QUERIES.last().unwrap().1;
    c.bench_function("lex_complex_query", |b| {
        b.iter(|| Lexer::new(black_box(sql)).tokenize().unwrap())
    });
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("parse");
    for (name, sql) in QUERIES {
        g.bench_with_input(BenchmarkId::from_parameter(name), sql, |b, sql| {
            b.iter(|| parse_statement(black_box(sql)).unwrap())
        });
    }
    g.finish();
}

fn bench_plan(c: &mut Criterion) {
    let db = setup_db(1000);
    let mut g = c.benchmark_group("bind_optimize");
    for (name, sql) in QUERIES {
        g.bench_with_input(BenchmarkId::from_parameter(name), sql, |b, sql| {
            b.iter(|| plan_query(black_box(&db), sql))
        });
    }
    g.finish();
}

fn bench_execute(c: &mut Criterion) {
    let db = setup_db(1000);
    let caches = CompareCaches::default();
    let mut g = c.benchmark_group("execute_1k_rows");
    for (name, sql) in QUERIES {
        let plan = plan_query(&db, sql);
        g.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| execute(black_box(&db), &caches, plan).unwrap())
        });
    }
    g.finish();
}

fn bench_insert(c: &mut Criterion) {
    c.bench_function("insert_row", |b| {
        let db = setup_db(0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.insert("attendee", row![i as i64, format!("p{i}"), "talk-0000"])
                .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_lexer,
    bench_parser,
    bench_plan,
    bench_execute,
    bench_insert
);
criterion_main!(benches);
