//! Criterion microbenchmarks of the marketplace simulator: event
//! throughput and posting overhead. The simulator must stay orders of
//! magnitude faster than virtual time so the experiment harness can
//! sweep weeks of marketplace activity in seconds.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use crowddb_common::DataType;
use crowddb_platform::{PerfectModel, Platform, SimPlatform, TaskKind, TaskSpec};

fn probe_spec(i: usize) -> TaskSpec {
    TaskSpec::new(TaskKind::Probe {
        table: "talk".into(),
        known: vec![("title".into(), format!("t{i}"))],
        asked: vec![("nb_attendees".into(), DataType::Int)],
        instructions: String::new(),
    })
    .reward(3)
    .replicate(1)
}

fn bench_post(c: &mut Criterion) {
    let mut g = c.benchmark_group("post_hits");
    for n in [10usize, 100, 1000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut p = SimPlatform::amt(1, Box::new(PerfectModel));
                p.post((0..n).map(probe_spec).collect()).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_simulated_hour(c: &mut Criterion) {
    c.bench_function("advance_one_virtual_hour_100_hits", |b| {
        b.iter(|| {
            let mut p = SimPlatform::amt(2, Box::new(PerfectModel));
            p.post((0..100).map(probe_spec).collect()).unwrap();
            p.advance(black_box(3600.0));
            p.collect().len()
        })
    });
}

fn bench_full_completion(c: &mut Criterion) {
    c.bench_function("run_100_hits_to_completion", |b| {
        b.iter(|| {
            let mut p = SimPlatform::amt(3, Box::new(PerfectModel));
            let hits = p.post((0..100).map(probe_spec).collect()).unwrap();
            let mut guard = 0;
            while !hits.iter().all(|h| p.is_complete(*h)) && guard < 10_000 {
                p.advance(600.0);
                guard += 1;
            }
            p.collect().len()
        })
    });
}

criterion_group!(
    benches,
    bench_post,
    bench_simulated_hour,
    bench_full_completion
);
criterion_main!(benches);
