//! Criterion microbenchmarks of the storage substrate: row codec,
//! indexed inserts, point lookups vs scans, and snapshot round-trips.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use crowddb_common::{row, Row, Value};
use crowddb_sql::{parse_statement, Statement};
use crowddb_storage::{codec, Database};

fn make_db(rows: usize) -> Database {
    let db = Database::new();
    let Statement::CreateTable(ct) = parse_statement(
        "CREATE TABLE talk (title STRING PRIMARY KEY, abstract STRING, nb INTEGER)",
    )
    .unwrap() else {
        panic!()
    };
    let schema = db.with_catalog(|c| c.schema_from_ast(&ct)).unwrap();
    db.create_table(schema).unwrap();
    for i in 0..rows {
        db.insert(
            "talk",
            row![format!("talk-{i:05}"), format!("abstract {i}"), i as i64],
        )
        .unwrap();
    }
    db
}

fn bench_codec(c: &mut Criterion) {
    let rows: Vec<Row> = (0..1000)
        .map(|i| row![i as i64, format!("value-{i}"), i % 2 == 0, Value::CNull])
        .collect();
    c.bench_function("codec_encode_1k_rows", |b| {
        b.iter(|| codec::encode_rows(black_box(&rows)))
    });
    let encoded = codec::encode_rows(&rows);
    c.bench_function("codec_decode_1k_rows", |b| {
        b.iter(|| codec::decode_rows(black_box(encoded.clone())).unwrap())
    });
}

fn bench_insert_with_pk_index(c: &mut Criterion) {
    c.bench_function("insert_row_with_pk_index", |b| {
        let db = make_db(0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.insert("talk", row![format!("t{i}"), "a", i as i64])
                .unwrap()
        })
    });
}

fn bench_lookup_vs_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("pk_lookup_vs_scan");
    for n in [100usize, 1000, 10_000] {
        let db = make_db(n);
        let key = vec![Value::str(format!("talk-{:05}", n / 2))];
        g.bench_with_input(BenchmarkId::new("pk_lookup", n), &db, |b, db| {
            b.iter(|| {
                db.with_table("talk", |t| t.lookup_pk(black_box(&key)).map(|v| v.len()))
                    .unwrap()
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("full_scan", n), &db, |b, db| {
            b.iter(|| {
                db.with_table("talk", |t| t.scan_rows().map(|v| v.len()))
                    .unwrap()
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let db = make_db(5000);
    c.bench_function("snapshot_5k_rows", |b| b.iter(|| db.snapshot()));
    let snap = db.snapshot().unwrap();
    c.bench_function("restore_5k_rows", |b| {
        b.iter(|| Database::restore(black_box(snap.clone())).unwrap())
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_insert_with_pk_index,
    bench_lookup_vs_scan,
    bench_snapshot
);
criterion_main!(benches);
