//! Criterion benchmarks of complete crowd round-trips through the whole
//! stack (engine + task manager + simulated marketplace) — the
//! "experiment inner loops" that the `exp_*` binaries sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use crowddb_bench::workloads;
use crowddb_bench::world::{CompanyWorld, ProfessorWorld};
use crowddb_core::{CrowdConfig, CrowdDB};
use crowddb_platform::SimPlatform;
use crowddb_quality::VoteConfig;

fn bench_probe_roundtrip(c: &mut Criterion) {
    c.bench_function("crowd_probe_roundtrip_20_profs_x3", |b| {
        let corpus = workloads::professors(20, 5);
        b.iter(|| {
            let db = CrowdDB::with_config(CrowdConfig {
                vote: VoteConfig::replicated(3),
                ..CrowdConfig::default()
            });
            db.execute_local(
                "CREATE TABLE professor (name STRING PRIMARY KEY, \
                 department CROWD STRING, email CROWD STRING)",
            )
            .unwrap();
            for p in &corpus {
                db.execute_local(&format!(
                    "INSERT INTO professor (name) VALUES ('{}')",
                    p.name
                ))
                .unwrap();
            }
            let mut amt = SimPlatform::amt(1, Box::new(ProfessorWorld::new(&corpus)));
            db.execute("SELECT name, department FROM professor", &mut amt)
                .unwrap()
                .rows
                .len()
        })
    });
}

fn bench_crowdequal_roundtrip(c: &mut Criterion) {
    c.bench_function("crowdequal_roundtrip_20_pairs_x3", |b| {
        let corpus = workloads::companies(10, 6);
        let pairs = workloads::entity_pairs(&corpus, 6);
        b.iter(|| {
            let db = CrowdDB::with_config(CrowdConfig {
                vote: VoteConfig::replicated(3),
                ..CrowdConfig::default()
            });
            db.execute_local("CREATE TABLE pairs (id INTEGER PRIMARY KEY, a STRING, b STRING)")
                .unwrap();
            for (i, (a, b2, _)) in pairs.iter().take(20).enumerate() {
                db.execute_local(&format!(
                    "INSERT INTO pairs VALUES ({i}, '{}', '{}')",
                    a.replace('\'', "''"),
                    b2.replace('\'', "''")
                ))
                .unwrap();
            }
            let mut amt = SimPlatform::amt(2, Box::new(CompanyWorld::new(&corpus)));
            db.execute("SELECT id FROM pairs WHERE CROWDEQUAL(a, b)", &mut amt)
                .unwrap()
                .rows
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_probe_roundtrip, bench_crowdequal_roundtrip
}
criterion_main!(benches);
