//! Shared experiment-harness utilities: platform pumping, time series,
//! and table/JSON output.

use serde::Serialize;

use crowddb_platform::{HitId, Platform, TaskResponse};

/// A named series of `(x, y)` points — one line of a paper figure.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label (e.g. `"$0.01"`).
    pub label: String,
    /// Points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }
}

/// A complete experiment output: metadata + table rows + optional series.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentOutput {
    /// Experiment id from DESIGN.md (e.g. `"E1"`).
    pub id: String,
    /// What the paper artifact is.
    pub paper_artifact: String,
    /// Column headers of the printed table.
    pub headers: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Figure series, if the artifact is a plot.
    pub series: Vec<Series>,
    /// Free-form notes (expected shape vs observed).
    pub notes: Vec<String>,
    /// Analyzed physical-operator tree lines (one entry per operator,
    /// from `crowddb_exec::render_analyzed`), when the experiment
    /// executes plans and wants per-operator accounting in the record.
    pub op_stats: Vec<String>,
}

impl ExperimentOutput {
    /// New output skeleton.
    pub fn new(id: &str, paper_artifact: &str) -> ExperimentOutput {
        ExperimentOutput {
            id: id.to_string(),
            paper_artifact: paper_artifact.to_string(),
            headers: Vec::new(),
            rows: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
            op_stats: Vec::new(),
        }
    }

    /// Print the experiment as a human-readable report plus a trailing
    /// JSON line (machine-readable).
    pub fn print(&self) {
        println!("==== {} — {} ====", self.id, self.paper_artifact);
        if !self.headers.is_empty() {
            let widths: Vec<usize> = self
                .headers
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    self.rows
                        .iter()
                        .map(|r| r.get(i).map(String::len).unwrap_or(0))
                        .chain(std::iter::once(h.len()))
                        .max()
                        .unwrap_or(0)
                })
                .collect();
            let line = |cells: &[String]| {
                let mut s = String::from("|");
                for (i, c) in cells.iter().enumerate() {
                    s.push_str(&format!(
                        " {:<w$} |",
                        c,
                        w = widths.get(i).copied().unwrap_or(c.len())
                    ));
                }
                s
            };
            println!("{}", line(&self.headers));
            println!(
                "|{}|",
                widths
                    .iter()
                    .map(|w| "-".repeat(w + 2))
                    .collect::<Vec<_>>()
                    .join("|")
            );
            for r in &self.rows {
                println!("{}", line(r));
            }
        }
        for s in &self.series {
            println!("series '{}':", s.label);
            for (x, y) in &s.points {
                println!("  {x:>10.2}  {y:>10.4}");
            }
        }
        if !self.op_stats.is_empty() {
            println!("per-operator stats:");
            for l in &self.op_stats {
                println!("  {l}");
            }
        }
        for n in &self.notes {
            println!("note: {n}");
        }
        println!(
            "JSON: {}",
            serde_json::to_string(self).unwrap_or_else(|e| format!("<serialization failed: {e}>"))
        );
        println!();
    }
}

/// Pump a platform until all `hits` are complete (or `max_secs` virtual
/// seconds elapse), sampling completion fraction every `sample_secs`.
/// Returns `(responses, completion_series)`.
pub fn pump_until_complete(
    platform: &mut dyn Platform,
    hits: &[HitId],
    step_secs: f64,
    max_secs: f64,
    sample_secs: f64,
) -> (Vec<TaskResponse>, Vec<(f64, f64)>) {
    let mut responses = Vec::new();
    let mut series = Vec::new();
    let mut next_sample = 0.0;
    let start = platform.now();
    loop {
        let elapsed = platform.now() - start;
        if elapsed >= next_sample {
            let done = hits.iter().filter(|h| platform.is_complete(**h)).count();
            series.push((elapsed, done as f64 / hits.len().max(1) as f64));
            next_sample += sample_secs;
        }
        if hits.iter().all(|h| platform.is_complete(*h)) || elapsed >= max_secs {
            responses.extend(platform.collect());
            let done = hits.iter().filter(|h| platform.is_complete(**h)).count();
            series.push((elapsed, done as f64 / hits.len().max(1) as f64));
            return (responses, series);
        }
        platform.advance(step_secs);
        responses.extend(platform.collect());
    }
}

/// Time (virtual seconds) at which the completion series first reaches
/// `fraction`, if it does.
pub fn time_to_fraction(series: &[(f64, f64)], fraction: f64) -> Option<f64> {
    series.iter().find(|(_, f)| *f >= fraction).map(|(t, _)| *t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowddb_platform::{Answer, MockPlatform, TaskKind, TaskSpec};

    #[test]
    fn pump_completes_mock_instantly() {
        let mut p = MockPlatform::unanimous(|_| Answer::Yes);
        let hits = p
            .post(vec![TaskSpec::new(TaskKind::Equal {
                left: "a".into(),
                right: "b".into(),
                instruction: "?".into(),
            })])
            .unwrap();
        let (responses, series) = pump_until_complete(&mut p, &hits, 1.0, 100.0, 1.0);
        assert_eq!(responses.len(), 3);
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn time_to_fraction_finds_crossing() {
        let series = vec![(0.0, 0.0), (10.0, 0.4), (20.0, 0.9), (30.0, 1.0)];
        assert_eq!(time_to_fraction(&series, 0.5), Some(20.0));
        assert_eq!(time_to_fraction(&series, 1.0), Some(30.0));
        assert_eq!(time_to_fraction(&series, 1.1), None);
    }

    #[test]
    fn experiment_output_prints_without_panic() {
        let mut out = ExperimentOutput::new("E0", "smoke test");
        out.headers = vec!["a".into(), "b".into()];
        out.rows = vec![vec!["1".into(), "2".into()]];
        out.series.push(Series {
            label: "s".into(),
            points: vec![(0.0, 0.0), (1.0, 1.0)],
        });
        out.notes.push("shape holds".into());
        out.print();
    }
}
