//! E16 — macro-benchmark: seeded mixed workload with standing queries.
//!
//! ```text
//! cargo run --release -p crowddb-bench --bin exp_macro
//! BENCH_JSON=BENCH_3.json cargo run --release -p crowddb-bench --bin exp_macro
//! EXP_MACRO_SMOKE=1 cargo run -p crowddb-bench --bin exp_macro      # CI smoke
//! EXP_MACRO_BASELINE=BENCH_3.json ...                               # QPS gate
//! ```
//!
//! A NEXMark-style closed loop against one *durable* embedded engine:
//! every operation is drawn from a seeded mix of local point reads,
//! DML (insert/update/delete), crowd probes over a rotating title pool,
//! CrowdJoins against an open CROWD table, and `CROWDORDER` rankings —
//! while two standing queries (`SUBSCRIBE`) watch the tables the whole
//! time. Halfway through each scale the engine is closed and reopened
//! (checkpoint → recovery) and the subscriptions re-registered, so the
//! numbers include a real restart.
//!
//! Reported per scale: overall QPS with p50/p95/p99 operation latency,
//! plus the subscription **delta latency** — the wall-clock span from
//! submitting a DML statement to holding its delta batch from the
//! `Sessions` standing query (the span covers the synchronous
//! recompute-and-diff plus the poll).
//!
//! With `EXP_MACRO_BASELINE=<BENCH_3.json>` the run compares its QPS per
//! scale against the committed baseline and exits nonzero on a
//! regression beyond `EXP_MACRO_MAX_REGRESSION` (default 0.20).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crowddb_bench::harness::ExperimentOutput;
use crowddb_core::{CrowdConfig, CrowdDB};
use crowddb_platform::{Answer, ClosureModel, Platform, SimPlatform, TaskKind};
use crowddb_wal::testutil::TestDir;

const TITLES: usize = 16;
const PICS: usize = 8;

/// Deterministic world: probes answered from the title, joins contribute
/// two tags per talk, orderings follow lexicographic ground truth.
fn world() -> Box<dyn Platform> {
    let model = ClosureModel::new(|task: &TaskKind| match task {
        TaskKind::Probe { known, asked, .. } => {
            let title = known
                .iter()
                .find(|(k, _)| k == "title")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            Answer::Form(
                asked
                    .iter()
                    .map(|(col, _)| (col.clone(), format!("{col} of {title}")))
                    .collect(),
            )
        }
        TaskKind::NewTuples { preset, .. } => {
            let talk = preset
                .iter()
                .find(|(k, _)| k == "talk")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            Answer::Tuples(vec![
                vec![("tag".into(), format!("{talk}-topic"))],
                vec![("tag".into(), format!("{talk}-track"))],
            ])
        }
        TaskKind::Order { left, right, .. } => {
            if left <= right {
                Answer::Left
            } else {
                Answer::Right
            }
        }
        _ => Answer::Blank,
    });
    Box::new(SimPlatform::amt(97, Box::new(model)))
}

fn seed_schema(db: &CrowdDB, rows: usize) {
    db.execute_local(
        "CREATE TABLE Talk (
            title STRING PRIMARY KEY,
            abstract CROWD STRING )",
    )
    .expect("talk ddl");
    let values: Vec<String> = (0..TITLES).map(|i| format!("('talk-{i:02}')")).collect();
    db.execute_local(&format!(
        "INSERT INTO Talk (title) VALUES {}",
        values.join(", ")
    ))
    .expect("talk rows");

    db.execute_local("CREATE CROWD TABLE tag (talk STRING, tag STRING, PRIMARY KEY (talk, tag))")
        .expect("tag ddl");

    db.execute_local("CREATE TABLE Sessions (k INTEGER PRIMARY KEY, room STRING)")
        .expect("sessions ddl");
    let values: Vec<String> = (0..rows)
        .map(|i| format!("({i}, 'room-{}')", i % 7))
        .collect();
    db.execute_local(&format!(
        "INSERT INTO Sessions (k, room) VALUES {}",
        values.join(", ")
    ))
    .expect("sessions rows");

    db.execute_local("CREATE TABLE Pic (label STRING PRIMARY KEY)")
        .expect("pic ddl");
    let values: Vec<String> = (0..PICS).map(|i| format!("('pic-{i}')")).collect();
    db.execute_local(&format!(
        "INSERT INTO Pic (label) VALUES {}",
        values.join(", ")
    ))
    .expect("pic rows");
}

/// Register the two standing queries and drain their initial snapshots.
/// Returns the id of the `Sessions` watch (used for delta-latency
/// measurement; the `Talk` watch just rides along, exercising the
/// crowd-settlement trigger path).
fn register_watches(db: &CrowdDB) -> u64 {
    let (sessions_sub, _) = db
        .subscribe_id("SELECT k, room FROM Sessions")
        .expect("subscribe sessions");
    let (talk_sub, _) = db
        .subscribe_id("SELECT title FROM Talk")
        .expect("subscribe talk");
    for id in [sessions_sub, talk_sub] {
        while db.poll_subscription(id).expect("drain snapshot").is_some() {}
    }
    sessions_sub
}

fn percentile(sorted_micros: &[u64], p: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() as f64 - 1.0) * p).round() as usize;
    sorted_micros[idx] as f64 / 1000.0
}

struct ScaleResult {
    ops: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    delta_p50_ms: f64,
    delta_p95_ms: f64,
    delta_p99_ms: f64,
    deltas: u64,
    crowd_cents: u64,
}

fn run_scale(rows: usize, ops: usize, seed: u64) -> ScaleResult {
    let dir = TestDir::new(&format!("exp-macro-{rows}"));
    let config = CrowdConfig::fast_test();
    let mut db =
        CrowdDB::open_with_config(dir.path(), config.clone()).expect("open durable engine");
    seed_schema(&db, rows);
    let mut sessions_sub = register_watches(&db);
    let mut platform = world();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_k = rows as i64; // fresh primary keys for inserts
    let mut latencies: Vec<u64> = Vec::with_capacity(ops);
    let mut delta_latencies: Vec<u64> = Vec::new();
    let mut deltas: u64 = 0;
    let mut crowd_cents: u64 = 0;
    let started = Instant::now();

    for op in 0..ops {
        // The restart: close (final checkpoint), reopen (recovery),
        // re-register the standing queries. Sits in the middle so both
        // halves contribute to the same latency distribution.
        if op == ops / 2 {
            db.close().expect("mid-workload close");
            db = CrowdDB::open_with_config(dir.path(), config.clone()).expect("reopen");
            sessions_sub = register_watches(&db);
            platform = world();
        }

        let dice = rng.gen_range(0..100u32);
        let t = Instant::now();
        if dice < 55 {
            // Local point read.
            let k = rng.gen_range(0..rows as i64);
            db.execute(
                &format!("SELECT room FROM Sessions WHERE k = {k}"),
                platform.as_mut(),
            )
            .expect("local probe");
        } else if dice < 75 {
            // DML with end-to-end delta latency: statement submit →
            // delta batch of the Sessions standing query in hand.
            let sql = match dice % 3 {
                0 => {
                    next_k += 1;
                    format!("INSERT INTO Sessions (k, room) VALUES ({next_k}, 'room-x')")
                }
                1 => format!(
                    "UPDATE Sessions SET room = 'room-u{}' WHERE k = {}",
                    op % 7,
                    rng.gen_range(0..rows as i64)
                ),
                _ => {
                    next_k += 1;
                    format!("INSERT INTO Sessions (k, room) VALUES ({next_k}, 'room-y')")
                }
            };
            db.execute(&sql, platform.as_mut()).expect("dml");
            while let Some(_batch) = db.poll_subscription(sessions_sub).expect("poll") {
                deltas += 1;
            }
            delta_latencies.push(t.elapsed().as_micros() as u64);
        } else if dice < 90 {
            // Crowd probe over a rotating pool: early touches pay the
            // simulated crowd, later ones hit memorized answers.
            let title = format!("talk-{:02}", rng.gen_range(0..TITLES));
            let r = db
                .execute(
                    &format!("SELECT abstract FROM Talk WHERE title = '{title}'"),
                    platform.as_mut(),
                )
                .expect("crowd probe");
            crowd_cents += r.crowd.cents_spent;
        } else if dice < 95 {
            // CrowdJoin: first run fills the open `tag` table.
            let r = db
                .execute(
                    "SELECT t.title, g.tag FROM Talk t JOIN tag g ON t.title = g.talk",
                    platform.as_mut(),
                )
                .expect("crowd join");
            crowd_cents += r.crowd.cents_spent;
        } else {
            // CROWDORDER over a small corpus; comparisons memorize.
            let r = db
                .execute(
                    "SELECT label FROM Pic ORDER BY CROWDORDER(label, 'Which is better?')",
                    platform.as_mut(),
                )
                .expect("crowdorder");
            crowd_cents += r.crowd.cents_spent;
        }
        latencies.push(t.elapsed().as_micros() as u64);
    }

    let elapsed = started.elapsed().as_secs_f64();
    db.close().expect("final close");
    latencies.sort_unstable();
    delta_latencies.sort_unstable();
    ScaleResult {
        ops,
        qps: ops as f64 / elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        delta_p50_ms: percentile(&delta_latencies, 0.50),
        delta_p95_ms: percentile(&delta_latencies, 0.95),
        delta_p99_ms: percentile(&delta_latencies, 0.99),
        deltas,
        crowd_cents,
    }
}

fn main() {
    let smoke = std::env::var("EXP_MACRO_SMOKE").is_ok();
    // The smoke scale is *identical* to the first full scale (it runs in
    // well under a second) so a smoke run is directly QPS-comparable to
    // a committed full-mode BENCH_3.json.
    let scales: &[(usize, usize)] = if smoke {
        &[(200, 600)]
    } else {
        &[(200, 600), (1000, 1200), (4000, 1800)]
    };

    let mut out = ExperimentOutput::new(
        "E16",
        "mixed macro-workload: QPS, latency percentiles, subscription delta latency, \
         restart mid-run",
    );
    out.headers = vec![
        "rows".into(),
        "ops".into(),
        "qps".into(),
        "p50 ms".into(),
        "p95 ms".into(),
        "p99 ms".into(),
        "delta p50 ms".into(),
        "delta p95 ms".into(),
        "delta p99 ms".into(),
        "deltas".into(),
        "crowd ¢".into(),
    ];

    for &(rows, ops) in scales {
        let r = run_scale(rows, ops, 42);
        assert!(r.deltas > 0, "the DML mix must produce subscription deltas");
        out.rows.push(vec![
            rows.to_string(),
            r.ops.to_string(),
            format!("{:.0}", r.qps),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            format!("{:.2}", r.p99_ms),
            format!("{:.2}", r.delta_p50_ms),
            format!("{:.2}", r.delta_p95_ms),
            format!("{:.2}", r.delta_p99_ms),
            r.deltas.to_string(),
            r.crowd_cents.to_string(),
        ]);
    }

    out.notes.push(
        "mix per op: 55% local point reads, 20% DML (each timed to its standing-query \
         delta batch), 15% crowd probes, 5% CrowdJoins, 5% CROWDORDER; one engine \
         restart (checkpoint → recovery → re-subscribe) halfway through every scale"
            .into(),
    );
    out.notes.push(
        "expected shape: QPS falls as the watched table grows (each DML pays a \
         recompute-and-diff over Sessions); delta latency tracks table size; crowd \
         cents flatten once titles, tags, and comparisons are memorized"
            .into(),
    );

    out.print();
    if let Ok(path) = std::env::var("BENCH_JSON") {
        std::fs::write(&path, render_json(&out)).expect("write BENCH_JSON");
        eprintln!("wrote {path}");
    }
    if let Ok(baseline) = std::env::var("EXP_MACRO_BASELINE") {
        gate_against_baseline(&out, &baseline);
    }
}

/// QPS regression gate: for every scale present in both this run and the
/// baseline BENCH_3.json, fail if QPS dropped more than the threshold
/// (`EXP_MACRO_MAX_REGRESSION`, default 0.20).
fn gate_against_baseline(out: &ExperimentOutput, path: &str) {
    let threshold: f64 = std::env::var("EXP_MACRO_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.20);
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("baseline {path}: {e}"));
    let baseline = parse_qps_rows(&text);
    let mut compared = 0;
    for row in &out.rows {
        let (scale, qps) = (row[0].as_str(), row[2].parse::<f64>().unwrap_or(0.0));
        let Some(base_qps) = baseline.iter().find(|(s, _)| s == scale).map(|(_, q)| *q) else {
            continue;
        };
        compared += 1;
        let floor = base_qps * (1.0 - threshold);
        if qps < floor {
            eprintln!(
                "QPS regression at scale {scale}: {qps:.0} < {floor:.0} \
                 (baseline {base_qps:.0}, threshold {:.0}%)",
                threshold * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "scale {scale}: qps {qps:.0} vs baseline {base_qps:.0} — within {:.0}%",
            threshold * 100.0
        );
    }
    assert!(compared > 0, "no comparable scales in baseline {path}");
}

/// Extract `(scale, qps)` pairs from a BENCH_3.json produced by
/// [`render_json`]: each data row renders as `["rows", "ops", "qps", ...]`.
fn parse_qps_rows(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let Some(start) = text.find("\"rows\": [") else {
        return rows;
    };
    for line in text[start..].lines().skip(1) {
        let line = line.trim().trim_end_matches(',');
        if line.starts_with(']') {
            break;
        }
        let cells: Vec<&str> = line
            .trim_start_matches('[')
            .trim_end_matches(']')
            .split(", ")
            .map(|c| c.trim_matches('"'))
            .collect();
        if cells.len() >= 3 {
            if let Ok(qps) = cells[2].parse::<f64>() {
                rows.push((cells[0].to_string(), qps));
            }
        }
    }
    rows
}

/// Hand-rolled JSON for the trajectory record: the workspace's
/// serde_json may be an offline stub, and this file is checked in, so
/// the bytes must not depend on which one is linked.
fn render_json(out: &ExperimentOutput) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn arr(items: &[String]) -> String {
        let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
        format!("[{}]", quoted.join(", "))
    }
    let rows: Vec<String> = out.rows.iter().map(|r| format!("    {}", arr(r))).collect();
    format!(
        "{{\n  \"id\": \"{}\",\n  \"paper_artifact\": \"{}\",\n  \"headers\": {},\n  \
         \"rows\": [\n{}\n  ],\n  \"notes\": {},\n  \"op_stats\": {}\n}}\n",
        esc(&out.id),
        esc(&out.paper_artifact),
        arr(&out.headers),
        rows.join(",\n"),
        arr(&out.notes),
        arr(&out.op_stats),
    )
}
