//! E1 — Responsiveness vs reward (SIGMOD 2011 Fig. "micro benchmarks:
//! varying reward").
//!
//! The paper posted groups of identical HITs at rewards from $0.01 to
//! $0.04 and plotted the percentage of HITs completed over time: higher
//! rewards complete faster, with diminishing returns. This harness posts
//! 100 single-assignment probe HITs per reward level on a fresh simulated
//! marketplace and reports the same curves.

use crowddb_bench::harness::{pump_until_complete, time_to_fraction, ExperimentOutput, Series};
use crowddb_common::DataType;
use crowddb_platform::{PerfectModel, Platform, SimPlatform, TaskKind, TaskSpec};

fn probe_spec(i: usize, reward: u32) -> TaskSpec {
    TaskSpec::new(TaskKind::Probe {
        table: "talk".into(),
        known: vec![("title".into(), format!("talk-{i:03}"))],
        asked: vec![("nb_attendees".into(), DataType::Int)],
        instructions: "How many people attended this talk?".into(),
    })
    .reward(reward)
    .replicate(1)
}

fn main() {
    let mut out = ExperimentOutput::new(
        "E1",
        "completion vs reward (paper: higher pay completes faster, diminishing returns)",
    );
    out.headers = vec![
        "reward (cents)".into(),
        "t 50% (min)".into(),
        "t 95% (min)".into(),
        "t 100% (min)".into(),
        "assignments".into(),
        "cost (cents)".into(),
    ];

    const HITS: usize = 100;
    const MAX_SECS: f64 = 72.0 * 3600.0;
    for reward in [1u32, 2, 3, 4, 8] {
        // Fresh marketplace per reward level (same seed: identical worker
        // population, so the reward is the only variable).
        let mut platform = SimPlatform::amt(1234, Box::new(PerfectModel));
        let specs: Vec<TaskSpec> = (0..HITS).map(|i| probe_spec(i, reward)).collect();
        let hits = platform.post(specs).expect("post");
        let (_responses, series) =
            pump_until_complete(&mut platform, &hits, 120.0, MAX_SECS, 600.0);
        let minutes = |t: Option<f64>| {
            t.map(|s| format!("{:.0}", s / 60.0))
                .unwrap_or_else(|| ">budget".into())
        };
        let stats = platform.stats();
        out.rows.push(vec![
            reward.to_string(),
            minutes(time_to_fraction(&series, 0.5)),
            minutes(time_to_fraction(&series, 0.95)),
            minutes(time_to_fraction(&series, 1.0)),
            stats.assignments_completed.to_string(),
            stats.cents_spent.to_string(),
        ]);
        out.series.push(Series {
            label: format!("{reward}c"),
            points: series
                .into_iter()
                .map(|(t, f)| (t / 60.0, f * 100.0))
                .collect(),
        });
    }
    out.notes.push(
        "expected shape: time-to-completion decreases monotonically with reward; \
         1c HITs are accepted reluctantly (reservation wages), ≥4c saturates"
            .into(),
    );
    out.print();
}
