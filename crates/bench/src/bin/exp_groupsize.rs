//! E2 — Responsiveness vs HIT-group size (SIGMOD 2011: "the number of
//! HITs of a HIT group matters").
//!
//! AMT lists identical HITs as one *group*; workers gravitate to large
//! groups (more work without re-qualification, higher list placement).
//! The paper observed that per-HIT completion is *faster* in larger
//! groups. The simulator reproduces the effect through its
//! `group_size^α` attention term; this harness measures it.

use crowddb_bench::harness::{pump_until_complete, time_to_fraction, ExperimentOutput, Series};
use crowddb_common::DataType;
use crowddb_platform::{PerfectModel, Platform, SimPlatform, TaskKind, TaskSpec};

fn probe_spec(i: usize) -> TaskSpec {
    TaskSpec::new(TaskKind::Probe {
        table: "talk".into(),
        known: vec![("title".into(), format!("talk-{i:04}"))],
        asked: vec![("abstract".into(), DataType::Str)],
        instructions: String::new(),
    })
    .reward(2)
    .replicate(1)
}

fn main() {
    let mut out = ExperimentOutput::new(
        "E2",
        "per-HIT completion time vs HIT-group size (paper: larger groups complete \
         faster per HIT)",
    );
    out.headers = vec![
        "group size".into(),
        "t 50% (min)".into(),
        "t 100% (min)".into(),
        "min/HIT".into(),
    ];

    const MAX_SECS: f64 = 14.0 * 24.0 * 3600.0;
    for group in [1usize, 5, 25, 100] {
        let mut platform = SimPlatform::amt(777, Box::new(PerfectModel));
        // Background competition: another requester's large HIT group is
        // always on the platform (as on real AMT), so worker attention to
        // our group depends on its size.
        let distractors: Vec<TaskSpec> = (0..200)
            .map(|i| {
                TaskSpec::new(TaskKind::Equal {
                    left: format!("x{i}"),
                    right: format!("y{i}"),
                    instruction: "background noise task".into(),
                })
                .reward(2)
                .replicate(1)
            })
            .collect();
        platform.post(distractors).expect("post background");
        let specs: Vec<TaskSpec> = (0..group).map(probe_spec).collect();
        let hits = platform.post(specs).expect("post");
        let (_r, series) = pump_until_complete(&mut platform, &hits, 120.0, MAX_SECS, 600.0);
        let t_all = time_to_fraction(&series, 1.0);
        let minutes = |t: Option<f64>| {
            t.map(|s| format!("{:.0}", s / 60.0))
                .unwrap_or_else(|| ">budget".into())
        };
        out.rows.push(vec![
            group.to_string(),
            minutes(time_to_fraction(&series, 0.5)),
            minutes(t_all),
            t_all
                .map(|s| format!("{:.1}", s / 60.0 / group as f64))
                .unwrap_or_else(|| "-".into()),
        ]);
        out.series.push(Series {
            label: format!("{group} HITs"),
            points: series
                .into_iter()
                .map(|(t, f)| (t / 60.0, f * 100.0))
                .collect(),
        });
    }
    out.notes.push(
        "expected shape: minutes-per-HIT drops sharply as group size grows; a \
         single lonely HIT waits longest for worker attention"
            .into(),
    );
    out.print();
}
