//! E7 — CROWDORDER ranking quality (SIGMOD 2011: picture-ordering
//! experiment).
//!
//! The paper had the crowd rank pictures by subjective criteria and
//! measured how well the aggregated order matched consensus. Here the
//! ground truth is a latent score per item; simulated judges follow a
//! Bradley-Terry choice model whose noise we sweep. The harness runs
//! `ORDER BY CROWDORDER(...)` end-to-end and scores the produced ranking
//! with Kendall tau and adjacent-pair accuracy, reporting the comparison
//! budget actually spent (the paper's quicksort needs ~n·log n of the
//! n(n−1)/2 possible pairs).

use crowddb_bench::harness::ExperimentOutput;
use crowddb_bench::workloads;
use crowddb_bench::world::RankingWorld;
use crowddb_core::{CrowdConfig, CrowdDB};
use crowddb_platform::SimPlatform;
use crowddb_quality::rank;
use crowddb_quality::VoteConfig;

fn main() {
    let mut out = ExperimentOutput::new(
        "E7",
        "CROWDORDER ranking quality vs judge noise and replication",
    );
    out.headers = vec![
        "judge noise".into(),
        "assignments".into(),
        "kendall tau".into(),
        "adjacent acc".into(),
        "comparisons".into(),
        "of possible".into(),
        "rounds".into(),
    ];

    const N: usize = 18;
    let corpus = workloads::ranked_items(N, 7);
    let truth = workloads::true_ranking(&corpus);
    let possible = N * (N - 1) / 2;

    for (noise, replication) in [
        (0.0, 1usize),
        (0.15, 1),
        (0.15, 3),
        (0.15, 5),
        (0.35, 3),
        (0.35, 5),
    ] {
        let db = CrowdDB::with_config(CrowdConfig {
            vote: VoteConfig::replicated(replication),
            reward_cents: 2,
            max_rounds: 32,
            ..CrowdConfig::default()
        });
        db.execute_local("CREATE TABLE picture (label STRING PRIMARY KEY)")
            .expect("ddl");
        for item in &corpus {
            db.execute_local(&format!("INSERT INTO picture VALUES ('{}')", item.label))
                .expect("insert");
        }
        let mut amt = SimPlatform::amt(1991, Box::new(RankingWorld::new(&corpus, noise)));
        let r = db
            .execute(
                "SELECT label FROM picture \
                 ORDER BY CROWDORDER(label, 'Which picture is better?')",
                &mut amt,
            )
            .expect("crowdorder query");

        // Produced ranking (best first) → corpus indexes.
        let produced: Vec<usize> = r
            .rows
            .iter()
            .map(|row| {
                let label = row[0].to_string();
                corpus
                    .iter()
                    .position(|i| i.label == label)
                    .expect("known item")
            })
            .collect();
        let tau = rank::kendall_tau(&produced, &truth);
        let adj = rank::adjacent_accuracy(&produced, &truth);
        out.rows.push(vec![
            format!("{noise:.2}"),
            replication.to_string(),
            format!("{tau:.3}"),
            format!("{:.1}%", adj * 100.0),
            r.crowd.tasks_posted.to_string(),
            format!(
                "{:.0}%",
                100.0 * r.crowd.tasks_posted as f64 / possible as f64
            ),
            r.crowd.rounds.to_string(),
        ]);
    }

    out.notes.push(format!(
        "{N} items, {possible} possible pairs; the crowd quicksort touches a subset"
    ));
    out.notes.push(
        "expected shape: tau ≈ 1.0 with noiseless judges; tau degrades with noise \
         and recovers with replication (majority voting over comparisons) — the \
         paper's ordering-quality result"
            .into(),
    );
    out.print();
}
