//! E3 — The worker community (SIGMOD 2011: "a small number of workers
//! did most of the work").
//!
//! The paper analyzed who actually answered its HITs and found a heavily
//! skewed community: the top handful of workers completed a large share
//! of all assignments, and the same workers kept coming back across
//! experiments. This harness posts a large batch of tasks, routes every
//! completed assignment through the Worker Relationship Manager, and
//! reports the share-of-work distribution.

use std::collections::HashMap;

use crowddb_bench::harness::{pump_until_complete, ExperimentOutput, Series};
use crowddb_common::DataType;
use crowddb_platform::{
    PerfectModel, Platform, SimPlatform, TaskKind, TaskSpec, WorkerId, WorkerRelationshipManager,
};

fn main() {
    let mut out = ExperimentOutput::new(
        "E3",
        "worker community skew (paper: top workers carry most assignments; \
         community persists across experiments)",
    );

    const HITS: usize = 400;
    let mut platform = SimPlatform::amt(2025, Box::new(PerfectModel));
    let specs: Vec<TaskSpec> = (0..HITS)
        .map(|i| {
            TaskSpec::new(TaskKind::Probe {
                table: "talk".into(),
                known: vec![("title".into(), format!("t{i}"))],
                asked: vec![("nb_attendees".into(), DataType::Int)],
                instructions: String::new(),
            })
            .reward(2)
            .replicate(1)
        })
        .collect();
    let hits = platform.post(specs).expect("post");
    let (responses, _series) =
        pump_until_complete(&mut platform, &hits, 300.0, 60.0 * 24.0 * 3600.0, 3600.0);

    // Feed the WRM exactly as the task manager would.
    let mut wrm = WorkerRelationshipManager::new();
    let mut per_worker: HashMap<WorkerId, usize> = HashMap::new();
    for r in &responses {
        wrm.record_assignment(r.worker, 2, true);
        *per_worker.entry(r.worker).or_default() += 1;
    }

    out.headers = vec!["top-k workers".into(), "share of assignments".into()];
    for k in [1usize, 3, 5, 10, 25, 50] {
        out.rows.push(vec![
            k.to_string(),
            format!("{:.1}%", wrm.top_k_share(k) * 100.0),
        ]);
    }
    out.rows.push(vec![
        "community size".into(),
        wrm.community_size().to_string(),
    ]);

    // Rank-share curve (the paper's long-tail plot).
    let mut counts: Vec<usize> = per_worker.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: usize = counts.iter().sum();
    let mut cum = 0.0;
    let mut curve = Series::new("cumulative share by worker rank");
    for (rank, c) in counts.iter().enumerate() {
        cum += *c as f64 / total.max(1) as f64;
        curve.points.push(((rank + 1) as f64, cum * 100.0));
        if rank >= 49 {
            break;
        }
    }
    out.series.push(curve);

    out.notes.push(format!(
        "{} assignments completed by {} distinct workers",
        responses.len(),
        wrm.community_size()
    ));
    out.notes.push(
        "expected shape: strongly concave cumulative curve (Zipf-like); the top-10 \
         workers carry a disproportionate share"
            .into(),
    );
    out.print();
}
