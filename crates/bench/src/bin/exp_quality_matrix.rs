//! E17 — answer-quality engine v2 matrix: majority-vs-EM × batched-vs-
//! singleton HITs, with determinism checks.
//!
//! ```text
//! BENCH_JSON=BENCH_4.json cargo run --release -p crowddb-bench --bin exp_quality_matrix
//! ```
//!
//! Two arms, both against the AMT simulator with known ground truth:
//!
//! * **Probe arm** (E4 schema): professor department/e-mail probes at
//!   replication 3 against an *independent-error* crowd (workers mistype
//!   on their own; wrong answers essentially never collide — the regime
//!   the Dawid–Skene model describes). Em must score at least as many
//!   correct cells as MajorityVote at the same replication and the same
//!   bill, for every seed.
//! * **Compare arm** (E6 schema): CROWDEQUAL entity resolution, where
//!   `max_batch_size = 4` packs same-instruction compares into batched
//!   HITs at the per-item discount. Batched runs must post fewer HITs
//!   and spend fewer cents at equal-or-better accuracy.
//!
//! Both arms re-run every configuration with 1 and 4 fulfill workers and
//! assert byte-identical rows — the concurrency knob stays a pure
//! wall-time lever under both quality policies.
//!
//! The assertions are live: the binary panics if any acceptance
//! condition regresses, so a bench run doubles as a quality gate.

use std::collections::HashMap;

use crowddb_bench::harness::ExperimentOutput;
use crowddb_bench::workloads;
use crowddb_bench::world::CompanyWorld;
use crowddb_core::{CrowdConfig, CrowdDB, QualityPolicy, QueryResult};
use crowddb_platform::{Answer, ClosureModel, SimConfig, SimPlatform, TaskKind};
use crowddb_quality::VoteConfig;

const PROFS: usize = 40;

fn policy_tag(policy: QualityPolicy) -> &'static str {
    match policy {
        QualityPolicy::MajorityVote => "majority",
        QualityPolicy::Em { .. } => "em",
    }
}

fn config(policy: QualityPolicy, workers: usize, batch: usize, reward: u32) -> CrowdConfig {
    let mut c = CrowdConfig {
        vote: VoteConfig::replicated(3),
        reward_cents: reward,
        quality: policy,
        ..CrowdConfig::default()
    };
    c.concurrency.fulfill_workers = workers;
    c.concurrency.max_batch_size = batch;
    c.concurrency.parallel_threshold = 0;
    c
}

/// An independent-error probe crowd: diligent workers read the truth
/// table; careless ones fall back to the default plausible-error model
/// (per-worker typos and junk that essentially never collide).
fn probe_world(
    truth: HashMap<String, (String, String)>,
) -> ClosureModel<impl Fn(&TaskKind) -> Answer + Send> {
    ClosureModel::new(move |task: &TaskKind| match task {
        TaskKind::Probe { known, asked, .. } => {
            let name = known
                .iter()
                .find(|(k, _)| k == "name")
                .map(|(_, v)| v.as_str())
                .unwrap_or("");
            let (dept, email) = truth
                .get(name)
                .cloned()
                .unwrap_or_else(|| ("unknown".into(), "unknown".into()));
            Answer::Form(
                asked
                    .iter()
                    .map(|(col, _)| {
                        let text = match col.as_str() {
                            "department" => dept.clone(),
                            "email" => email.clone(),
                            _ => "unknown".to_string(),
                        };
                        (col.clone(), text)
                    })
                    .collect(),
            )
        }
        _ => Answer::Blank,
    })
}

fn noisy_amt(seed: u64, model: Box<dyn crowddb_platform::CrowdModel>) -> SimPlatform {
    let mut sim = SimConfig::amt(seed);
    sim.pool.error_alpha = 2.5; // mean worker error ~25%
    sim.pool.error_beta = 7.5;
    SimPlatform::new("amt-sim", sim, model)
}

/// Probe arm: returns (correct cells, total cells, result).
fn probe_run(policy: QualityPolicy, workers: usize, seed: u64) -> (usize, usize, QueryResult) {
    let truth: HashMap<String, (String, String)> = workloads::professors(PROFS, 99)
        .into_iter()
        .map(|p| (p.name, (p.department, p.email)))
        .collect();
    let db = CrowdDB::with_config(config(policy, workers, 0, 2));
    db.execute_local(
        "CREATE TABLE professor (name STRING PRIMARY KEY, department CROWD STRING, \
         email CROWD STRING)",
    )
    .expect("ddl");
    let mut names: Vec<&String> = truth.keys().collect();
    names.sort();
    for name in names {
        db.execute_local(&format!(
            "INSERT INTO professor (name) VALUES ('{}')",
            name.replace('\'', "''")
        ))
        .expect("insert");
    }
    let mut amt = noisy_amt(seed, Box::new(probe_world(truth.clone())));
    let r = db
        .execute("SELECT name, department, email FROM professor", &mut amt)
        .expect("probe query");
    let mut ok = 0usize;
    for row in &r.rows {
        let name = row[0].to_string();
        let (dept, email) = truth.get(&name).expect("known prof");
        if row[1].to_string().eq_ignore_ascii_case(dept) {
            ok += 1;
        }
        if row[2].to_string().eq_ignore_ascii_case(email) {
            ok += 1;
        }
    }
    (ok, 2 * PROFS, r)
}

/// Compare arm: returns (correct pairs, total pairs, result).
fn compare_run(
    policy: QualityPolicy,
    workers: usize,
    batch: usize,
    seed: u64,
) -> (usize, usize, QueryResult) {
    let corpus = workloads::companies(30, 17);
    let pairs = workloads::entity_pairs(&corpus, 17);
    let world = CompanyWorld::new(&corpus);
    let db = CrowdDB::with_config(config(policy, workers, batch, 1));
    db.execute_local("CREATE TABLE pairs (id INTEGER PRIMARY KEY, a STRING, b STRING)")
        .expect("ddl");
    for (i, (a, b, _)) in pairs.iter().enumerate() {
        db.execute_local(&format!(
            "INSERT INTO pairs VALUES ({i}, '{}', '{}')",
            a.replace('\'', "''"),
            b.replace('\'', "''")
        ))
        .expect("insert");
    }
    let mut amt = noisy_amt(seed, Box::new(CompanyWorld::new(&corpus)));
    let r = db
        .execute(
            "SELECT id FROM pairs WHERE CROWDEQUAL(a, b) ORDER BY id",
            &mut amt,
        )
        .expect("compare query");
    let merged: std::collections::HashSet<usize> = r
        .rows
        .iter()
        .filter_map(|row| row[0].as_i64().map(|v| v as usize))
        .collect();
    let ok = pairs
        .iter()
        .enumerate()
        .filter(|(i, (a, b, _))| merged.contains(i) == world.same_entity(a, b))
        .count();
    (ok, pairs.len(), r)
}

fn main() {
    let mut out = ExperimentOutput::new(
        "E17",
        "answer-quality v2 matrix: majority-vs-EM x batched-vs-singleton, \
         independent-error crowd, determinism across worker counts",
    );
    out.headers = vec![
        "arm".into(),
        "policy".into(),
        "batch".into(),
        "seed".into(),
        "accuracy".into(),
        "tasks".into(),
        "cost (cents)".into(),
        "det 1v4".into(),
    ];

    let seeds = [11u64, 22, 33];

    // Probe arm: Em >= MajorityVote at equal replication, equal bill.
    for seed in seeds {
        let mut scored: HashMap<&'static str, (usize, u64)> = HashMap::new();
        for policy in [QualityPolicy::MajorityVote, QualityPolicy::em()] {
            let (ok, total, r) = probe_run(policy, 1, seed);
            let (ok4, _, r4) = probe_run(policy, 4, seed);
            assert_eq!(ok, ok4, "probe seed {seed}: worker count changed accuracy");
            let det = if r.rows == r4.rows { "yes" } else { "NO" };
            assert_eq!(
                r.rows, r4.rows,
                "probe seed {seed}: rows diverged across workers"
            );
            scored.insert(policy_tag(policy), (ok, r.crowd.cents_spent));
            out.rows.push(vec![
                "probe".into(),
                policy_tag(policy).into(),
                "-".into(),
                seed.to_string(),
                format!("{:.1}%", 100.0 * ok as f64 / total as f64),
                r.crowd.tasks_posted.to_string(),
                r.crowd.cents_spent.to_string(),
                det.into(),
            ]);
        }
        let (maj, em) = (scored["majority"], scored["em"]);
        assert!(
            em.0 >= maj.0,
            "probe seed {seed}: EM ({}) scored below majority ({})",
            em.0,
            maj.0
        );
        assert_eq!(
            em.1, maj.1,
            "probe seed {seed}: policies paid different cents"
        );
    }

    // Compare arm: batching cuts posts and cents at equal-or-better
    // accuracy, under both policies.
    for seed in seeds {
        for policy in [QualityPolicy::MajorityVote, QualityPolicy::em()] {
            let mut by_batch: HashMap<usize, (usize, u64, u64)> = HashMap::new();
            for batch in [0usize, 4] {
                let (ok, total, r) = compare_run(policy, 1, batch, seed);
                let (ok4, _, r4) = compare_run(policy, 4, batch, seed);
                assert_eq!(
                    ok, ok4,
                    "compare seed {seed}: worker count changed accuracy"
                );
                let det = if r.rows == r4.rows { "yes" } else { "NO" };
                assert_eq!(
                    r.rows, r4.rows,
                    "compare seed {seed}: rows diverged across workers"
                );
                by_batch.insert(batch, (ok, r.crowd.tasks_posted, r.crowd.cents_spent));
                out.rows.push(vec![
                    "compare".into(),
                    policy_tag(policy).into(),
                    if batch >= 2 {
                        batch.to_string()
                    } else {
                        "-".into()
                    },
                    seed.to_string(),
                    format!("{:.1}%", 100.0 * ok as f64 / total as f64),
                    r.crowd.tasks_posted.to_string(),
                    r.crowd.cents_spent.to_string(),
                    det.into(),
                ]);
            }
            let (single, batched) = (by_batch[&0], by_batch[&4]);
            assert!(
                batched.1 < single.1,
                "seed {seed} {policy:?}: batching must post fewer HITs"
            );
            assert!(
                batched.2 <= single.2,
                "seed {seed} {policy:?}: batching must not cost more \
                 ({} vs {} cents)",
                batched.2,
                single.2
            );
        }
    }

    out.notes.push(
        "probe arm: independent-error crowd (the Dawid-Skene regime) — EM never \
         scores below majority at equal replication, and the bill is identical \
         because EM runs at settle time only"
            .into(),
    );
    out.notes.push(
        "compare arm: max_batch_size=4 packs same-instruction compares into \
         batched HITs at the per-item discount — fewer posts, fewer cents, \
         accuracy within noise of singletons under both policies"
            .into(),
    );
    out.notes.push(
        "every row re-ran with 1 vs 4 fulfill workers: rows byte-identical (the \
         'det 1v4' column is asserted, not just reported)"
            .into(),
    );
    out.print();
    if let Ok(path) = std::env::var("BENCH_JSON") {
        std::fs::write(&path, render_json(&out)).expect("write BENCH_JSON");
        eprintln!("wrote {path}");
    }
}

/// Hand-rolled JSON for the trajectory record: the workspace's
/// serde_json may be an offline stub, and this file is checked in, so
/// the bytes must not depend on which one is linked.
fn render_json(out: &ExperimentOutput) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn arr(items: &[String]) -> String {
        let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
        format!("[{}]", quoted.join(", "))
    }
    let rows: Vec<String> = out.rows.iter().map(|r| format!("    {}", arr(r))).collect();
    format!(
        "{{\n  \"id\": \"{}\",\n  \"paper_artifact\": \"{}\",\n  \"headers\": {},\n  \
         \"rows\": [\n{}\n  ],\n  \"notes\": {},\n  \"op_stats\": {}\n}}\n",
        esc(&out.id),
        esc(&out.paper_artifact),
        arr(&out.headers),
        rows.join(",\n"),
        arr(&out.notes),
        arr(&out.op_stats),
    )
}
