//! E8 — Plan quality: boundedness and crowd-call minimization (paper
//! §3.2.2: predicate push-down, stop-after push-down, join ordering, and
//! the boundedness check).
//!
//! Two parts:
//!
//! 1. **Boundedness table** — the compile-time verdict for a family of
//!    queries over `Talk` (electronic, CROWD columns) and
//!    `NotableAttendee` (CROWD table), with the estimated crowd-call
//!    bound. This reproduces the optimizer behaviour the paper describes:
//!    "warns the user at compile-time if the number of requests cannot
//!    be bounded".
//!
//! 2. **Optimizer ablation** — the same query executed with the full
//!    rule set vs with predicate push-down / crowd isolation disabled,
//!    counting how many crowd tasks one execution round would request.
//!    Push-down exists precisely to minimize requests against the crowd.

use crowddb_bench::harness::ExperimentOutput;
use crowddb_common::row;
use crowddb_common::Value;
use crowddb_exec::{execute_physical, lower_plan, render_analyzed, CompareCaches};
use crowddb_plan::cardinality::FnStats;
use crowddb_plan::{analyze_boundedness, optimize, Binder, OptimizerConfig};
use crowddb_sql::{parse_statement, Statement};
use crowddb_storage::Database;

fn setup() -> Database {
    let db = Database::new();
    for ddl in [
        "CREATE TABLE talk (title STRING PRIMARY KEY, abstract CROWD STRING, \
         nb_attendees CROWD INTEGER, track STRING)",
        "CREATE CROWD TABLE notableattendee (name STRING PRIMARY KEY, title STRING, \
         FOREIGN KEY (title) REF talk(title))",
    ] {
        let Statement::CreateTable(ct) = parse_statement(ddl).unwrap() else {
            panic!()
        };
        let schema = db.with_catalog(|c| c.schema_from_ast(&ct)).unwrap();
        db.create_table(schema).unwrap();
    }
    for i in 0..40 {
        let track = if i % 4 == 0 { "demo" } else { "research" };
        db.insert(
            "talk",
            row![format!("talk-{i:02}"), Value::CNull, Value::CNull, track],
        )
        .unwrap();
    }
    db
}

fn main() {
    let db = setup();
    let stats_fn = |t: &str| db.stats(t).ok().map(|s| s.live_rows as u64);
    let pk = |t: &str| -> Vec<usize> { db.schema(t).map(|s| s.primary_key).unwrap_or_default() };

    // Part 1: boundedness verdicts.
    let mut out = ExperimentOutput::new(
        "E8a",
        "compile-time boundedness verdicts and crowd-call bounds",
    );
    out.headers = vec![
        "query".into(),
        "verdict".into(),
        "est. crowd batches".into(),
    ];
    let queries = [
        "SELECT title FROM talk",
        "SELECT abstract FROM talk WHERE title = 'talk-00'",
        "SELECT abstract FROM talk",
        "SELECT name FROM notableattendee",
        "SELECT name FROM notableattendee LIMIT 10",
        "SELECT title FROM notableattendee WHERE name = 'Mike Franklin'",
        "SELECT t.title, n.name FROM talk t JOIN notableattendee n ON t.title = n.title",
        "SELECT name FROM notableattendee ORDER BY name LIMIT 5",
    ];
    for sql in queries {
        let Statement::Select(q) = parse_statement(sql).unwrap() else {
            panic!()
        };
        let bound = db.with_catalog(|c| Binder::new(c).bind_query(&q)).unwrap();
        let plan = optimize(bound, &FnStats(stats_fn), &OptimizerConfig::default());
        let report = analyze_boundedness(&plan, &FnStats(stats_fn), &pk);
        out.rows.push(vec![
            sql.to_string(),
            if report.bounded {
                "BOUNDED".into()
            } else {
                "UNBOUNDED".into()
            },
            report
                .estimated_crowd_calls
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    out.notes.push(
        "expected: bare CROWD-table scans and machine-sort-under-limit are the only \
         UNBOUNDED plans; LIMIT, key predicates, and finite join outers bound the rest"
            .into(),
    );
    out.print();

    // Part 2: ablation — crowd tasks requested in one round, full
    // optimizer vs no push-down.
    let mut out2 = ExperimentOutput::new(
        "E8b",
        "optimizer ablation: crowd tasks requested per round (push-down minimizes \
         requests against the crowd)",
    );
    out2.headers = vec![
        "optimizer".into(),
        "crowd tasks round 1".into(),
        "rows scanned".into(),
    ];
    // Only demo-track talks (10 of 40) matter. The derived table keeps
    // the predicate away from the scan unless push-down moves it there;
    // the fused filter-scan then skips probing the 30 rejected rows.
    let sql = "SELECT d.abstract FROM (SELECT * FROM talk) AS d \
               WHERE d.track = 'demo'";
    let Statement::Select(q) = parse_statement(sql).unwrap() else {
        panic!()
    };
    for (label, config) in [
        ("full rule set", OptimizerConfig::default()),
        (
            "no push-down",
            OptimizerConfig {
                pushdown_predicates: false,
                ..OptimizerConfig::default()
            },
        ),
        (
            "no rules at all",
            OptimizerConfig {
                fold_constants: false,
                pushdown_predicates: false,
                reorder_joins: false,
                pushdown_limit: false,
            },
        ),
    ] {
        let bound = db.with_catalog(|c| Binder::new(c).bind_query(&q)).unwrap();
        let plan = optimize(bound, &FnStats(stats_fn), &config);
        let caches = CompareCaches::default();
        let physical = lower_plan(&db, &plan);
        let (result, op_stats) = execute_physical(&db, &caches, &physical).unwrap();
        out2.rows.push(vec![
            label.to_string(),
            result.needs.len().to_string(),
            result.stats.rows_scanned.to_string(),
        ]);
        out2.op_stats.push(format!("-- {label} --"));
        out2.op_stats.extend(
            render_analyzed(&physical, &op_stats)
                .lines()
                .map(String::from),
        );
    }
    out2.notes.push(
        "expected: with push-down the track predicate reaches the scan and only the \
         10 demo-track rows are probed; without it, all 40 rows with missing \
         abstracts generate crowd tasks — a 4x cost difference, the paper's \
         motivation for crowd-aware rewriting"
            .into(),
    );
    out2.print();
}
