//! E5 — CrowdJoin throughput and cost (SIGMOD 2011: picture–subject
//! join).
//!
//! The paper joined a photo table against a crowdsourced (photo, subject)
//! relation: each outer photo without matching inner tuples becomes a
//! HIT asking workers to contribute them. It reported join progress per
//! hour and per dollar as the outer batch grows (bigger batches benefit
//! from HIT-group attention). This harness runs the join end-to-end
//! through CrowdDB on the simulated marketplace and scores recall
//! against ground truth.

use crowddb_bench::harness::ExperimentOutput;
use crowddb_bench::workloads;
use crowddb_bench::world::PhotoWorld;
use crowddb_core::{CrowdConfig, CrowdDB};
use crowddb_platform::SimPlatform;
use crowddb_quality::VoteConfig;

fn main() {
    let mut out = ExperimentOutput::new(
        "E5",
        "CrowdJoin: tuples found, recall, cost, and virtual time vs outer batch size",
    );
    out.headers = vec![
        "photos".into(),
        "true pairs".into(),
        "found pairs".into(),
        "recall".into(),
        "tasks".into(),
        "cost (cents)".into(),
        "virtual hours".into(),
        "pairs per $".into(),
    ];

    for batch in [20usize, 50, 100] {
        let corpus = workloads::photos(batch, 31);
        let truth_pairs: usize = corpus.iter().map(|p| p.subjects.len()).sum();
        let db = CrowdDB::with_config(CrowdConfig {
            vote: VoteConfig::replicated(2),
            reward_cents: 2,
            ..CrowdConfig::default()
        });
        db.execute_local("CREATE TABLE photo (id STRING PRIMARY KEY)")
            .expect("ddl");
        db.execute_local(
            "CREATE CROWD TABLE photosubject (photo STRING, subject STRING, \
             PRIMARY KEY (photo, subject))",
        )
        .expect("ddl");
        for p in &corpus {
            db.execute_local(&format!("INSERT INTO photo VALUES ('{}')", p.id))
                .expect("insert");
        }
        let mut amt = SimPlatform::amt(606, Box::new(PhotoWorld::new(&corpus)));
        let r = db
            .execute(
                "SELECT p.id, s.subject FROM photo p JOIN photosubject s ON p.id = s.photo",
                &mut amt,
            )
            .expect("join query");

        // Score recall: every found pair must be true; count coverage.
        let mut found_true = 0usize;
        for row in &r.rows {
            let photo = row[0].to_string();
            let subject = row[1].to_string();
            if corpus
                .iter()
                .any(|p| p.id == photo && p.subjects.contains(&subject))
            {
                found_true += 1;
            }
        }
        let dollars = r.crowd.cents_spent as f64 / 100.0;
        out.rows.push(vec![
            batch.to_string(),
            truth_pairs.to_string(),
            r.rows.len().to_string(),
            format!(
                "{:.1}%",
                100.0 * found_true as f64 / truth_pairs.max(1) as f64
            ),
            r.crowd.tasks_posted.to_string(),
            r.crowd.cents_spent.to_string(),
            format!("{:.1}", r.crowd.virtual_secs / 3600.0),
            if dollars > 0.0 {
                format!("{:.0}", found_true as f64 / dollars)
            } else {
                "-".into()
            },
        ]);
    }
    out.notes.push(
        "expected shape: recall near 100% (workers know the subjects); cost grows \
         linearly with the outer batch; pairs-per-dollar roughly flat (each outer \
         tuple needs one task batch) — matching the paper's linear join scaling"
            .into(),
    );
    out.print();
}
