//! E12 — Concurrency: parallel round fulfillment and multi-session
//! throughput.
//!
//! Two scaling questions, one per part:
//!
//! 1. **Parallel fulfillment** — the same E8b-style probe workload
//!    (CROWD columns over `talk`, replication 3, ~1 KB free-text
//!    answers so QC normalization dominates) run with
//!    `concurrency.fulfill_workers` at 1/2/4/8. Platform traffic stays
//!    serial on the coordinator; only the pure per-need compute (answer
//!    ingest, vote decisions, settle planning) fans out, so every
//!    worker count must produce identical results — the bench asserts
//!    row-for-row equality while timing the difference.
//! 2. **Multi-session reads** — one `Arc<CrowdDB>` pre-warmed so
//!    every probe answer is already written back, then T threads each
//!    running a batch of SELECTs with their own platform handle.
//!    Statements/sec vs thread count shows what the sharded caches and
//!    storage RwLock buy.

use std::sync::Arc;
use std::time::Instant;

use crowddb_bench::harness::ExperimentOutput;
use crowddb_core::{CrowdConfig, CrowdDB, QueryResult};
use crowddb_platform::{Answer, MockPlatform, TaskKind};
use crowddb_quality::VoteConfig;

const TALKS: usize = 120;
const READ_BATCH: usize = 40;

/// ~1 KB of answer text: large enough that normalization and vote
/// bookkeeping are the round's dominant cost, as they are when real
/// crowd prose comes back.
fn long_answer(seed: &str) -> String {
    let mut s = String::with_capacity(1024);
    while s.len() < 1000 {
        s.push_str(seed);
        s.push_str(" is a crowd-enabled database system answer segment. ");
    }
    s
}

fn crowd() -> MockPlatform {
    MockPlatform::unanimous(|kind| match kind {
        TaskKind::Probe { asked, .. } => Answer::Form(
            asked
                .iter()
                .map(|(c, _)| {
                    let text = if c == "abstract" {
                        long_answer(c)
                    } else {
                        "120".to_string()
                    };
                    (c.clone(), text)
                })
                .collect(),
        ),
        _ => Answer::Blank,
    })
}

fn config(workers: usize) -> CrowdConfig {
    let mut c = CrowdConfig::fast_test();
    c.vote = VoteConfig::replicated(3);
    c.concurrency.fulfill_workers = workers;
    c
}

/// Create the schema, insert talks, probe every crowd column. Returns
/// (wall seconds of the probe query, its result).
fn run_probe(db: &CrowdDB) -> (f64, QueryResult) {
    let mut p = crowd();
    db.execute(
        "CREATE TABLE talk (title STRING PRIMARY KEY, abstract CROWD STRING, \
         nb_attendees CROWD INTEGER)",
        &mut p,
    )
    .expect("ddl");
    for i in 0..TALKS {
        db.execute(
            &format!("INSERT INTO talk (title) VALUES ('talk-{i:03}')"),
            &mut p,
        )
        .expect("insert");
    }
    let start = Instant::now();
    let r = db
        .execute("SELECT title, abstract, nb_attendees FROM talk", &mut p)
        .expect("probe all");
    assert!(r.complete, "workload must finish: {:?}", r.warnings);
    (start.elapsed().as_secs_f64(), r)
}

fn main() {
    let mut out = ExperimentOutput::new(
        "E12",
        "parallel round fulfillment and multi-session read throughput \
         (determinism asserted: every worker count returns identical rows)",
    );
    out.headers = vec![
        "configuration".into(),
        "wall ms".into(),
        "speedup".into(),
        "tasks".into(),
    ];

    // Part 1: fulfillment workers. Serial run is the golden.
    let mut golden: Option<QueryResult> = None;
    let mut serial_ms = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let db = CrowdDB::with_config(config(workers));
        let (secs, r) = run_probe(&db);
        let ms = secs * 1e3;
        match &golden {
            None => {
                golden = Some(r);
                serial_ms = ms;
            }
            Some(g) => {
                assert_eq!(g.rows, r.rows, "workers={workers} changed the answer");
                assert_eq!(
                    g.crowd.tasks_posted, r.crowd.tasks_posted,
                    "workers={workers} changed crowd traffic"
                );
            }
        }
        out.rows.push(vec![
            format!("fulfill workers={workers}"),
            format!("{ms:.2}"),
            format!("{:.2}x", serial_ms / ms.max(1e-9)),
            golden
                .as_ref()
                .map(|g| g.crowd.tasks_posted.to_string())
                .unwrap_or_default(),
        ]);
    }

    // Part 2: concurrent sessions over one warmed database.
    let db = Arc::new(CrowdDB::with_config(config(1)));
    let (_, warm) = run_probe(&db);
    assert!(warm.complete);
    let mut single_thread_ms = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    let mut p = crowd();
                    for _ in 0..READ_BATCH {
                        let r = db
                            .execute("SELECT title, abstract, nb_attendees FROM talk", &mut p)
                            .expect("warm select");
                        assert!(r.complete);
                        assert_eq!(r.rows.len(), TALKS);
                        assert_eq!(r.crowd.tasks_posted, 0, "warm read must not hit the crowd");
                    }
                });
            }
        });
        let ms = start.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            single_thread_ms = ms;
        }
        let stmts = (threads * READ_BATCH) as f64;
        out.rows.push(vec![
            format!("sessions={threads} ({READ_BATCH} reads each)"),
            format!("{ms:.2}"),
            format!(
                "{:.2}x stmt/s",
                (stmts / ms) / ((READ_BATCH as f64) / single_thread_ms.max(1e-9))
            ),
            "0".into(),
        ]);
    }

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    out.notes.push(format!(
        "{TALKS} talks, 2 crowd columns, replication 3, ~1 KB answers; part 1 \
         varies concurrency.fulfill_workers, part 2 runs warm SELECTs from N \
         threads over one Arc<CrowdDB>; detected hardware parallelism: {cores} \
         (speedups are bounded by this — on a single core every configuration \
         should tie)"
    ));
    out.notes.push(
        "expected: part 1 wall time drops with >=4 workers while rows/tasks stay \
         byte-identical; part 2 statements/sec scales with sessions (reads share \
         the storage RwLock and sharded caches)"
            .into(),
    );
    out.print();
}
