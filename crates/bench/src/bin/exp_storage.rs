//! E14 — Paged storage engine: sequential scan vs index probe, and the
//! buffer-pool size sweep.
//!
//! The storage tentpole's perf claims, measured on the E8b-style
//! conference workload (the `talk` table, machine columns only so the
//! crowd stays out of the timing loop):
//!
//! 1. **Access paths** — the same equality predicate answered by a full
//!    sequential scan (no secondary index) vs a B-tree index probe
//!    (`CREATE INDEX` + the planner's access-path rule). The probe must
//!    win by more than the bookkeeping it adds.
//! 2. **Pool sweep** — an identical scan workload under buffer pools of
//!    4, 16, 64, and unbounded pages. Results are byte-identical at
//!    every size (asserted); only `pages_read`/`pool_hits`/`evictions`
//!    move.
//!
//! Set `BENCH_JSON=<path>` to also write the machine-readable record
//! (the repo keeps the first one as `BENCH_1.json`, the seed of the
//! perf trajectory later PRs append to).

use std::time::Instant;

use crowddb_bench::harness::ExperimentOutput;
use crowddb_core::{CrowdConfig, CrowdDB, FsyncPolicy};
use crowddb_platform::{Answer, MockPlatform};
use crowddb_wal::testutil::TestDir;

const TALKS: usize = 2000;
const PROBES: usize = 400;
const SCAN_PASSES: usize = 20;

fn config(pool_pages: usize) -> CrowdConfig {
    let mut c = CrowdConfig::fast_test();
    c.durability.fsync = FsyncPolicy::Never;
    c.durability.checkpoint_every_records = 0; // checkpoint manually
    c.storage.page_size = 4096;
    c.storage.pool_pages = pool_pages;
    c
}

/// Load the E8b-style table: `TALKS` talks, every column machine-known.
fn load(db: &CrowdDB) {
    db.execute_local(
        "CREATE TABLE talk (title STRING PRIMARY KEY, nb_attendees INTEGER, \
         track STRING)",
    )
    .expect("ddl");
    for i in 0..TALKS {
        let track = ["systems", "languages", "theory", "demos"][i % 4];
        db.execute_local(&format!(
            "INSERT INTO talk VALUES ('talk-{i:04}', {}, '{track}')",
            (i * 7) % 500
        ))
        .expect("insert");
    }
}

/// Run `PROBES` point queries on `nb_attendees`, returning (wall secs,
/// rows seen, pages read, index probes) from the session's counters.
fn probe_pass(db: &CrowdDB) -> (f64, usize, u64, u64) {
    let pages0 = db.storage().pager_stats().pages_read;
    let probes0 = db.metrics().counter("crowddb_exec_index_probes_total");
    let start = Instant::now();
    let mut rows = 0usize;
    for k in 0..PROBES {
        let r = db
            .execute_local(&format!(
                "SELECT title FROM talk WHERE nb_attendees = {}",
                (k * 13) % 500
            ))
            .expect("probe");
        rows += r.rows.len();
    }
    let secs = start.elapsed().as_secs_f64();
    let pages = db.storage().pager_stats().pages_read - pages0;
    let probes = db.metrics().counter("crowddb_exec_index_probes_total") - probes0;
    (secs, rows, pages, probes)
}

fn main() {
    let mut out = ExperimentOutput::new(
        "E14",
        "storage access paths (seq scan vs B-tree probe) and the buffer-pool \
         size sweep on the E8b workload",
    );
    out.headers = vec![
        "configuration".into(),
        "wall ms".into(),
        "rows".into(),
        "pages read".into(),
        "detail".into(),
    ];

    // ---- Part 1: sequential scan vs index probe --------------------
    let seq = {
        let dir = TestDir::new("e14-seq");
        let db = CrowdDB::open_with_config(dir.path(), config(0)).expect("open");
        load(&db);
        db.checkpoint().expect("checkpoint");
        let (secs, rows, pages, probes) = probe_pass(&db);
        assert_eq!(probes, 0, "no secondary index: no probes");
        out.rows.push(vec![
            format!("seq scan ({PROBES} point queries)"),
            format!("{:.2}", secs * 1e3),
            rows.to_string(),
            pages.to_string(),
            "no index on nb_attendees".into(),
        ]);
        (secs, rows)
    };

    let probe = {
        let dir = TestDir::new("e14-probe");
        let db = CrowdDB::open_with_config(dir.path(), config(0)).expect("open");
        load(&db);
        db.execute_local("CREATE INDEX talk_att ON talk (nb_attendees)")
            .expect("index ddl");
        db.checkpoint().expect("checkpoint");
        let (secs, rows, pages, probes) = probe_pass(&db);
        assert_eq!(probes, PROBES as u64, "every query must use the index");
        out.rows.push(vec![
            format!("index probe ({PROBES} point queries)"),
            format!("{:.2}", secs * 1e3),
            rows.to_string(),
            pages.to_string(),
            format!("{probes} IndexScan probes"),
        ]);

        // One analyzed plan for the record: the IndexScan line with its
        // probe/page accounting.
        let mut p = MockPlatform::unanimous(|_| Answer::Blank);
        let analyzed = db
            .explain_analyze("SELECT title FROM talk WHERE nb_attendees = 42", &mut p)
            .expect("analyze");
        out.op_stats.extend(analyzed.lines().map(String::from));
        (secs, rows)
    };

    assert_eq!(seq.1, probe.1, "access path must not change results");
    let speedup = seq.0 / probe.0;
    out.notes.push(format!(
        "index probe speedup over sequential scan: {speedup:.1}x \
         ({TALKS} rows, {PROBES} point queries)"
    ));

    // ---- Part 2: buffer-pool size sweep ----------------------------
    let mut reference_rows: Option<usize> = None;
    for pool in [4usize, 16, 64, 0] {
        let dir = TestDir::new("e14-pool");
        let db = CrowdDB::open_with_config(dir.path(), config(pool)).expect("open");
        load(&db);
        db.checkpoint().expect("checkpoint"); // clean pages → evictable
        let start = Instant::now();
        let mut rows = 0usize;
        for _ in 0..SCAN_PASSES {
            let r = db
                .execute_local("SELECT title, nb_attendees FROM talk WHERE track = 'systems'")
                .expect("scan");
            rows += r.rows.len();
        }
        let secs = start.elapsed().as_secs_f64();
        let s = db.storage().pager_stats();
        match reference_rows {
            None => reference_rows = Some(rows),
            Some(expect) => assert_eq!(rows, expect, "pool size changed results"),
        }
        let label = if pool == 0 {
            "pool unbounded".to_string()
        } else {
            format!("pool {pool} pages")
        };
        out.rows.push(vec![
            format!("{label} ({SCAN_PASSES} scan passes)"),
            format!("{:.2}", secs * 1e3),
            rows.to_string(),
            s.pages_read.to_string(),
            format!(
                "hits {} misses {} evictions {}",
                s.pool_hits, s.pool_misses, s.evictions
            ),
        ]);
    }
    out.notes.push(
        "pool sweep: identical rows at every size (asserted); a tiny pool only \
         costs re-reads of evicted pages, never correctness"
            .into(),
    );

    out.print();
    if let Ok(path) = std::env::var("BENCH_JSON") {
        std::fs::write(&path, render_json(&out)).expect("write BENCH_JSON");
        eprintln!("wrote {path}");
    }
}

/// Hand-rolled JSON for the trajectory record: the workspace's
/// serde_json may be an offline stub, and this file is checked in, so
/// the bytes must not depend on which one is linked.
fn render_json(out: &ExperimentOutput) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn arr(items: &[String]) -> String {
        let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
        format!("[{}]", quoted.join(", "))
    }
    let rows: Vec<String> = out.rows.iter().map(|r| format!("    {}", arr(r))).collect();
    format!(
        "{{\n  \"id\": \"{}\",\n  \"paper_artifact\": \"{}\",\n  \"headers\": {},\n  \
         \"rows\": [\n{}\n  ],\n  \"notes\": {},\n  \"op_stats\": {}\n}}\n",
        esc(&out.id),
        esc(&out.paper_artifact),
        arr(&out.headers),
        rows.join(",\n"),
        arr(&out.notes),
        arr(&out.op_stats),
    )
}
