//! E10 — AMT vs the locality-aware mobile platform (demo paper §4).
//!
//! The demo's distinctive claim is *platform pluggability*: the same
//! CrowdSQL compiles onto Amazon Mechanical Turk (a global paid
//! marketplace) or onto the conference's mobile platform (a small local
//! volunteer crowd). This harness runs an identical probe workload
//! through the full engine on both platforms and contrasts cost, speed,
//! and the effect of the mobile platform's locality filter.

use crowddb_bench::harness::ExperimentOutput;
use crowddb_core::{CrowdConfig, CrowdDB};
use crowddb_platform::{PerfectModel, Platform, SimPlatform};
use crowddb_quality::VoteConfig;

const VENUE: (f64, f64) = (47.6114, -122.3305);

fn run_workload(platform: &mut dyn Platform, reward_cents: u32) -> (usize, u64, u64, f64, usize) {
    let db = CrowdDB::with_config(CrowdConfig {
        vote: VoteConfig::replicated(2),
        reward_cents,
        ..CrowdConfig::default()
    });
    db.execute_local("CREATE TABLE talk (title STRING PRIMARY KEY, nb_attendees CROWD INTEGER)")
        .expect("ddl");
    for i in 0..40 {
        db.execute_local(&format!("INSERT INTO talk (title) VALUES ('talk-{i:02}')"))
            .expect("insert");
    }
    let r = db
        .execute("SELECT title, nb_attendees FROM talk", platform)
        .expect("query");
    let resolved = r.rows.iter().filter(|row| !row[1].is_cnull()).count();
    (
        resolved,
        r.crowd.tasks_posted,
        r.crowd.cents_spent,
        r.crowd.virtual_secs / 3600.0,
        r.warnings.len(),
    )
}

fn main() {
    let mut out = ExperimentOutput::new(
        "E10",
        "platform pluggability: the same CrowdSQL workload on AMT vs the mobile \
         conference platform (demo paper §4)",
    );
    out.headers = vec![
        "platform".into(),
        "values resolved".into(),
        "tasks".into(),
        "cost (cents)".into(),
        "virtual hours".into(),
        "warnings".into(),
    ];

    let mut amt = SimPlatform::amt(2011, Box::new(PerfectModel));
    let (res, tasks, cents, hours, warns) = run_workload(&mut amt, 2);
    out.rows.push(vec![
        "AMT (paid, global)".into(),
        format!("{res}/40"),
        tasks.to_string(),
        cents.to_string(),
        format!("{hours:.1}"),
        warns.to_string(),
    ]);

    // Conference volunteers are not paid: reward 0.
    let mut mobile = SimPlatform::mobile(2011, VENUE, Box::new(PerfectModel));
    let (res, tasks, cents, hours, warns) = run_workload(&mut mobile, 0);
    out.rows.push(vec![
        "mobile (volunteer, local)".into(),
        format!("{res}/40"),
        tasks.to_string(),
        cents.to_string(),
        format!("{hours:.1}"),
        warns.to_string(),
    ]);

    out.notes.push(
        "expected shape: both platforms complete the workload; AMT costs real money \
         and is gated by reservation wages, while the venue crowd answers for free \
         and fast — but it is small and locality-bound (tasks constrained to a \
         far-away location find no workers at all; see the restaurants example and \
         the mobile locality test)"
            .into(),
    );
    out.print();
}
