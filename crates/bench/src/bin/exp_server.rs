//! E15 — server throughput and admission under concurrent clients.
//!
//! ```text
//! cargo run --release -p crowddb-bench --bin exp_server
//! BENCH_JSON=BENCH_2.json cargo run --release -p crowddb-bench --bin exp_server
//! EXP_SERVER_SMOKE=1 cargo run -p crowddb-bench --bin exp_server   # CI smoke
//! ```
//!
//! Two phases, both against a real TCP server in this process:
//!
//! 1. **Closed-loop throughput.** N concurrent clients each run a mixed
//!    workload (70% local point reads, 30% crowd-table queries over a
//!    rotating title pool — first touch pays the simulated crowd, later
//!    touches hit memorized answers) and we report QPS and p50/p95/p99
//!    request latency per client count.
//! 2. **Starvation probe.** A crowd-query flood against a crowd
//!    admission tier of 2 (immediate-reject), with a local reader
//!    running through it: local p99 must stay bounded while the flood
//!    collects `overloaded` refusals — the two-tier admission contract.
//!
//! The paper demos CrowdDB interactively ("explore the results
//! \[queries\] produce", §4); this experiment quantifies the serving
//! path that makes the demo multi-user.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crowddb_bench::harness::ExperimentOutput;
use crowddb_core::{CrowdConfig, CrowdDB};
use crowddb_platform::{
    Answer, ClosureModel, HitId, Platform, PlatformStats, SimPlatform, TaskKind, TaskResponse,
    TaskSpec,
};
use crowddb_server::{Client, PlatformFactory, Server, ServerConfig, TenantConfig};

const TITLES: usize = 64;

fn world_factory() -> PlatformFactory {
    Arc::new(|seed| {
        let model = ClosureModel::new(|task: &TaskKind| match task {
            TaskKind::Probe { known, asked, .. } => {
                let title = known
                    .iter()
                    .find(|(k, _)| k == "title")
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default();
                Answer::Form(
                    asked
                        .iter()
                        .map(|(col, _)| (col.clone(), format!("{col} of {title}")))
                        .collect(),
                )
            }
            _ => Answer::Blank,
        });
        Box::new(SimPlatform::amt(seed, Box::new(model)))
    })
}

/// Platform decorator that spends real time per virtual advance, so
/// crowd statements are long enough to saturate an admission tier.
struct SlowPlatform {
    inner: SimPlatform,
    sleep: Duration,
}

impl Platform for SlowPlatform {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn post(&mut self, tasks: Vec<TaskSpec>) -> crowddb_common::Result<Vec<HitId>> {
        self.inner.post(tasks)
    }
    fn extend(&mut self, hit: HitId, extra: u32) -> crowddb_common::Result<()> {
        self.inner.extend(hit, extra)
    }
    fn advance(&mut self, dt: f64) {
        std::thread::sleep(self.sleep);
        self.inner.advance(dt);
    }
    fn collect(&mut self) -> Vec<TaskResponse> {
        self.inner.collect()
    }
    fn now(&self) -> f64 {
        self.inner.now()
    }
    fn stats(&self) -> PlatformStats {
        self.inner.stats()
    }
    fn is_complete(&self, hit: HitId) -> bool {
        self.inner.is_complete(hit)
    }
}

fn seed_schema(addr: &str) {
    let mut c = Client::connect(addr, "public", "", 1).expect("seed connect");
    c.query(
        "CREATE TABLE Talk (
            title STRING PRIMARY KEY,
            abstract CROWD STRING )",
    )
    .expect("ddl");
    let values: Vec<String> = (0..TITLES).map(|i| format!("('talk-{i:04}')")).collect();
    c.query(&format!(
        "INSERT INTO Talk (title) VALUES {}",
        values.join(", ")
    ))
    .expect("talk rows");
    c.query("CREATE TABLE Sessions (k INTEGER PRIMARY KEY, room STRING)")
        .expect("local ddl");
    let values: Vec<String> = (0..100)
        .map(|i| format!("({i}, 'room-{}')", i % 7))
        .collect();
    c.query(&format!(
        "INSERT INTO Sessions (k, room) VALUES {}",
        values.join(", ")
    ))
    .expect("local rows");
    c.close().expect("seed close");
}

fn percentile(sorted_micros: &[u64], p: f64) -> f64 {
    if sorted_micros.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_micros.len() as f64 - 1.0) * p).round() as usize;
    sorted_micros[idx] as f64 / 1000.0
}

struct LoadResult {
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    requests: u64,
    crowd_cents: u64,
}

/// Closed loop: `clients` threads, `per_client` requests each, 70/30
/// local/crowd mix keyed off the request counter (deterministic, no
/// RNG needed).
fn closed_loop(addr: &str, clients: usize, per_client: usize) -> LoadResult {
    let cents = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let addr = addr.to_string();
        let cents = Arc::clone(&cents);
        threads.push(std::thread::spawn(move || {
            let mut latencies = Vec::with_capacity(per_client);
            let mut client =
                Client::connect(&addr, "public", "", 5000 + c as u64).expect("load connect");
            for i in 0..per_client {
                let n = c * per_client + i;
                let sql = if n % 10 < 7 {
                    format!("SELECT room FROM Sessions WHERE k = {}", n % 100)
                } else {
                    format!(
                        "SELECT abstract FROM Talk WHERE title = 'talk-{:04}'",
                        n % TITLES
                    )
                };
                let t = Instant::now();
                let r = client.query(&sql).expect("load query");
                latencies.push(t.elapsed().as_micros() as u64);
                cents.fetch_add(r.cents_spent, Ordering::Relaxed);
            }
            client.close().expect("load close");
            latencies
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    for t in threads {
        latencies.extend(t.join().expect("load thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    LoadResult {
        qps: latencies.len() as f64 / elapsed,
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        requests: latencies.len() as u64,
        crowd_cents: cents.load(Ordering::Relaxed),
    }
}

struct StarvationResult {
    local_p99_ms: f64,
    local_worst_ms: f64,
    overloaded: u64,
    flood_completed: u64,
}

/// Crowd flood at a crowd tier of 2 with a local reader running through
/// it.
fn starvation_probe(flood_clients: usize, local_reads: usize) -> StarvationResult {
    let slow: PlatformFactory = Arc::new(|seed| {
        let model = ClosureModel::new(|task: &TaskKind| match task {
            TaskKind::Probe { asked, .. } => Answer::Form(
                asked
                    .iter()
                    .map(|(col, _)| (col.clone(), format!("{col} (flood)")))
                    .collect(),
            ),
            _ => Answer::Blank,
        });
        Box::new(SlowPlatform {
            inner: SimPlatform::amt(seed, Box::new(model)),
            sleep: Duration::from_millis(8),
        })
    });
    let mut config = ServerConfig::local(vec![TenantConfig::open("public")], slow);
    config.admission.max_concurrent_crowd_statements = Some(2);
    config.admission_timeout_secs = Some(0.0);
    let server = Server::start(config, CrowdDB::with_config(CrowdConfig::fast_test()))
        .expect("start starvation server");
    let addr = server.addr().to_string();
    seed_schema(&addr);

    let overloaded = Arc::new(AtomicU64::new(0));
    let completed = Arc::new(AtomicU64::new(0));
    let mut flood = Vec::new();
    for i in 0..flood_clients {
        let addr = addr.clone();
        let overloaded = Arc::clone(&overloaded);
        let completed = Arc::clone(&completed);
        flood.push(std::thread::spawn(move || {
            let mut c =
                Client::connect(&addr, "public", "", 7000 + i as u64).expect("flood connect");
            match c.query(&format!(
                "SELECT abstract FROM Talk WHERE title = 'talk-{:04}'",
                i % TITLES
            )) {
                Ok(_) => {
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.is_overloaded() => {
                    overloaded.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("unexpected flood error: {e}"),
            }
            let _ = c.close();
        }));
    }

    std::thread::sleep(Duration::from_millis(20));
    let mut local = Client::connect(&addr, "public", "", 8000).expect("local connect");
    let mut latencies = Vec::with_capacity(local_reads);
    for i in 0..local_reads {
        let t = Instant::now();
        local
            .query(&format!("SELECT room FROM Sessions WHERE k = {}", i % 100))
            .expect("local read during flood");
        latencies.push(t.elapsed().as_micros() as u64);
    }
    local.close().expect("local close");
    for t in flood {
        t.join().expect("flood thread");
    }
    latencies.sort_unstable();
    let result = StarvationResult {
        local_p99_ms: percentile(&latencies, 0.99),
        local_worst_ms: *latencies.last().unwrap_or(&0) as f64 / 1000.0,
        overloaded: overloaded.load(Ordering::Relaxed),
        flood_completed: completed.load(Ordering::Relaxed),
    };
    server.join().expect("drain starvation server");
    result
}

fn main() {
    let smoke = std::env::var("EXP_SERVER_SMOKE").is_ok();
    let (client_counts, per_client): (&[usize], usize) = if smoke {
        (&[1, 2], 20)
    } else {
        (&[1, 4, 8], 150)
    };

    let mut out = ExperimentOutput::new(
        "E15",
        "multi-client serving: QPS + latency percentiles over CDBP, two-tier admission",
    );
    out.headers = vec![
        "clients".into(),
        "requests".into(),
        "qps".into(),
        "p50 ms".into(),
        "p95 ms".into(),
        "p99 ms".into(),
        "crowd ¢".into(),
    ];

    // Phase 1: closed-loop throughput. One server for all client counts
    // so later rounds exercise the memorized-answer fast path, like a
    // long-lived deployment would.
    let server = Server::start(
        ServerConfig::local(vec![TenantConfig::open("public")], world_factory()),
        CrowdDB::with_config(CrowdConfig::fast_test()),
    )
    .expect("start server");
    let addr = server.addr().to_string();
    seed_schema(&addr);

    for &clients in client_counts {
        let r = closed_loop(&addr, clients, per_client);
        out.rows.push(vec![
            clients.to_string(),
            r.requests.to_string(),
            format!("{:.0}", r.qps),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            format!("{:.2}", r.p99_ms),
            r.crowd_cents.to_string(),
        ]);
    }
    server.join().expect("drain throughput server");

    // Phase 2: starvation probe.
    let (flood_clients, local_reads) = if smoke { (4, 20) } else { (6, 60) };
    let s = starvation_probe(flood_clients, local_reads);
    out.notes.push(format!(
        "starvation probe: {} crowd clients vs crowd tier of 2 → {} overloaded refusal(s), \
         {} completed; local reads through the flood: p99 {:.2} ms, worst {:.2} ms",
        flood_clients, s.overloaded, s.flood_completed, s.local_p99_ms, s.local_worst_ms
    ));
    out.notes.push(
        "expected shape: QPS grows with clients until the single shared engine saturates; \
         crowd cents flatten once the title pool is memorized; local p99 stays bounded \
         under crowd flood (two-tier admission)"
            .into(),
    );
    assert!(s.overloaded > 0, "flood should hit the crowd admission cap");
    assert!(
        s.local_worst_ms < 5_000.0,
        "local reads starved: worst {} ms",
        s.local_worst_ms
    );

    out.print();
    if let Ok(path) = std::env::var("BENCH_JSON") {
        std::fs::write(&path, render_json(&out)).expect("write BENCH_JSON");
        eprintln!("wrote {path}");
    }
}

/// Hand-rolled JSON for the trajectory record: the workspace's
/// serde_json may be an offline stub, and this file is checked in, so
/// the bytes must not depend on which one is linked.
fn render_json(out: &ExperimentOutput) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn arr(items: &[String]) -> String {
        let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
        format!("[{}]", quoted.join(", "))
    }
    let rows: Vec<String> = out.rows.iter().map(|r| format!("    {}", arr(r))).collect();
    format!(
        "{{\n  \"id\": \"{}\",\n  \"paper_artifact\": \"{}\",\n  \"headers\": {},\n  \
         \"rows\": [\n{}\n  ],\n  \"notes\": {},\n  \"op_stats\": {}\n}}\n",
        esc(&out.id),
        esc(&out.paper_artifact),
        arr(&out.headers),
        rows.join(",\n"),
        arr(&out.notes),
        arr(&out.op_stats),
    )
}
