//! E13 — Resource-governor overhead.
//!
//! Every governed statement pays for its safety: an admission handshake
//! at entry, a `catch_unwind` frame, and a cooperative-cancellation
//! checkpoint in every operator's per-row loop. The design target
//! (DESIGN.md §11) is that this costs **under 2%** on row-heavy local
//! work and is unmeasurable on crowd-bound work, where a single HIT's
//! virtual latency dwarfs a million checkpoint branches.
//!
//! Three paths over identical statements:
//!
//! * **ungoverned** — `execute_local`, which runs the same plans under
//!   `StatementGuard::unlimited()`: the checkpoint fast path is a single
//!   branch and nothing is counted. The pre-governor baseline.
//! * **governed (default)** — `execute` with the default policy: cancel
//!   flag armed (one relaxed atomic load per checkpoint), admission and
//!   panic containment active, no limits set.
//! * **governed (all limits)** — deadline, output/intermediate row caps,
//!   and crowd budget all armed (generously, so nothing trips).
//!
//! Rows must be identical across all three before a time is reported.

use std::time::Instant;

use crowddb_bench::harness::ExperimentOutput;
use crowddb_core::{CrowdConfig, CrowdDB, GovernorPolicy};
use crowddb_platform::{Answer, MockPlatform, TaskKind};

const ROWS: usize = 20_000;
const DIM_ROWS: usize = 100;
const REPS: usize = 20;

/// The row-heavy local analytics suite: scan+filter, aggregation, a
/// dimension join, and a sort — every per-row loop with a checkpoint.
const LOCAL_SUITE: &[&str] = &[
    "SELECT id FROM item WHERE val > 50",
    "SELECT COUNT(*), MAX(val), MIN(val) FROM item",
    "SELECT d.name, COUNT(*) FROM item i, dim d WHERE i.val = d.id GROUP BY d.name",
    "SELECT id FROM item ORDER BY val DESC LIMIT 10",
];

fn crowd() -> MockPlatform {
    MockPlatform::unanimous(|kind| match kind {
        TaskKind::Probe { asked, .. } => Answer::Form(
            asked
                .iter()
                .map(|(c, _)| (c.clone(), "a crowd-enabled database".to_string()))
                .collect(),
        ),
        _ => Answer::Blank,
    })
}

fn seed_local(db: &CrowdDB) {
    let mut p = crowd();
    db.execute(
        "CREATE TABLE item (id INTEGER PRIMARY KEY, val INTEGER)",
        &mut p,
    )
    .expect("ddl");
    db.execute(
        "CREATE TABLE dim (id INTEGER PRIMARY KEY, name STRING)",
        &mut p,
    )
    .expect("ddl");
    for chunk in (0..ROWS).collect::<Vec<_>>().chunks(500) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {})", i % DIM_ROWS))
            .collect();
        db.execute(
            &format!("INSERT INTO item VALUES {}", values.join(", ")),
            &mut p,
        )
        .expect("insert");
    }
    for i in 0..DIM_ROWS {
        db.execute(
            &format!("INSERT INTO dim VALUES ({i}, 'bucket-{i:03}')"),
            &mut p,
        )
        .expect("insert");
    }
}

/// Generous limits: everything armed, nothing trips.
fn all_limits() -> GovernorPolicy {
    GovernorPolicy {
        deadline_virtual_secs: Some(1e12),
        max_output_rows: Some(u64::MAX),
        max_intermediate_rows: Some(u64::MAX),
        max_crowd_cents: Some(u64::MAX),
        ..GovernorPolicy::default()
    }
}

/// Best-of-`reps` wall seconds for one pass of the local suite through
/// `run`, with the row payload checked against `golden` on every pass.
/// Min-of-reps filters out container noise (GC of neighbors, page cache
/// churn) that a single long total cannot.
fn time_suite(reps: usize, golden: &mut Vec<usize>, mut run: impl FnMut(&str) -> usize) -> f64 {
    let mut best = f64::INFINITY;
    for rep in 0..reps {
        let start = Instant::now();
        for sql in LOCAL_SUITE.iter() {
            run(sql);
        }
        best = best.min(start.elapsed().as_secs_f64());
        for (qi, sql) in LOCAL_SUITE.iter().enumerate() {
            let rows = run(sql);
            if golden.len() <= qi {
                golden.push(rows);
            } else {
                assert_eq!(golden[qi], rows, "rep {rep}: {sql} diverged");
            }
        }
    }
    best
}

fn main() {
    let mut out = ExperimentOutput::new(
        "E13",
        "resource-governor overhead: admission + panic containment + per-row \
         cancellation checkpoints, vs the ungoverned execution path",
    );
    out.headers = vec![
        "path".into(),
        "best pass ms".into(),
        "vs ungoverned".into(),
        "rows/pass".into(),
    ];

    let db = CrowdDB::with_config(CrowdConfig::fast_test());
    seed_local(&db);
    let mut golden: Vec<usize> = Vec::new();

    // Warm-up pass (populate caches, fault in pages) — untimed.
    for sql in LOCAL_SUITE {
        db.execute_local(sql).expect("warmup").rows.len();
    }

    let ungoverned = time_suite(REPS, &mut golden, |sql| {
        db.execute_local(sql).expect(sql).rows.len()
    });
    let governed = time_suite(REPS, &mut golden, |sql| {
        let mut p = crowd();
        db.execute(sql, &mut p).expect(sql).rows.len()
    });
    let armed_policy = all_limits();
    let armed = time_suite(REPS, &mut golden, |sql| {
        let mut p = crowd();
        db.execute_with_policy(sql, &mut p, &armed_policy)
            .expect(sql)
            .rows
            .len()
    });

    let rows_checked: usize = golden.iter().sum::<usize>();
    let pct = |t: f64| format!("{:+.2}%", (t / ungoverned - 1.0) * 100.0);
    out.rows.push(vec![
        "ungoverned (execute_local)".into(),
        format!("{:.2}", ungoverned * 1e3),
        "1.00×".into(),
        rows_checked.to_string(),
    ]);
    out.rows.push(vec![
        "governed, default policy".into(),
        format!("{:.2}", governed * 1e3),
        pct(governed),
        rows_checked.to_string(),
    ]);
    out.rows.push(vec![
        "governed, all limits armed".into(),
        format!("{:.2}", armed * 1e3),
        pct(armed),
        rows_checked.to_string(),
    ]);

    // Crowd-bound side: the E8b-style probe workload, where checkpoint
    // cost must vanish under the crowd round machinery.
    {
        let run = |policy: Option<&GovernorPolicy>| {
            let db = CrowdDB::with_config(CrowdConfig::fast_test());
            let mut p = crowd();
            db.execute(
                "CREATE TABLE talk (title STRING PRIMARY KEY, abstract CROWD STRING)",
                &mut p,
            )
            .expect("ddl");
            for i in 0..40 {
                db.execute(
                    &format!("INSERT INTO talk (title) VALUES ('talk-{i:03}')"),
                    &mut p,
                )
                .expect("insert");
            }
            let start = Instant::now();
            let r = match policy {
                Some(pol) => db
                    .execute_with_policy("SELECT title, abstract FROM talk", &mut p, pol)
                    .expect("probe"),
                None => db
                    .execute("SELECT title, abstract FROM talk", &mut p)
                    .expect("probe"),
            };
            assert!(r.complete && r.crowd.tasks_posted == 40);
            start.elapsed().as_secs_f64()
        };
        let default_t = run(None);
        let armed_t = run(Some(&all_limits()));
        out.notes.push(format!(
            "E8b probe workload (40 tasks): default policy {:.2} ms, all limits \
             armed {:.2} ms — crowd-bound work amortizes every checkpoint",
            default_t * 1e3,
            armed_t * 1e3,
        ));
    }
    out.notes.push(format!(
        "local suite: best of {REPS} passes × {} queries over {ROWS} base rows; \
         rows byte-checked across all three paths before timing is reported",
        LOCAL_SUITE.len(),
    ));

    out.print();
}
