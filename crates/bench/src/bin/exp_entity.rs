//! E6 — CROWDEQUAL entity resolution (SIGMOD 2011: company-name
//! experiment, "is 'I.B.M.' the same as 'IBM'?").
//!
//! The paper asked the crowd to resolve company-name variants and
//! reported accuracy under majority voting, comparing against what a
//! machine could do alone. This harness runs labeled pairs through the
//! full CROWDEQUAL path (predicate → task → vote → cache) and also
//! reports the machine baseline (canonicalization + Jaro-Winkler) that a
//! conventional DBMS could manage without people.

use crowddb_bench::harness::ExperimentOutput;
use crowddb_bench::workloads;
use crowddb_bench::world::CompanyWorld;
use crowddb_core::{CrowdConfig, CrowdDB, QualityPolicy};
use crowddb_platform::SimPlatform;
use crowddb_quality::entity;
use crowddb_quality::VoteConfig;

fn main() {
    let mut out = ExperimentOutput::new(
        "E6",
        "CROWDEQUAL entity-resolution accuracy vs assignments, with machine baseline",
    );
    out.headers = vec![
        "method".into(),
        "accuracy".into(),
        "false merges".into(),
        "missed matches".into(),
        "tasks".into(),
        "cost (cents)".into(),
    ];

    let corpus = workloads::companies(40, 17);
    let pairs = workloads::entity_pairs(&corpus, 17);
    let world = CompanyWorld::new(&corpus);

    // Machine baseline: canonicalization + Jaro-Winkler at 0.92.
    {
        let mut ok = 0usize;
        let mut false_merge = 0usize;
        let mut missed = 0usize;
        for (a, b, same) in &pairs {
            let verdict = entity::machine_equal(a, b, 0.92);
            if verdict == *same {
                ok += 1;
            } else if verdict {
                false_merge += 1;
            } else {
                missed += 1;
            }
        }
        out.rows.push(vec![
            "machine (JW 0.92)".into(),
            format!("{:.1}%", 100.0 * ok as f64 / pairs.len() as f64),
            false_merge.to_string(),
            missed.to_string(),
            "0".into(),
            "0".into(),
        ]);
    }

    // Crowd path at replication 1, 3, 5 — through the real engine: a
    // pairs table filtered by CROWDEQUAL(a, b). Then the quality-v2
    // matrix at replication 3: majority-vs-EM × singleton-vs-batched
    // HITs (batching packs same-instruction compares k-to-a-HIT at a
    // per-item discount).
    let mut arms: Vec<(usize, QualityPolicy, usize)> = [1usize, 3, 5]
        .iter()
        .map(|&r| (r, QualityPolicy::MajorityVote, 0))
        .collect();
    arms.extend([
        (3, QualityPolicy::MajorityVote, 4),
        (3, QualityPolicy::em(), 0),
        (3, QualityPolicy::em(), 4),
    ]);
    for (replication, policy, batch) in arms {
        let mut config = CrowdConfig {
            vote: VoteConfig::replicated(replication),
            reward_cents: 1,
            quality: policy,
            ..CrowdConfig::default()
        };
        config.concurrency.max_batch_size = batch;
        let db = CrowdDB::with_config(config);
        db.execute_local("CREATE TABLE pairs (id INTEGER PRIMARY KEY, a STRING, b STRING)")
            .expect("ddl");
        for (i, (a, b, _)) in pairs.iter().enumerate() {
            db.execute_local(&format!(
                "INSERT INTO pairs VALUES ({i}, '{}', '{}')",
                a.replace('\'', "''"),
                b.replace('\'', "''")
            ))
            .expect("insert");
        }
        let mut amt = SimPlatform::amt(808, Box::new(CompanyWorld::new(&corpus)));
        let r = db
            .execute(
                "SELECT id FROM pairs WHERE CROWDEQUAL(a, b) ORDER BY id",
                &mut amt,
            )
            .expect("crowdequal query");
        let merged: std::collections::HashSet<usize> = r
            .rows
            .iter()
            .filter_map(|row| row[0].as_i64().map(|v| v as usize))
            .collect();

        let mut ok = 0usize;
        let mut false_merge = 0usize;
        let mut missed = 0usize;
        for (i, (a, b, _)) in pairs.iter().enumerate() {
            let truth = world.same_entity(a, b);
            let verdict = merged.contains(&i);
            if verdict == truth {
                ok += 1;
            } else if verdict {
                false_merge += 1;
            } else {
                missed += 1;
            }
        }
        let policy_tag = match policy {
            QualityPolicy::MajorityVote => "majority",
            QualityPolicy::Em { .. } => "em",
        };
        let batch_tag = if batch >= 2 {
            format!(", batch {batch}")
        } else {
            String::new()
        };
        out.rows.push(vec![
            format!("crowd x{replication} ({policy_tag}{batch_tag})"),
            format!("{:.1}%", 100.0 * ok as f64 / pairs.len() as f64),
            false_merge.to_string(),
            missed.to_string(),
            r.crowd.tasks_posted.to_string(),
            r.crowd.cents_spent.to_string(),
        ]);
    }

    out.notes.push(
        "expected shape: the crowd beats the machine baseline (which either misses \
         abbreviations or false-merges similar names); accuracy improves with \
         replication and approaches 100% at x5 — the paper's headline entity- \
         resolution result"
            .into(),
    );
    out.notes.push(
        "quality-v2 matrix (x3 rows): EM matches or beats majority at the same \
         bill; batched HITs post ~4x fewer tasks and spend ~half the cents with \
         accuracy within a point of singletons (batch answers share a per-worker \
         error draw, so the noise realization differs)"
            .into(),
    );
    out.print();
}
