//! E4 — CrowdProbe answer quality vs replication (SIGMOD 2011: professor
//! department/e-mail experiment).
//!
//! The paper crowdsourced two kinds of missing professor attributes: the
//! *department* (a closed set — easy to vote into correctness) and the
//! *e-mail address* (open text — majority voting helps less because
//! wrong answers rarely collide). It reported accuracy at 1, 3, and 5
//! assignments per HIT. This harness runs the same table through the
//! full CrowdDB stack against the simulated marketplace.

use crowddb_bench::harness::ExperimentOutput;
use crowddb_bench::workloads;
use crowddb_bench::world::ProfessorWorld;
use crowddb_core::{CrowdConfig, CrowdDB, QualityPolicy};
use crowddb_platform::{SimConfig, SimPlatform};
use crowddb_quality::VoteConfig;

fn main() {
    let mut out = ExperimentOutput::new(
        "E4",
        "CrowdProbe accuracy vs assignments (paper: closed fields benefit strongly \
         from majority voting, open fields less)",
    );
    out.headers = vec![
        "assignments".into(),
        "dept accuracy".into(),
        "email accuracy".into(),
        "tasks".into(),
        "cost (cents)".into(),
    ];

    const PROFS: usize = 60;
    let corpus = workloads::professors(PROFS, 99);

    for (replication, policy) in [
        (1usize, QualityPolicy::MajorityVote),
        (3, QualityPolicy::MajorityVote),
        (5, QualityPolicy::MajorityVote),
        // The answer-quality v2 matrix: EM truth inference at the same
        // replication levels, same platform bill (EM is settle-time
        // only), posterior-reweighted verdicts.
        (3, QualityPolicy::em()),
        (5, QualityPolicy::em()),
    ] {
        let db = CrowdDB::with_config(CrowdConfig {
            vote: VoteConfig::replicated(replication),
            reward_cents: 2,
            quality: policy,
            ..CrowdConfig::default()
        });
        db.execute_local(
            "CREATE TABLE professor (name STRING PRIMARY KEY, department CROWD STRING, \
             email CROWD STRING)",
        )
        .expect("ddl");
        for p in &corpus {
            db.execute_local(&format!(
                "INSERT INTO professor (name) VALUES ('{}')",
                p.name.replace('\'', "''")
            ))
            .expect("insert");
        }
        // A noisier population than the liquid-market default: the
        // paper's probe experiments saw substantial raw error rates.
        let mut sim_config = SimConfig::amt(4242);
        sim_config.pool.error_alpha = 2.5; // mean error ~25%
        sim_config.pool.error_beta = 7.5;
        let mut amt = SimPlatform::new(
            "amt-sim",
            sim_config,
            Box::new(ProfessorWorld::new(&corpus)),
        );
        let r = db
            .execute("SELECT name, department, email FROM professor", &mut amt)
            .expect("query");

        // Score against ground truth.
        let mut dept_ok = 0usize;
        let mut email_ok = 0usize;
        for row in &r.rows {
            let name = row[0].to_string();
            let truth = corpus.iter().find(|p| p.name == name).expect("known prof");
            if row[1].to_string().eq_ignore_ascii_case(&truth.department) {
                dept_ok += 1;
            }
            if row[2].to_string().eq_ignore_ascii_case(&truth.email) {
                email_ok += 1;
            }
        }
        let label = match policy {
            QualityPolicy::MajorityVote => format!("{replication} (majority)"),
            QualityPolicy::Em { .. } => format!("{replication} (em)"),
        };
        out.rows.push(vec![
            label,
            format!("{:.1}%", 100.0 * dept_ok as f64 / PROFS as f64),
            format!("{:.1}%", 100.0 * email_ok as f64 / PROFS as f64),
            r.crowd.tasks_posted.to_string(),
            r.crowd.cents_spent.to_string(),
        ]);
    }
    out.notes.push(
        "expected shape: accuracy rises with replication; department (closed \
         vocabulary) converges to ~100% by 3–5 votes while e-mail (open text) \
         improves more slowly; cost grows linearly with replication"
            .into(),
    );
    out.notes.push(
        "em rows: same replication, same bill (EM is settle-time-only), verdicts \
         from posterior reweighting. This world's errors *collude* (erring workers \
         share a closed dept vocabulary and 50% guess the same plausible e-mail \
         pattern), which violates the independent-error assumption EM rests on — \
         so EM's edge here is modest: it matches majority on the closed field and \
         recovers a point or two on e-mail at x3. E17 runs the same schema against \
         an independent-error crowd, the regime the model actually describes."
            .into(),
    );
    out.print();
}
