//! E11 — Durability overhead and crowd-answer reuse across restarts.
//!
//! The paper's economics argument is that crowd answers are the
//! expensive resource — cents and minutes per value, against
//! microseconds for local I/O. This experiment quantifies both sides of
//! the durability subsystem on the E8b-style conference workload
//! (CROWD-column probes over the `talk` table):
//!
//! 1. **WAL overhead** — wall time of the identical workload with the
//!    log fsyncing on every record, in batches, never, and with no log
//!    at all (in-memory session).
//! 2. **Reuse across restart** — tasks posted by the same query before
//!    and after a simulated crash + reopen: recovery replays every paid
//!    answer, so the second run posts zero tasks.

use std::time::Instant;

use crowddb_bench::harness::ExperimentOutput;
use crowddb_core::{CrowdConfig, CrowdDB, FsyncPolicy};
use crowddb_platform::{Answer, MockPlatform, TaskKind};
use crowddb_wal::testutil::TestDir;

const TALKS: usize = 40;

fn crowd() -> MockPlatform {
    MockPlatform::unanimous(|kind| match kind {
        TaskKind::Probe { asked, .. } => Answer::Form(
            asked
                .iter()
                .map(|(c, _)| {
                    let text = if c == "abstract" {
                        "a crowd-enabled database system".to_string()
                    } else {
                        "120".to_string()
                    };
                    (c.clone(), text)
                })
                .collect(),
        ),
        _ => Answer::Blank,
    })
}

fn config(fsync: FsyncPolicy) -> CrowdConfig {
    let mut c = CrowdConfig::fast_test();
    c.durability.fsync = fsync;
    c
}

/// The E8b-style workload: create the conference schema, insert talks
/// with crowd-missing columns, probe them all. Returns (wall seconds,
/// tasks posted).
fn run_workload(db: &CrowdDB) -> (f64, u64) {
    let mut p = crowd();
    let start = Instant::now();
    db.execute(
        "CREATE TABLE talk (title STRING PRIMARY KEY, abstract CROWD STRING, \
         nb_attendees CROWD INTEGER)",
        &mut p,
    )
    .expect("ddl");
    for i in 0..TALKS {
        db.execute(
            &format!("INSERT INTO talk (title) VALUES ('talk-{i:03}')"),
            &mut p,
        )
        .expect("insert");
    }
    let r = db
        .execute("SELECT title, abstract, nb_attendees FROM talk", &mut p)
        .expect("probe all");
    assert!(r.complete, "workload must finish: {:?}", r.warnings);
    (start.elapsed().as_secs_f64(), r.crowd.tasks_posted)
}

fn main() {
    let mut out = ExperimentOutput::new(
        "E11",
        "durability overhead by fsync policy, and crowd-answer reuse across a \
         simulated restart (paper economics: answers cost cents, I/O costs µs)",
    );
    out.headers = vec![
        "session".into(),
        "wall ms".into(),
        "tasks run 1".into(),
        "tasks after reopen".into(),
    ];

    // Baseline: no durability at all.
    {
        let db = CrowdDB::with_config(CrowdConfig::fast_test());
        let (secs, tasks) = run_workload(&db);
        out.rows.push(vec![
            "in-memory (no WAL)".into(),
            format!("{:.2}", secs * 1e3),
            tasks.to_string(),
            "-".into(),
        ]);
    }

    for (label, fsync) in [
        ("wal fsync=always", FsyncPolicy::Always),
        ("wal fsync=batch(64)", FsyncPolicy::Batch(64)),
        ("wal fsync=never", FsyncPolicy::Never),
    ] {
        let dir = TestDir::new("exp-wal");
        let (secs, tasks, wal_bytes) = {
            let db = CrowdDB::open_with_config(dir.path(), config(fsync)).expect("open");
            let (secs, tasks) = run_workload(&db);
            let wal_bytes = std::fs::metadata(dir.path().join(crowddb_wal::WAL_FILE))
                .map(|m| m.len())
                .unwrap_or(0);
            (secs, tasks, wal_bytes)
            // drop without close(): a crash, as far as recovery can tell
        };

        // Reopen and rerun the probe query: every answer must replay
        // from the log, with nothing posted to the crowd.
        let db = CrowdDB::open_with_config(dir.path(), config(fsync)).expect("reopen");
        let mut p = crowd();
        let r = db
            .execute("SELECT title, abstract, nb_attendees FROM talk", &mut p)
            .expect("probe after reopen");
        assert!(r.complete);
        let m = db.metrics();
        out.notes.push(format!(
            "{label}: reopened session logged {} append(s) / {} fsync(s) / {} checkpoint(s), \
             {} cents spent",
            m.counter("crowddb_wal_appends_total"),
            m.counter("crowddb_wal_fsyncs_total"),
            m.counter("crowddb_wal_checkpoints_total"),
            m.counter("crowddb_crowd_cents_spent_total"),
        ));
        out.rows.push(vec![
            format!("{label} ({wal_bytes} B log)"),
            format!("{:.2}", secs * 1e3),
            tasks.to_string(),
            r.crowd.tasks_posted.to_string(),
        ]);
    }

    out.notes.push(format!(
        "{TALKS} talks, 2 crowd columns each; every durable session reopens from \
         the log of a simulated crash (drop without close)"
    ));
    out.notes.push(
        "expected: fsync=always costs the most wall time but every policy reuses \
         all paid answers after the restart (tasks after reopen = 0)"
            .into(),
    );
    out.print();
}
