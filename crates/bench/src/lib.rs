//! # crowddb-bench
//!
//! Workload generators, simulated-crowd world models, and the experiment
//! harness reproducing the CrowdDB evaluation (see `DESIGN.md` §4 for the
//! experiment index E1–E10 and `EXPERIMENTS.md` for results).
//!
//! Each `src/bin/exp_*.rs` binary regenerates one table/figure: it prints
//! the same rows/series the paper reports, plus a JSON blob for scripted
//! consumption.

pub mod harness;
pub mod workloads;
pub mod world;

pub use harness::{pump_until_complete, ExperimentOutput, Series};
