//! Crowd world models over the synthetic workloads: what the simulated
//! workers "know" when asked about professors, companies, photos, or
//! ranked items.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use crowddb_platform::{Answer, CrowdModel, TaskKind};

use crate::workloads::{Company, Photo, Professor, RankedItem, DEPARTMENTS};

/// World model for the professor corpus (experiment E4).
pub struct ProfessorWorld {
    by_name: HashMap<String, Professor>,
}

impl ProfessorWorld {
    /// Build from a corpus.
    pub fn new(corpus: &[Professor]) -> ProfessorWorld {
        ProfessorWorld {
            by_name: corpus.iter().map(|p| (p.name.clone(), p.clone())).collect(),
        }
    }
}

impl CrowdModel for ProfessorWorld {
    fn ideal_answer(&self, task: &TaskKind) -> Answer {
        match task {
            TaskKind::Probe { known, asked, .. } => {
                let name = known
                    .iter()
                    .find(|(k, _)| k == "name")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("");
                let Some(prof) = self.by_name.get(name) else {
                    return Answer::Blank;
                };
                Answer::Form(
                    asked
                        .iter()
                        .map(|(col, _)| {
                            let text = match col.as_str() {
                                "department" => prof.department.clone(),
                                "email" => prof.email.clone(),
                                _ => String::new(),
                            };
                            (col.clone(), text)
                        })
                        .collect(),
                )
            }
            _ => Answer::Blank,
        }
    }

    fn erroneous_answer(&self, task: &TaskKind, rng: &mut StdRng) -> Answer {
        // Erring workers confuse *plausible* departments (closed field)
        // and mistype e-mails (open field) — the paper found closed
        // fields much easier to vote into correctness.
        match task {
            TaskKind::Probe { known, asked, .. } => Answer::Form(
                asked
                    .iter()
                    .map(|(col, _)| {
                        let text = match col.as_str() {
                            "department" => {
                                DEPARTMENTS[rng.gen_range(0..DEPARTMENTS.len())].to_string()
                            }
                            // E-mail errors are partly *systematic*: many
                            // workers guess the same plausible pattern from
                            // the name, so wrong answers can collide and
                            // even outvote the truth — which is why open
                            // fields converge slower in the paper.
                            "email" => {
                                if rng.gen_bool(0.5) {
                                    let guess = known
                                        .iter()
                                        .find(|(k, _)| k == "name")
                                        .map(|(_, v)| {
                                            v.to_lowercase()
                                                .split_whitespace()
                                                .collect::<Vec<_>>()
                                                .join(".")
                                        })
                                        .unwrap_or_default();
                                    format!("{guess}@university.edu")
                                } else {
                                    format!("wrong{}@mail.com", rng.gen_range(0..10_000))
                                }
                            }
                            _ => String::new(),
                        };
                        (col.clone(), text)
                    })
                    .collect(),
            ),
            _ => Answer::Blank,
        }
    }
}

/// World model for entity resolution (experiment E6): workers judge
/// whether two company names refer to the same entity.
pub struct CompanyWorld {
    /// variant or canonical → canonical
    canonical_of: HashMap<String, String>,
}

impl CompanyWorld {
    /// Build from a corpus.
    pub fn new(corpus: &[Company]) -> CompanyWorld {
        let mut canonical_of = HashMap::new();
        for c in corpus {
            canonical_of.insert(c.canonical.clone(), c.canonical.clone());
            for v in &c.variants {
                canonical_of.insert(v.clone(), c.canonical.clone());
            }
        }
        CompanyWorld { canonical_of }
    }

    /// Ground truth for a pair.
    pub fn same_entity(&self, a: &str, b: &str) -> bool {
        match (self.canonical_of.get(a), self.canonical_of.get(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

impl CrowdModel for CompanyWorld {
    fn ideal_answer(&self, task: &TaskKind) -> Answer {
        match task {
            TaskKind::Equal { left, right, .. } => {
                if self.same_entity(left, right) {
                    Answer::Yes
                } else {
                    Answer::No
                }
            }
            TaskKind::EqualBatch { pairs, .. } => Answer::Batch(
                pairs
                    .iter()
                    .map(|(l, r)| {
                        if self.same_entity(l, r) {
                            Answer::Yes
                        } else {
                            Answer::No
                        }
                    })
                    .collect(),
            ),
            _ => Answer::Blank,
        }
    }
}

/// World model for subjective ranking (experiment E7): workers compare
/// items by latent score, with *comparison noise* that grows as scores
/// get closer (harder judgments are noisier — the Bradley-Terry shape).
pub struct RankingWorld {
    score_of: HashMap<String, f64>,
    /// Noise temperature: 0 = perfectly reliable judges.
    pub temperature: f64,
}

impl RankingWorld {
    /// Build from a corpus.
    pub fn new(corpus: &[RankedItem], temperature: f64) -> RankingWorld {
        RankingWorld {
            score_of: corpus.iter().map(|i| (i.label.clone(), i.score)).collect(),
            temperature,
        }
    }

    fn prob_left_better(&self, left: &str, right: &str) -> f64 {
        let a = self.score_of.get(left).copied().unwrap_or(0.5);
        let b = self.score_of.get(right).copied().unwrap_or(0.5);
        if self.temperature <= 0.0 {
            return if a >= b { 1.0 } else { 0.0 };
        }
        // Bradley-Terry / logistic choice model.
        1.0 / (1.0 + ((b - a) / self.temperature).exp())
    }
}

impl CrowdModel for RankingWorld {
    fn ideal_answer(&self, task: &TaskKind) -> Answer {
        match task {
            TaskKind::Order { left, right, .. } => {
                if self.prob_left_better(left, right) >= 0.5 {
                    Answer::Left
                } else {
                    Answer::Right
                }
            }
            TaskKind::OrderBatch { pairs, .. } => Answer::Batch(
                pairs
                    .iter()
                    .map(|(l, r)| {
                        if self.prob_left_better(l, r) >= 0.5 {
                            Answer::Left
                        } else {
                            Answer::Right
                        }
                    })
                    .collect(),
            ),
            _ => Answer::Blank,
        }
    }

    fn erroneous_answer(&self, task: &TaskKind, rng: &mut StdRng) -> Answer {
        match task {
            TaskKind::Order { left, right, .. } => {
                // Sample from the noisy choice model instead of flipping.
                if rng.gen_bool(self.prob_left_better(left, right).clamp(0.01, 0.99)) {
                    Answer::Left
                } else {
                    Answer::Right
                }
            }
            TaskKind::OrderBatch { pairs, .. } => Answer::Batch(
                pairs
                    .iter()
                    .map(|(l, r)| {
                        if rng.gen_bool(self.prob_left_better(l, r).clamp(0.01, 0.99)) {
                            Answer::Left
                        } else {
                            Answer::Right
                        }
                    })
                    .collect(),
            ),
            _ => Answer::Blank,
        }
    }
}

/// World model for the photo–subject join (experiment E5): asked for the
/// subjects of a photo, workers contribute (photo, subject) tuples.
pub struct PhotoWorld {
    subjects_of: HashMap<String, Vec<String>>,
}

impl PhotoWorld {
    /// Build from a corpus.
    pub fn new(corpus: &[Photo]) -> PhotoWorld {
        PhotoWorld {
            subjects_of: corpus
                .iter()
                .map(|p| (p.id.clone(), p.subjects.clone()))
                .collect(),
        }
    }
}

impl CrowdModel for PhotoWorld {
    fn ideal_answer(&self, task: &TaskKind) -> Answer {
        match task {
            TaskKind::NewTuples { preset, .. } => {
                let photo = preset
                    .iter()
                    .find(|(k, _)| k == "photo")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("");
                let subjects = self.subjects_of.get(photo).cloned().unwrap_or_default();
                if subjects.is_empty() {
                    Answer::Blank
                } else {
                    Answer::Tuples(
                        subjects
                            .iter()
                            .map(|s| {
                                vec![
                                    ("photo".to_string(), photo.to_string()),
                                    ("subject".to_string(), s.clone()),
                                ]
                            })
                            .collect(),
                    )
                }
            }
            _ => Answer::Blank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads;
    use rand::SeedableRng;

    #[test]
    fn professor_world_answers_probes() {
        let corpus = workloads::professors(5, 1);
        let w = ProfessorWorld::new(&corpus);
        let task = TaskKind::Probe {
            table: "professor".into(),
            known: vec![("name".into(), corpus[0].name.clone())],
            asked: vec![
                ("department".into(), crowddb_common::DataType::Str),
                ("email".into(), crowddb_common::DataType::Str),
            ],
            instructions: String::new(),
        };
        match w.ideal_answer(&task) {
            Answer::Form(fields) => {
                assert_eq!(fields[0].1, corpus[0].department);
                assert_eq!(fields[1].1, corpus[0].email);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn professor_errors_are_plausible() {
        let corpus = workloads::professors(5, 1);
        let w = ProfessorWorld::new(&corpus);
        let task = TaskKind::Probe {
            table: "professor".into(),
            known: vec![("name".into(), corpus[0].name.clone())],
            asked: vec![("department".into(), crowddb_common::DataType::Str)],
            instructions: String::new(),
        };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            match w.erroneous_answer(&task, &mut rng) {
                Answer::Form(fields) => {
                    assert!(DEPARTMENTS.contains(&fields[0].1.as_str()));
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn company_world_ground_truth() {
        let corpus = workloads::companies(10, 2);
        let w = CompanyWorld::new(&corpus);
        assert!(w.same_entity(&corpus[0].canonical, &corpus[0].variants[0]));
        assert!(!w.same_entity(&corpus[0].canonical, &corpus[1].canonical));
        let task = TaskKind::Equal {
            left: corpus[0].canonical.clone(),
            right: corpus[0].variants[0].clone(),
            instruction: "same?".into(),
        };
        assert_eq!(w.ideal_answer(&task), Answer::Yes);
    }

    #[test]
    fn ranking_world_choice_model() {
        let corpus = workloads::ranked_items(10, 3);
        let truth = workloads::true_ranking(&corpus);
        let best = &corpus[truth[0]].label;
        let worst = &corpus[truth[9]].label;
        let w = RankingWorld::new(&corpus, 0.1);
        assert!(w.prob_left_better(best, worst) > 0.9);
        assert!(w.prob_left_better(worst, best) < 0.1);
        let deterministic = RankingWorld::new(&corpus, 0.0);
        assert_eq!(deterministic.prob_left_better(best, worst), 1.0);
    }

    #[test]
    fn photo_world_contributes_tuples() {
        let corpus = workloads::photos(20, 4);
        let with_subjects = corpus.iter().find(|p| !p.subjects.is_empty()).unwrap();
        let w = PhotoWorld::new(&corpus);
        let task = TaskKind::NewTuples {
            table: "photosubject".into(),
            columns: vec![("subject".into(), crowddb_common::DataType::Str)],
            preset: vec![("photo".into(), with_subjects.id.clone())],
            max_tuples: 5,
            instructions: String::new(),
        };
        match w.ideal_answer(&task) {
            Answer::Tuples(ts) => assert_eq!(ts.len(), with_subjects.subjects.len()),
            other => panic!("{other:?}"),
        }
    }
}
