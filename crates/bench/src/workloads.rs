//! Synthetic workload generators with controllable ground truth.
//!
//! The SIGMOD 2011 evaluation used: simple fact-probe HITs (micro
//! benchmarks), a professor/department table (CrowdProbe quality), a
//! picture–subject corpus (CrowdJoin), a company-name corpus with
//! spelling variants (CROWDEQUAL entity resolution), and picture sets
//! ranked by the crowd (CROWDORDER). These generators produce the
//! equivalents with exact ground truth, so quality can be measured.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One professor with a known department and e-mail (experiment E4: open
/// vs closed probe fields).
#[derive(Debug, Clone, PartialEq)]
pub struct Professor {
    /// Unique name.
    pub name: String,
    /// True department (closed-world field: one of a small set).
    pub department: String,
    /// True e-mail (open-world field: free text).
    pub email: String,
}

/// Departments used by the professor corpus.
pub const DEPARTMENTS: &[&str] = &[
    "Computer Science",
    "Mathematics",
    "Physics",
    "Chemistry",
    "Biology",
    "Economics",
];

/// Generate `n` professors deterministically.
pub fn professors(n: usize, seed: u64) -> Vec<Professor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let first = [
        "Ada", "Alan", "Grace", "Edsger", "Barbara", "Donald", "John", "Leslie", "Frances", "Tony",
    ];
    let last = [
        "Lovelace", "Turing", "Hopper", "Dijkstra", "Liskov", "Knuth", "Backus", "Lamport",
        "Allen", "Hoare",
    ];
    (0..n)
        .map(|i| {
            let f = first[rng.gen_range(0..first.len())];
            let l = last[rng.gen_range(0..last.len())];
            let name = format!("{f} {l} {i}");
            let department = DEPARTMENTS[rng.gen_range(0..DEPARTMENTS.len())].to_string();
            let email = format!(
                "{}.{}{}@univ{}.edu",
                f.to_lowercase(),
                l.to_lowercase(),
                i,
                rng.gen_range(1..9)
            );
            Professor {
                name,
                department,
                email,
            }
        })
        .collect()
}

/// A company with its canonical name and the spelling variants workers
/// will be shown (experiment E6: entity resolution).
#[derive(Debug, Clone, PartialEq)]
pub struct Company {
    /// Canonical name.
    pub canonical: String,
    /// Spelling/abbreviation variants referring to the same entity.
    pub variants: Vec<String>,
}

/// Generate a company corpus. Each company gets 2–4 variants built from
/// realistic transformations: legal suffixes and typos (machine-
/// matchable), but also **initialisms** ("A.S. 12" for "Acme Systems
/// 12") that no string-similarity measure recovers. Companies come in
/// **sibling pairs** ("Acme Systems 12" / "Acme Systems 13") that are
/// nearly identical strings yet distinct entities — the pairs that make
/// machines false-merge and humans shine (the paper's point).
pub fn companies(n: usize, seed: u64) -> Vec<Company> {
    let mut rng = StdRng::seed_from_u64(seed);
    let stems = [
        "Acme",
        "Globex",
        "Initech",
        "Umbrella",
        "Stark",
        "Wayne",
        "Cyberdyne",
        "Tyrell",
        "Wonka",
        "Hooli",
        "Aperture",
        "BlueSun",
        "Gringotts",
        "Monarch",
        "Vandelay",
    ];
    let sectors = [
        "Systems",
        "Industries",
        "Networks",
        "Dynamics",
        "Labs",
        "Software",
        "Analytics",
    ];
    (0..n)
        .map(|i| {
            // Sibling pairs: i and i^1 share stem and sector, and their
            // canonical names differ only in the trailing number.
            let pair = i / 2;
            let stem = stems[pair % stems.len()];
            let sector = sectors[(pair / stems.len()) % sectors.len()];
            let canonical = format!("{stem} {sector} {i}");
            let mut variants = vec![format!("{canonical} Inc.")];
            // Initialism: "A.S. 12" — humans resolve it, machines cannot.
            let initials: String = [stem, sector]
                .iter()
                .filter_map(|w| w.chars().next())
                .flat_map(|c| [c.to_ascii_uppercase(), '.'])
                .collect();
            variants.push(format!("{initials} {i}"));
            // One typo variant (dropped character in the stem).
            if stem.len() > 3 {
                let drop = rng.gen_range(1..stem.len());
                let typo: String = stem
                    .chars()
                    .enumerate()
                    .filter(|(j, _)| *j != drop)
                    .map(|(_, c)| c)
                    .collect();
                variants.push(format!("{typo} {sector} {i}"));
            }
            variants.shuffle(&mut rng);
            Company {
                canonical,
                variants,
            }
        })
        .collect()
}

/// Pairs for the entity-resolution experiment: `(a, b, same_entity)`.
/// True matches pit the canonical name against each variant (including
/// the machine-hostile initialism); non-matches are dominated by the
/// *sibling* companies whose names differ by one digit.
pub fn entity_pairs(corpus: &[Company], seed: u64) -> Vec<(String, String, bool)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE17);
    let mut out = Vec::new();
    for (i, c) in corpus.iter().enumerate() {
        for v in c.variants.iter().take(2) {
            out.push((c.canonical.clone(), v.clone(), true));
        }
        // Hard negative: the sibling company (nearly identical string).
        let sibling = i ^ 1;
        if sibling < corpus.len() && sibling != i {
            out.push((
                c.canonical.clone(),
                corpus[sibling].canonical.clone(),
                false,
            ));
        }
        // Easy negative: an unrelated company.
        let j = (i + 1 + rng.gen_range(0..corpus.len().saturating_sub(1).max(1))) % corpus.len();
        if j != i && j != sibling {
            out.push((c.canonical.clone(), corpus[j].canonical.clone(), false));
        }
    }
    out.shuffle(&mut rng);
    out
}

/// An item with a latent quality score, for subjective-ranking
/// experiments (E7). Higher score = better.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedItem {
    /// Display label shown to workers.
    pub label: String,
    /// Latent ground-truth quality in `[0, 1]`.
    pub score: f64,
}

/// Generate `n` ranked items with well-separated latent scores.
pub fn ranked_items(n: usize, seed: u64) -> Vec<RankedItem> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0D);
    let mut items: Vec<RankedItem> = (0..n)
        .map(|i| RankedItem {
            label: format!("picture-{i:03}"),
            score: (i as f64 + rng.gen_range(0.0..0.5)) / n as f64,
        })
        .collect();
    items.shuffle(&mut rng);
    items
}

/// Ground-truth ranking (best first) of a ranked-item corpus, as indexes
/// into the corpus slice.
pub fn true_ranking(items: &[RankedItem]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| items[b].score.total_cmp(&items[a].score));
    order
}

/// A photo and its true subjects, for the CrowdJoin experiment (E5):
/// join photos against a crowd table of (photo, subject) facts.
#[derive(Debug, Clone, PartialEq)]
pub struct Photo {
    /// Photo identifier.
    pub id: String,
    /// True subjects depicted (what the crowd knows).
    pub subjects: Vec<String>,
}

/// Generate a photo corpus; each photo depicts 0–3 subjects from a small
/// vocabulary.
pub fn photos(n: usize, seed: u64) -> Vec<Photo> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0);
    let vocabulary = [
        "dog",
        "cat",
        "car",
        "bridge",
        "sunset",
        "crowd",
        "poster",
        "laptop",
        "coffee",
        "whiteboard",
    ];
    (0..n)
        .map(|i| {
            let k = rng.gen_range(0..=3usize);
            let mut subjects: Vec<String> = vocabulary
                .choose_multiple(&mut rng, k)
                .map(|s| s.to_string())
                .collect();
            subjects.sort();
            Photo {
                id: format!("photo-{i:04}"),
                subjects,
            }
        })
        .collect()
}

/// VLDB-style talks for the conference demo workload (E10).
pub fn conference_talks() -> Vec<(&'static str, &'static str, i64)> {
    vec![
        ("CrowdDB", "Query processing with the VLDB crowd", 220),
        ("Qurk", "A query processor for human operators", 140),
        ("PIQL", "Performance insightful query language", 90),
        ("HyPer", "Hybrid OLTP and OLAP main memory database", 180),
        ("Shark", "SQL and rich analytics at scale", 160),
        ("Spanner", "Globally distributed database", 250),
        ("MonetDB", "Column store pioneering", 120),
        ("C-Store", "A column oriented DBMS", 130),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn professors_deterministic_and_unique() {
        let a = professors(50, 1);
        let b = professors(50, 1);
        assert_eq!(a, b);
        let mut names: Vec<&str> = a.iter().map(|p| p.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50, "names must be unique");
        assert!(a
            .iter()
            .all(|p| DEPARTMENTS.contains(&p.department.as_str())));
        assert!(a.iter().all(|p| p.email.contains('@')));
    }

    #[test]
    fn companies_have_variants() {
        let c = companies(30, 2);
        assert_eq!(c.len(), 30);
        assert!(c.iter().all(|x| !x.variants.is_empty()));
        assert!(c
            .iter()
            .all(|x| x.variants.iter().all(|v| v != &x.canonical)));
    }

    #[test]
    fn entity_pairs_balanced_and_labeled() {
        let corpus = companies(20, 3);
        let pairs = entity_pairs(&corpus, 3);
        let pos = pairs.iter().filter(|(_, _, same)| *same).count();
        let neg = pairs.len() - pos;
        assert!(pos > 0 && neg > 0);
        // True pairs share the canonical prefix family; spot check one.
        let (a, b, same) = pairs.iter().find(|(_, _, s)| *s).unwrap();
        assert!(same);
        assert_ne!(a, b);
    }

    #[test]
    fn ranked_items_have_distinct_scores() {
        let items = ranked_items(25, 4);
        let truth = true_ranking(&items);
        assert_eq!(truth.len(), 25);
        // Scores strictly decreasing along the ranking.
        for w in truth.windows(2) {
            assert!(items[w[0]].score > items[w[1]].score);
        }
    }

    #[test]
    fn photos_deterministic() {
        assert_eq!(photos(10, 5), photos(10, 5));
        let p = photos(100, 6);
        assert!(p.iter().any(|x| !x.subjects.is_empty()));
        assert!(p.iter().any(|x| x.subjects.is_empty()));
    }

    #[test]
    fn conference_talks_nonempty() {
        assert!(conference_talks().len() >= 5);
    }
}
